#!/usr/bin/env sh
# Tier-1 verification gate for this repo (see ROADMAP.md).
#
# Offline-safe: every dependency is a path dependency (workspace crates
# plus the std-only shims under vendor/), so no network access is needed.
# Run from anywhere; the script cd's to the repo root.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# First-party packages only: the vendored std-only shims (vendor/) are
# API stand-ins and are not held to the documentation bar.
echo "==> cargo doc --no-deps (first-party, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p clio -p clio-relational -p clio-core -p clio-datagen \
    -p clio-obs -p clio-incr -p clio-net -p clio-cli -p clio-bench \
    -p clio-pager -p clio-lang

echo "==> cargo test -q"
cargo test -q

# Benches are part of the contract (EXPERIMENTS.md reproduces from
# them); they must at least compile even though running them is not a
# gate.
echo "==> cargo bench --no-run"
cargo bench --no-run

# Tier 2a: golden work-counter gate. A scripted demo run with one worker
# thread and the evaluation cache off must reproduce the checked-in
# counter snapshot byte-for-byte — counters are per-work-unit sums, so
# any drift means an algorithmic change (e.g. a hash join silently
# degrading to a nested loop), which must be acknowledged by
# regenerating the golden file:
#
#   target/release/clio-shell --script examples/scripts/demo.clio \
#       --metrics scripts/golden/demo-counters.json --threads 1 --no-cache
#
# --no-cache keeps the gate about the *algorithms*: with memoization on,
# repeated operators legitimately skip work (gate 2b covers that path).
#
# One counter is exempt from byte-exactness: `cache.saved_ns` sums the
# *measured* recompute time of the entries that answered hits, so it is
# wall-clock-derived and differs run to run. Every golden file stores
# it as 0 and the snapshots are normalized the same way before
# diffing; the counter's behaviour is pinned separately by unit tests.
normalize_saved_ns() {
    sed -i 's/"cache\.saved_ns": [0-9][0-9]*/"cache.saved_ns": 0/' "$1"
}
echo "==> golden counter gate (demo.clio, --threads 1, --no-cache)"
tmp_metrics="$(mktemp)"
tmp_twice_metrics="$(mktemp)"
tmp_twice_script="$(mktemp)"
tmp_serial_out="$(mktemp)"
tmp_chunk_dir="$(mktemp -d)"
tmp_cache_dir="$(mktemp -d)"
tmp_diskwarm_out="$(mktemp)"
tmp_diskwarm_metrics="$(mktemp)"
tmp_cyclic_map="$(mktemp)"
tmp_telemetry_script="$(mktemp)"
tmp_telemetry_out="$(mktemp)"
tmp_telemetry_metrics="$(mktemp)"
tmp_trace_jsonl="$(mktemp)"
tmp_serve_out="$(mktemp)"
tmp_serve_metrics="$(mktemp)"
tmp_shutdown_script="$(mktemp)"
trap 'rm -f "$tmp_metrics" "$tmp_twice_metrics" "$tmp_twice_script" "$tmp_serial_out" "$tmp_diskwarm_out" "$tmp_diskwarm_metrics" "$tmp_cyclic_map" "$tmp_telemetry_script" "$tmp_telemetry_out" "$tmp_telemetry_metrics" "$tmp_trace_jsonl" "$tmp_serve_out" "$tmp_serve_metrics" "$tmp_shutdown_script"; rm -rf "$tmp_chunk_dir" "$tmp_cache_dir"' EXIT
target/release/clio-shell \
    --script examples/scripts/demo.clio \
    --metrics "$tmp_metrics" \
    --threads 1 --no-cache >/dev/null
normalize_saved_ns "$tmp_metrics"
if ! diff -u scripts/golden/demo-counters.json "$tmp_metrics"; then
    echo "verify: FAILED — work counters drifted from scripts/golden/demo-counters.json" >&2
    echo "         (if the change is intentional, regenerate the golden file)" >&2
    exit 1
fi

# Tier 2b: golden warm-path gate. The demo command sequence is replayed
# TWICE through one engine process with the cache on; the second pass
# re-runs every operator against already-memoized state. The combined
# counters are pinned (the honest deterministic form of "the second run
# does less algorithmic work": any regression in cache effectiveness
# inflates join.probes/scan.tuples and shows up as a diff), and the run
# must record at least one cache hit. Regenerate after intentional
# changes with the same sed/cat recipe below, writing the --metrics
# output over scripts/golden/demo-twice-counters.json.
echo "==> golden warm-path gate (demo.clio twice, cache on, --threads 1)"
sed '/^quit$/d' examples/scripts/demo.clio > "$tmp_twice_script"
sed '/^quit$/d' examples/scripts/demo.clio >> "$tmp_twice_script"
echo quit >> "$tmp_twice_script"
target/release/clio-shell \
    --script "$tmp_twice_script" \
    --metrics "$tmp_twice_metrics" \
    --threads 1 >/dev/null
normalize_saved_ns "$tmp_twice_metrics"
if ! diff -u scripts/golden/demo-twice-counters.json "$tmp_twice_metrics"; then
    echo "verify: FAILED — warm-path counters drifted from scripts/golden/demo-twice-counters.json" >&2
    echo "         (if the change is intentional, regenerate the golden file)" >&2
    exit 1
fi
cache_hits="$(sed -n 's/.*"cache\.hits": \([0-9][0-9]*\).*/\1/p' "$tmp_twice_metrics")"
if [ -z "$cache_hits" ] || [ "$cache_hits" -eq 0 ]; then
    echo "verify: FAILED — replaying demo.clio twice recorded no cache hits" >&2
    exit 1
fi
echo "    cache.hits = $cache_hits"

# Tier 2c: concurrent-session determinism gate. The demo script is run
# as FOUR concurrent sessions over one shared snapshot (the PR 4
# session service, see docs/concurrency.md); each session's chunk of
# the batch output must be byte-identical to a plain serial --script
# run. Any divergence means session isolation broke — shared mutable
# state leaking between sessions, or nondeterministic result merging.
echo "==> concurrent-session gate (demo.clio x4, --sessions 4, --threads 1)"
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 > "$tmp_serial_out"
target/release/clio-shell \
    --sessions 4 --threads 1 \
    examples/scripts/demo.clio examples/scripts/demo.clio \
    examples/scripts/demo.clio examples/scripts/demo.clio \
    | awk -v dir="$tmp_chunk_dir" '
        /^=== session [0-9]+: / { n++; next }
        n { print > (dir "/chunk" n-1) }'
for i in 0 1 2 3; do
    if ! diff -u "$tmp_serial_out" "$tmp_chunk_dir/chunk$i"; then
        echo "verify: FAILED — concurrent session $i diverged from the serial demo run" >&2
        exit 1
    fi
done
echo "    4 concurrent sessions byte-identical to serial"

# Tier 2d: disk-warm restart gate (PR 5 persistence). The demo runs
# with --cache-dir into a fresh directory (cold, populating the store),
# then FRESH PROCESSES replay it over the same directory. The cold run's
# and the disk-warm replay's stdout must be byte-identical to the plain
# serial run (persistence is invisible; the demo's in-shell `stats`
# table is all-zero without --metrics, so the comparison is exact), and
# a metrics-enabled replay's counter snapshot is pinned — it must match
# scripts/golden/demo-diskwarm-counters.json, which records
# cache.disk_hits > 0 (the replay really was served from disk).
# Regenerate after intentional changes by re-running the commands below
# and copying the --metrics output over the golden file.
echo "==> disk-warm restart gate (demo.clio, --cache-dir, fresh process replay)"
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 \
    --cache-dir "$tmp_cache_dir" > "$tmp_diskwarm_out"
if ! diff -u "$tmp_serial_out" "$tmp_diskwarm_out"; then
    echo "verify: FAILED — cold --cache-dir run diverged from the plain serial run" >&2
    exit 1
fi
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 \
    --cache-dir "$tmp_cache_dir" > "$tmp_diskwarm_out"
if ! diff -u "$tmp_serial_out" "$tmp_diskwarm_out"; then
    echo "verify: FAILED — disk-warm restart diverged from the plain serial run" >&2
    exit 1
fi
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 \
    --cache-dir "$tmp_cache_dir" \
    --metrics "$tmp_diskwarm_metrics" >/dev/null
normalize_saved_ns "$tmp_diskwarm_metrics"
if ! diff -u scripts/golden/demo-diskwarm-counters.json "$tmp_diskwarm_metrics"; then
    echo "verify: FAILED — disk-warm counters drifted from scripts/golden/demo-diskwarm-counters.json" >&2
    echo "         (if the change is intentional, regenerate the golden file)" >&2
    exit 1
fi
disk_hits="$(sed -n 's/.*"cache\.disk_hits": \([0-9][0-9]*\).*/\1/p' "$tmp_diskwarm_metrics")"
if [ -z "$disk_hits" ] || [ "$disk_hits" -eq 0 ]; then
    echo "verify: FAILED — restarted --cache-dir process recorded no disk hits" >&2
    exit 1
fi
echo "    cache.disk_hits = $disk_hits"

# Tier 2e: timing-telemetry gate (PR 6, docs/observability.md § Timing).
# The demo plus a loaded CYCLIC mapping (so the naive full-disjunction
# plan runs, not just the tree-graph outer join) is traced with
# --trace-out and --metrics. The gate checks the whole export path:
# every JSONL line is a well-formed Chrome trace event, the event count
# equals the --trace tree's span count, and the metrics report carries
# nonzero latency histograms for `fd.naive` and `incr.fd`. The golden
# gates above run WITHOUT tracing, so histogram keys never appear there
# — timing stays invisible to the counter snapshots by construction.
echo "==> timing-telemetry gate (demo + cyclic mapping, --trace-out, --metrics)"
cat > "$tmp_cyclic_map" <<'EOF'
target Kids (ID str not null, name str, affiliation str, address str, contactPh str, BusSchedule str, FamilyIncome int)
node Children
node Parents
node PhoneDir
edge Children -- Parents : Children.mid = Parents.ID
edge Parents -- PhoneDir : PhoneDir.ID = Parents.ID
edge Children -- PhoneDir : Children.mid = PhoneDir.ID
corr Children.ID -> ID
corr Children.name -> name
corr Parents.affiliation -> affiliation
corr PhoneDir.number -> contactPh
EOF
sed '/^quit$/d' examples/scripts/demo.clio > "$tmp_telemetry_script"
{
    echo "load $tmp_cyclic_map"
    echo "target"
    echo "quit"
} >> "$tmp_telemetry_script"
target/release/clio-shell \
    --script "$tmp_telemetry_script" --threads 1 \
    --trace --trace-out "$tmp_trace_jsonl" \
    --metrics "$tmp_telemetry_metrics" > "$tmp_telemetry_out"
span_count="$(sed -n 's/^trace: \([0-9][0-9]*\) spans* on .*/\1/p' "$tmp_telemetry_out")"
if [ -z "$span_count" ] || [ "$span_count" -eq 0 ]; then
    echo "verify: FAILED — traced telemetry run printed no span tree" >&2
    exit 1
fi
event_count="$(wc -l < "$tmp_trace_jsonl" | tr -d ' ')"
if [ "$event_count" -ne "$span_count" ]; then
    echo "verify: FAILED — --trace-out exported $event_count events for $span_count spans" >&2
    exit 1
fi
python3 - "$tmp_trace_jsonl" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    for lineno, line in enumerate(f, 1):
        event = json.loads(line)
        for key in ("ph", "ts", "dur", "name", "pid", "tid"):
            assert key in event, f"line {lineno}: missing `{key}`: {line!r}"
        assert event["ph"] == "X", f"line {lineno}: not a complete event"
EOF
python3 - "$tmp_telemetry_metrics" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
hists = report.get("histograms", {})
for name in ("fd.naive", "incr.fd", "incr.fd.scheduled"):
    count = hists.get(name, {}).get("count", 0)
    assert count > 0, f"histogram `{name}` missing or empty: {sorted(hists)}"
EOF
echo "    $event_count trace events = $span_count spans; fd.naive + incr.fd + incr.fd.scheduled histograms populated"

# Tier 2f: eviction-pressure gate (PR 7, docs/incremental.md § Eviction
# policy). The demo plus the cyclic mapping is replayed twice in one
# process with the cache's byte budget shrunk to half the workload's
# measured demand (`cache limit` mid-script), once per eviction policy.
# The gate pins the end-to-end wiring under real pressure: the budget
# actually binds (the LRU run must record evictions), the --cache-policy
# flag actually switches victim selection (the cost run must still
# convert lookups into hits under the same pressure), and the policies
# must be answer-invisible — both runs' stdout byte-identical. The
# in-shell `stats` counter table is the one legitimate difference
# (hit/miss/eviction counts are exactly what a policy is *allowed* to
# change), so its rows are filtered out of the comparison. Which policy
# wins on hit rate is workload-dependent — this twice-replay is
# recency-friendly — so the policy-quality claim is pinned where it is
# real instead: the B14 edit-replay sweep (EXPERIMENTS.md) and the
# bench `incremental_eviction_policy` group.
echo "==> eviction-pressure gate (demo + cyclic mapping twice, half budget, lru vs cost)"
tmp_evict_script="$(mktemp)"
tmp_evict_probe="$(mktemp)"
tmp_evict_lru="$(mktemp)"
tmp_evict_cost="$(mktemp)"
tmp_evict_lru_out="$(mktemp)"
tmp_evict_cost_out="$(mktemp)"
evict_body() {
    sed '/^quit$/d' examples/scripts/demo.clio
    echo "load $tmp_cyclic_map"
    echo "target"
}
{ evict_body; evict_body; echo quit; } > "$tmp_evict_script"
target/release/clio-shell \
    --script "$tmp_evict_script" --threads 1 \
    --metrics "$tmp_evict_probe" >/dev/null
demand_bytes="$(sed -n 's/.*"cache\.bytes": \([0-9][0-9]*\).*/\1/p' "$tmp_evict_probe")"
budget=$((demand_bytes / 2))
{ echo "cache limit $budget"; evict_body; evict_body; echo quit; } > "$tmp_evict_script"
target/release/clio-shell \
    --script "$tmp_evict_script" --threads 1 --cache-policy lru \
    --metrics "$tmp_evict_lru" > "$tmp_evict_lru_out"
target/release/clio-shell \
    --script "$tmp_evict_script" --threads 1 --cache-policy cost \
    --metrics "$tmp_evict_cost" > "$tmp_evict_cost_out"
strip_counter_rows() {
    sed -i '/^[a-z_.][a-z_.]*  *[0-9][0-9]*$/d' "$1"
}
strip_counter_rows "$tmp_evict_lru_out"
strip_counter_rows "$tmp_evict_cost_out"
if ! diff -u "$tmp_evict_lru_out" "$tmp_evict_cost_out"; then
    echo "verify: FAILED — eviction policy changed shell output (must be answer-invisible)" >&2
    exit 1
fi
counter() { sed -n 's/.*"'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1"; }
lru_hits="$(counter "$tmp_evict_lru" 'cache\.hits')"
lru_evictions="$(counter "$tmp_evict_lru" 'cache\.evictions')"
cost_hits="$(counter "$tmp_evict_cost" 'cache\.hits')"
cost_evictions="$(counter "$tmp_evict_cost" 'cache\.evictions')"
if [ -z "$lru_evictions" ] || [ "$lru_evictions" -eq 0 ]; then
    echo "verify: FAILED — half budget ($budget bytes) induced no LRU evictions" >&2
    exit 1
fi
if [ -z "$cost_hits" ] || [ "$cost_hits" -eq 0 ]; then
    echo "verify: FAILED — cost-aware policy served no hits at half budget ($budget bytes)" >&2
    exit 1
fi
rm -f "$tmp_evict_script" "$tmp_evict_probe" "$tmp_evict_lru" "$tmp_evict_cost" \
    "$tmp_evict_lru_out" "$tmp_evict_cost_out"
echo "    half budget = $budget bytes: lru $lru_hits hits / $lru_evictions evictions, cost $cost_hits hits / $cost_evictions evictions"

# Tier 2g: networked-service gate (PR 8, docs/service.md). Phase A
# starts `clio-shell serve` on an ephemeral port and drives FOUR
# concurrent `connect --script demo.clio` clients; each client's stdout
# must be byte-identical to the serial --script run from tier 2c (the
# framed TCP path is answer-invisible), and the server must exit 0 when
# a client sends the protocol-level `shutdown`. Phase B repeats with
# --metrics and exactly four accepted connections (three demo clients
# plus one quit-stripped-demo + shutdown client) and pins the service
# counters: net.accepted == 4, net.frame_errors == 0 (no client sent a
# malformed frame; frame-fault handling itself is pinned by the
# crates/cli/tests/net_service.rs integration tests), and the shared
# cache store really is shared — later connections warm from earlier
# connections' spills (cache.hits > 0, cache.disk_hits > 0).
echo "==> networked-service gate (serve + 4 concurrent connect clients)"
wait_for_addr() {
    serve_addr=""
    tries=0
    while [ "$tries" -lt 100 ]; do
        serve_addr="$(sed -n 's/^listening on //p' "$1")"
        [ -n "$serve_addr" ] && return 0
        sleep 0.1
        tries=$((tries + 1))
    done
    echo "verify: FAILED — serve never announced its address" >&2
    return 1
}
: > "$tmp_serve_out"
target/release/clio-shell serve --port 0 --max-conns 4 --threads 1 \
    > "$tmp_serve_out" &
serve_pid=$!
wait_for_addr "$tmp_serve_out" || { kill "$serve_pid" 2>/dev/null; exit 1; }
client_pids=""
for i in 1 2 3 4; do
    target/release/clio-shell connect "$serve_addr" \
        --script examples/scripts/demo.clio > "$tmp_chunk_dir/net$i" &
    client_pids="$client_pids $!"
done
for pid in $client_pids; do
    if ! wait "$pid"; then
        echo "verify: FAILED — a networked client exited nonzero" >&2
        kill "$serve_pid" 2>/dev/null
        exit 1
    fi
done
for i in 1 2 3 4; do
    if ! diff -u "$tmp_serial_out" "$tmp_chunk_dir/net$i"; then
        echo "verify: FAILED — networked client $i diverged from the serial demo run" >&2
        kill "$serve_pid" 2>/dev/null
        exit 1
    fi
done
printf 'shutdown\n' | target/release/clio-shell connect "$serve_addr" >/dev/null
if ! wait "$serve_pid"; then
    echo "verify: FAILED — server did not exit cleanly on shutdown" >&2
    exit 1
fi
echo "    4 concurrent networked clients byte-identical to serial; clean shutdown"
: > "$tmp_serve_out"
target/release/clio-shell serve --port 0 --max-conns 4 --threads 1 \
    --metrics "$tmp_serve_metrics" > "$tmp_serve_out" &
serve_pid=$!
wait_for_addr "$tmp_serve_out" || { kill "$serve_pid" 2>/dev/null; exit 1; }
for i in 1 2 3; do
    target/release/clio-shell connect "$serve_addr" \
        --script examples/scripts/demo.clio >/dev/null
done
sed '/^quit$/d' examples/scripts/demo.clio > "$tmp_shutdown_script"
echo shutdown >> "$tmp_shutdown_script"
target/release/clio-shell connect "$serve_addr" \
    --script "$tmp_shutdown_script" >/dev/null
if ! wait "$serve_pid"; then
    echo "verify: FAILED — metrics server did not exit cleanly on shutdown" >&2
    exit 1
fi
# First match only: the report also mirrors every counter into
# per-connection session tables, and only the top-level total is wanted.
net_accepted="$(counter "$tmp_serve_metrics" 'net\.accepted' | head -n 1)"
net_frame_errors="$(counter "$tmp_serve_metrics" 'net\.frame_errors' | head -n 1)"
net_hits="$(counter "$tmp_serve_metrics" 'cache\.hits' | head -n 1)"
net_disk_hits="$(counter "$tmp_serve_metrics" 'cache\.disk_hits' | head -n 1)"
if [ "${net_accepted:-0}" -ne 4 ]; then
    echo "verify: FAILED — expected net.accepted == 4, got ${net_accepted:-none}" >&2
    exit 1
fi
if [ "${net_frame_errors:-1}" -ne 0 ]; then
    echo "verify: FAILED — well-formed clients recorded net.frame_errors = ${net_frame_errors:-none}" >&2
    exit 1
fi
if [ -z "$net_hits" ] || [ "$net_hits" -eq 0 ]; then
    echo "verify: FAILED — networked sessions recorded no cache hits" >&2
    exit 1
fi
if [ -z "$net_disk_hits" ] || [ "$net_disk_hits" -eq 0 ]; then
    echo "verify: FAILED — connections did not warm from the shared store (cache.disk_hits = 0)" >&2
    exit 1
fi
echo "    net.accepted = $net_accepted, net.frame_errors = $net_frame_errors, cache.hits = $net_hits, cache.disk_hits = $net_disk_hits"

# Tier 2h: paged-backend gate (PR 9, docs/storage.md). The paper
# database is spilled to a paged on-disk directory by the shell's own
# `db save`, then the demo replays over it with --db-dir and a buffer
# pool (2 pages) far smaller than the heap files, so relations stream
# through the pager instead of loading as a unit. The paged stdout must
# be byte-identical to the plain serial run from tier 2c (the storage
# backend is answer-invisible), and so must each chunk of a tier-2c
# style 4-session concurrent batch over the same directory. A metrics
# replay then pins that paging really happened — pager.misses > 0 and
# pager.evictions > 0 (the 2-page pool actually bounded memory) — and
# that the read path was clean (pager.load_errors == 0; a nonzero count
# means a checksum or framing fault degraded a page to a logged error).
echo "==> paged-backend gate (db save + demo.clio over --db-dir, pool 2)"
tmp_db_dir="$(mktemp -d)"
tmp_paged_out="$(mktemp)"
tmp_paged_metrics="$(mktemp)"
tmp_save_script="$(mktemp)"
{ echo "db save $tmp_db_dir/pg"; echo quit; } > "$tmp_save_script"
target/release/clio-shell --script "$tmp_save_script" >/dev/null
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 \
    --db-dir "$tmp_db_dir/pg" --db-pool 2 > "$tmp_paged_out"
if ! diff -u "$tmp_serial_out" "$tmp_paged_out"; then
    echo "verify: FAILED — paged-backend run diverged from the plain serial run" >&2
    rm -rf "$tmp_db_dir"; rm -f "$tmp_paged_out" "$tmp_paged_metrics" "$tmp_save_script"
    exit 1
fi
target/release/clio-shell \
    --sessions 4 --threads 1 --db-dir "$tmp_db_dir/pg" --db-pool 2 \
    examples/scripts/demo.clio examples/scripts/demo.clio \
    examples/scripts/demo.clio examples/scripts/demo.clio \
    | awk -v dir="$tmp_chunk_dir" '
        /^=== session [0-9]+: / { n++; next }
        n { print > (dir "/paged" n-1) }'
for i in 0 1 2 3; do
    if ! diff -u "$tmp_serial_out" "$tmp_chunk_dir/paged$i"; then
        echo "verify: FAILED — paged concurrent session $i diverged from the serial demo run" >&2
        rm -rf "$tmp_db_dir"; rm -f "$tmp_paged_out" "$tmp_paged_metrics" "$tmp_save_script"
        exit 1
    fi
done
target/release/clio-shell \
    --script examples/scripts/demo.clio --threads 1 \
    --db-dir "$tmp_db_dir/pg" --db-pool 2 \
    --metrics "$tmp_paged_metrics" >/dev/null
pager_misses="$(counter "$tmp_paged_metrics" 'pager\.misses' | head -n 1)"
pager_evictions="$(counter "$tmp_paged_metrics" 'pager\.evictions' | head -n 1)"
pager_load_errors="$(counter "$tmp_paged_metrics" 'pager\.load_errors' | head -n 1)"
rm -rf "$tmp_db_dir"; rm -f "$tmp_paged_out" "$tmp_paged_metrics" "$tmp_save_script"
if [ "${pager_misses:-0}" -eq 0 ]; then
    echo "verify: FAILED — paged run recorded no pager misses (nothing streamed from disk)" >&2
    exit 1
fi
if [ "${pager_evictions:-0}" -eq 0 ]; then
    echo "verify: FAILED — the 2-page buffer pool never evicted (pool did not bound memory)" >&2
    exit 1
fi
if [ "${pager_load_errors:-1}" -ne 0 ]; then
    echo "verify: FAILED — paged run degraded pages (pager.load_errors = ${pager_load_errors:-none})" >&2
    exit 1
fi
echo "    paged demo + 4 concurrent paged sessions byte-identical; pager.misses = $pager_misses, pager.evictions = $pager_evictions, pager.load_errors = $pager_load_errors"

# Tier 2i: planner / MAP-language gate (PR 10, docs/planner.md). The
# same cyclic mapping (three-node cycle plus a pushable source filter)
# is loaded two ways — script format via `load`, MAP language via
# `map load` — and each is evaluated with the planner off and on. All
# four runs' stdout (prompt-echo lines stripped, since the load
# commands differ textually) must be byte-identical: the language is a
# faithful surface for the script format, and the plan-based executor
# is answer-invisible. Each script also runs `map show` (the canonical
# MAP printer — identical text regardless of how the mapping was
# loaded) and `explain` (must render a plan tree). A metrics replay of
# the planned run then pins that the rewrite really fired:
# plan.pushed_filters > 0 (the filter was pushed below the union) and
# plan.evals > 0 (evaluation actually routed through the planner).
# Regenerate nothing — this gate has no golden file; equality is
# between live runs.
echo "==> planner gate (load vs map load, --plan off/on, pushdown counters)"
tmp_lang_legacy="$(mktemp)"
tmp_lang_map="$(mktemp)"
tmp_lang_script_a="$(mktemp)"
tmp_lang_script_b="$(mktemp)"
tmp_lang_out_a="$(mktemp)"
tmp_lang_out_b="$(mktemp)"
tmp_lang_out_ap="$(mktemp)"
tmp_lang_out_bp="$(mktemp)"
tmp_plan_metrics="$(mktemp)"
cat > "$tmp_lang_legacy" <<'EOF'
target Kids (ID str not null, name str, affiliation str, address str, contactPh str, BusSchedule str, FamilyIncome int)
node Children
node Parents
node PhoneDir
edge Children -- Parents : Children.mid = Parents.ID
edge Parents -- PhoneDir : PhoneDir.ID = Parents.ID
edge Children -- PhoneDir : Children.mid = PhoneDir.ID
corr Children.ID -> ID
corr Children.name -> name
corr Parents.affiliation -> affiliation
corr PhoneDir.number -> contactPh
where source Children.age < 7
EOF
cat > "$tmp_lang_map" <<'EOF'
MAP Kids (ID str not null, name str, affiliation str, address str, contactPh str, BusSchedule str, FamilyIncome int)
FROM Children, Parents, PhoneDir
JOIN Children, Parents ON Children.mid = Parents.ID
JOIN Parents, PhoneDir ON PhoneDir.ID = Parents.ID
JOIN Children, PhoneDir ON Children.mid = PhoneDir.ID
WHERE SOURCE Children.age < 7
SELECT Children.ID AS ID, Children.name AS name, Parents.affiliation AS affiliation, PhoneDir.number AS contactPh
EOF
{ echo "load $tmp_lang_legacy"; echo target; echo "map show"; echo explain; echo quit; } > "$tmp_lang_script_a"
{ echo "map load $tmp_lang_map"; echo target; echo "map show"; echo explain; echo quit; } > "$tmp_lang_script_b"
run_and_strip() { # $2... flags; stdout has prompt-echo lines removed
    script="$1"; out="$2"; shift 2
    target/release/clio-shell --script "$script" --threads 1 "$@" > "$out"
    sed -i '/^clio> /d' "$out"
}
run_and_strip "$tmp_lang_script_a" "$tmp_lang_out_a"
run_and_strip "$tmp_lang_script_b" "$tmp_lang_out_b"
run_and_strip "$tmp_lang_script_a" "$tmp_lang_out_ap" --plan
run_and_strip "$tmp_lang_script_b" "$tmp_lang_out_bp" --plan
for pair in "$tmp_lang_out_b:map-load" "$tmp_lang_out_ap:planned" "$tmp_lang_out_bp:planned-map-load"; do
    other="${pair%%:*}"
    label="${pair##*:}"
    if ! diff -u "$tmp_lang_out_a" "$other"; then
        echo "verify: FAILED — $label run diverged from the script-format definitional run" >&2
        exit 1
    fi
done
if ! grep -q '^plan for Kids' "$tmp_lang_out_a"; then
    echo "verify: FAILED — explain printed no plan tree" >&2
    exit 1
fi
target/release/clio-shell --script "$tmp_lang_script_b" --threads 1 --plan \
    --metrics "$tmp_plan_metrics" >/dev/null
plan_pushed="$(counter "$tmp_plan_metrics" 'plan\.pushed_filters' | head -n 1)"
plan_evals="$(counter "$tmp_plan_metrics" 'plan\.evals' | head -n 1)"
rm -f "$tmp_lang_legacy" "$tmp_lang_map" "$tmp_lang_script_a" "$tmp_lang_script_b" \
    "$tmp_lang_out_a" "$tmp_lang_out_b" "$tmp_lang_out_ap" "$tmp_lang_out_bp" "$tmp_plan_metrics"
if [ "${plan_pushed:-0}" -eq 0 ]; then
    echo "verify: FAILED — planned run pushed no filters (plan.pushed_filters = ${plan_pushed:-none})" >&2
    exit 1
fi
if [ "${plan_evals:-0}" -eq 0 ]; then
    echo "verify: FAILED — --plan run recorded no planned evaluations" >&2
    exit 1
fi
echo "    load == map load == planned (byte-identical); plan.pushed_filters = $plan_pushed, plan.evals = $plan_evals"

echo "verify: OK"
