#!/usr/bin/env sh
# Tier-1 verification gate for this repo (see ROADMAP.md).
#
# Offline-safe: every dependency is a path dependency (workspace crates
# plus the std-only shims under vendor/), so no network access is needed.
# Run from anywhere; the script cd's to the repo root.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "verify: OK"
