#!/usr/bin/env sh
# Tier-1 verification gate for this repo (see ROADMAP.md).
#
# Offline-safe: every dependency is a path dependency (workspace crates
# plus the std-only shims under vendor/), so no network access is needed.
# Run from anywhere; the script cd's to the repo root.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

# Tier 2: golden work-counter gate. A scripted demo run with one worker
# thread must reproduce the checked-in counter snapshot byte-for-byte —
# counters are per-work-unit sums, so any drift means an algorithmic
# change (e.g. a hash join silently degrading to a nested loop), which
# must be acknowledged by regenerating the golden file:
#
#   target/release/clio-shell --script examples/scripts/demo.clio \
#       --metrics scripts/golden/demo-counters.json --threads 1
echo "==> golden counter gate (demo.clio, --threads 1)"
tmp_metrics="$(mktemp)"
trap 'rm -f "$tmp_metrics"' EXIT
target/release/clio-shell \
    --script examples/scripts/demo.clio \
    --metrics "$tmp_metrics" \
    --threads 1 >/dev/null
if ! diff -u scripts/golden/demo-counters.json "$tmp_metrics"; then
    echo "verify: FAILED — work counters drifted from scripts/golden/demo-counters.json" >&2
    echo "         (if the change is intentional, regenerate the golden file)" >&2
    exit 1
fi

echo "verify: OK"
