//! Golden tests: one per paper figure / numbered example, checking the
//! facts the paper asserts (DESIGN.md, per-experiment index F1–F12,
//! E3.10–E6.2).

use clio::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

/// F1 — Figure 1: the source database satisfies every asserted fact.
#[test]
fn figure1_invariants() {
    let db = paper_database();
    db.check_constraints().unwrap();
    assert_eq!(
        db.relation_names(),
        vec!["Children", "Parents", "PhoneDir", "SBPS", "XmasBazaar"]
    );
    // Maya = 002
    let maya = db
        .relation("Children")
        .unwrap()
        .rows_where("ID", &Value::str("002"))
        .unwrap();
    assert_eq!(maya[0][1], Value::str("Maya"));
    // focus children of Figure 9
    for id in ["001", "002", "004", "009"] {
        assert_eq!(
            db.relation("Children")
                .unwrap()
                .rows_where("ID", &Value::str(id))
                .unwrap()
                .len(),
            1
        );
    }
    // parent 205 is childless
    let children = db.relation("Children").unwrap();
    for row in children.rows() {
        assert_ne!(row[3], Value::str("205"));
        assert_ne!(row[4], Value::str("205"));
    }
}

/// F2 — Figure 2: after correspondences v1, v2 the target holds the
/// children's IDs and names, everything else null.
#[test]
fn figure2_target_after_v1_v2() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    session.add_correspondence("Children.name", "name").unwrap();
    let preview = session.target_preview().unwrap();
    assert_eq!(preview.len(), 4);
    for row in preview.rows() {
        assert!(!row[0].is_null());
        assert!(!row[1].is_null());
        for v in &row[2..] {
            assert!(v.is_null());
        }
    }
}

/// F3 — Figure 3: the affiliation correspondence produces exactly two
/// scenarios (mother via mid, father via fid), distinguishable on Maya.
#[test]
fn figure3_two_scenarios() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    let ids = session
        .add_correspondence("Parents.affiliation", "affiliation")
        .unwrap();
    assert_eq!(ids.len(), 2);

    // Maya's affiliation differs across scenarios: Almaden (mother 203)
    // vs AT&T (father 204) — exactly what lets the user tell them apart.
    let mut maya_affiliations = Vec::new();
    for id in ids {
        let w = session.workspaces().iter().find(|w| w.id == id).unwrap();
        let out = w.mapping.evaluate(session.database(), &funcs()).unwrap();
        let maya = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("002"))
            .unwrap();
        maya_affiliations.push(maya[2].to_string());
    }
    maya_affiliations.sort();
    assert_eq!(maya_affiliations, vec!["AT&T", "Almaden"]);
}

/// F4 — Figure 4: walking to PhoneDir yields scenarios including one that
/// introduces a second copy of Parents.
#[test]
fn figure4_copy_introduced() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    let ids = session
        .add_correspondence("Parents.affiliation", "affiliation")
        .unwrap();
    let fid = ids
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.description.contains("fid")
        })
        .copied()
        .unwrap();
    session.confirm(fid).unwrap();

    let walks = session.data_walk(None, "PhoneDir").unwrap();
    assert!(walks.len() >= 2);
    let copies: Vec<bool> = walks
        .iter()
        .map(|id| {
            let w = session.workspaces().iter().find(|w| w.id == *id).unwrap();
            w.mapping.graph.node_by_alias("Parents2").is_some()
        })
        .collect();
    assert!(copies.contains(&true), "a Parents2 scenario must exist");
    assert!(copies.contains(&false), "a reuse scenario must exist");
}

/// F5 — Figure 5: chasing 002 finds one attribute of SBPS and two of
/// XmasBazaar.
#[test]
fn figure5_chase_002() {
    let db = paper_database();
    let index = ValueIndex::build(&db);
    let mut g = QueryGraph::new();
    g.add_node(Node::new("Children")).unwrap();
    let m = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
    let alts = data_chase(
        &m,
        &db,
        &index,
        "Children",
        "ID",
        &Value::str("002"),
        &funcs(),
    )
    .unwrap();
    assert_eq!(alts.len(), 3);
    let sbps: Vec<_> = alts.iter().filter(|a| a.relation == "SBPS").collect();
    let bazaar: Vec<_> = alts.iter().filter(|a| a.relation == "XmasBazaar").collect();
    assert_eq!(sbps.len(), 1);
    assert_eq!(bazaar.len(), 2);
    assert_eq!(sbps[0].attribute, "ID");
}

/// F6 — Figure 6 / Example 3.12: induced connected subgraphs of the path
/// graph Children—Parents—PhoneDir.
#[test]
fn figure6_subgraphs_example_3_12() {
    let g = figure6_graph();
    let subs = connected_subsets(&g);
    let tags: Vec<String> = subs.iter().map(|&m| g.coverage_tag(m)).collect();
    assert_eq!(tags, vec!["C", "P", "Ph", "CP", "PPh", "CPPh"]);
    // {Children, PhoneDir} is NOT induced-connected
    assert!(!subs.contains(&0b101));
}

/// F7 — Figure 7: padding and subsumption of associations t, u, v.
#[test]
fn figure7_associations() {
    let db = paper_database();
    let g = figure6_graph();
    let funcs = funcs();
    let scheme = g.scheme(&db).unwrap();

    // t: full association of {Children, Parents} for Maya
    let f_cp = full_associations(&db, &g, 0b011, &funcs).unwrap();
    let t = f_cp
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("002"))
        .expect("Maya joins her mother")
        .clone();

    // u: t padded with nulls on PhoneDir — a possible association
    let padded_scheme = f_cp.scheme();
    let u = AssociationSet::pad_row(&scheme, padded_scheme, &t).unwrap();
    assert!(u[scheme.arity() - 1].is_null());

    // v: the full CPPh association for Maya strictly subsumes u
    let f_full = full_associations(&db, &g, 0b111, &funcs).unwrap();
    let v_row = f_full
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("002"))
        .expect("Maya's mother has a phone");
    let v = AssociationSet::pad_row(&scheme, f_full.scheme(), v_row).unwrap();
    assert!(clio::relational::ops::strictly_subsumes(&v, &u));
}

/// F8 — Figure 8: the full disjunction of the running graph, tagged by
/// coverage, with both algorithms agreeing.
#[test]
fn figure8_full_disjunction() {
    let db = paper_database();
    let g = running_graph();
    let funcs = funcs();
    let mut naive = full_disjunction(&db, &g, FdAlgo::Naive, &funcs).unwrap();
    let mut outer = full_disjunction(&db, &g, FdAlgo::OuterJoin, &funcs).unwrap();
    naive.sort_canonical(&g);
    outer.sort_canonical(&g);
    assert_eq!(naive.table().rows(), outer.table().rows());

    // categories per Example 4.3 / Figure 9
    let tags: Vec<String> = naive
        .categories()
        .iter()
        .map(|&c| g.coverage_tag(c))
        .collect();
    assert_eq!(tags, vec!["PPh", "CPPh", "CPPhS"]);
    // 4 children + 4 childless-or-motherless... exactly: 2 bus kids
    // (CPPhS), 2 non-bus kids (CPPh), 4 non-father parents (PPh)
    assert_eq!(naive.len(), 8);
    let render = naive.render(&g);
    assert!(render.contains("CPPhS"));
    assert!(render.contains("Maya"));
}

/// F9 — Figure 9: a minimal sufficient illustration of the Example-3.15
/// mapping; dropping a CPPhS example keeps it sufficient, dropping the
/// PPh example breaks graph sufficiency (Example 4.3).
#[test]
fn figure9_sufficient_illustration() {
    let db = paper_database();
    let m = example_3_15_mapping();
    let funcs = funcs();
    let population = m.examples(&db, &funcs).unwrap();
    let ill = Illustration::minimal_sufficient(&population, m.target.arity());
    assert!(is_sufficient(
        &ill.examples,
        &population,
        m.target.arity(),
        SufficiencyScope::mapping()
    ));
    // all three categories represented
    assert_eq!(ill.category_histogram().len(), 3);
    // both polarities present (age<7 trims Ben; ID-null trims PPh rows)
    let (pos, neg) = ill.polarity_counts();
    assert!(pos >= 1 && neg >= 1);

    // removing every PPh example breaks sufficiency of the query graph
    let g = running_graph();
    let no_pph: Vec<Example> = population
        .iter()
        .filter(|e| g.coverage_tag(e.coverage) != "PPh")
        .cloned()
        .collect();
    assert!(!is_sufficient(
        &no_pph,
        &population,
        m.target.arity(),
        SufficiencyScope::graph_only()
    ));

    // removing ONE of the two CPPhS examples keeps it sufficient
    let cpphs: Vec<usize> = population
        .iter()
        .enumerate()
        .filter(|(_, e)| g.coverage_tag(e.coverage) == "CPPhS")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(cpphs.len(), 2);
    let minus_one: Vec<Example> = population
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != cpphs[0])
        .map(|(_, e)| e.clone())
        .collect();
    assert!(is_sufficient(
        &minus_one,
        &population,
        m.target.arity(),
        SufficiencyScope::graph_only()
    ));
}

/// F9b / Example 4.8 — focus semantics: focusing on the four children
/// includes all their associations; parent 205's association is not
/// required.
#[test]
fn figure9_focus_example_4_8() {
    let db = paper_database();
    let m = example_3_15_mapping();
    let funcs = funcs();
    let all = m.examples(&db, &funcs).unwrap();
    let scheme = m.graph.scheme(&db).unwrap();

    let focus_children = Focus {
        node: m.graph.node_by_alias("Children").unwrap(),
        tuples: db.relation("Children").unwrap().rows().to_vec(),
    };
    let focused = focused_examples(&m, &db, &funcs, &focus_children).unwrap();
    assert_eq!(focused.len(), 4); // one association per child
    let ill = Illustration { examples: focused };
    assert!(is_focused(&ill, &all, &scheme, "Children", &focus_children));

    // not focused on parent 205
    let focus_205 = Focus::on_value(
        &m,
        &db,
        m.graph.node_by_alias("Parents").unwrap(),
        "ID",
        &Value::str("205"),
    )
    .unwrap();
    assert!(!is_focused(&ill, &all, &scheme, "Parents", &focus_205));
}

/// F9c — a minimal sufficient illustration *focused on Maya* (Defs 4.6 +
/// 4.7 combined): contains Maya's association plus sufficiency repairs,
/// and is both sufficient and focused.
#[test]
fn figure9_focused_and_sufficient() {
    let db = paper_database();
    let m = example_3_15_mapping();
    let funcs = funcs();
    let all = m.examples(&db, &funcs).unwrap();
    let scheme = m.graph.scheme(&db).unwrap();
    let node = m.graph.node_by_alias("Children").unwrap();
    let focus = Focus::on_value(&m, &db, node, "ID", &Value::str("002")).unwrap();
    let required = focused_examples(&m, &db, &funcs, &focus).unwrap();
    assert_eq!(required.len(), 1);

    let ill = Illustration::minimal_sufficient_focused(&all, m.target.arity(), &required);
    assert!(is_sufficient(
        &ill.examples,
        &all,
        m.target.arity(),
        SufficiencyScope::mapping()
    ));
    assert!(is_focused(&ill, &all, &scheme, "Children", &focus));
    // Maya's example is in there
    assert!(ill
        .examples
        .iter()
        .any(|e| e.association[0] == Value::str("002")));
    // and the result is not much larger than the unfocused minimum
    let unfocused = Illustration::minimal_sufficient(&all, m.target.arity());
    assert!(ill.len() <= unfocused.len() + required.len());
}

/// F10/F11 — data walk path sets (Example 5.1): walks(G1, Children,
/// PhoneDir) with knowledge {mid, fid, phone-fk} gives the Figure-11
/// alternatives.
#[test]
fn figure11_walks_example_5_1() {
    let db = paper_database();
    let knowledge = paper_knowledge();
    let mut g1 = QueryGraph::new();
    let c = g1.add_node(Node::new("Children")).unwrap();
    let p = g1.add_node(Node::new("Parents")).unwrap();
    g1.add_edge(c, p, parse_expr("Children.fid = Parents.ID").unwrap())
        .unwrap();
    let m = Mapping::new(g1, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));

    let alts = data_walk(&m, &db, &knowledge, "Children", "PhoneDir", 3, &funcs()).unwrap();
    // G2-style: reuse Parents (fid edge matches); G3-style: Parents2 copy
    assert_eq!(alts.len(), 2);
    let reuse = alts
        .iter()
        .find(|a| a.new_nodes == vec!["PhoneDir".to_owned()])
        .unwrap();
    assert_eq!(reuse.mapping.graph.node_count(), 3);
    let copy = alts
        .iter()
        .find(|a| a.new_nodes.contains(&"Parents2".to_owned()))
        .unwrap();
    assert_eq!(copy.mapping.graph.node_count(), 4);
}

/// F12 — chase graph extensions (Example 5.2): each chase alternative is
/// the original graph plus one node and one equijoin edge.
#[test]
fn figure12_chase_graphs_example_5_2() {
    let db = paper_database();
    let index = ValueIndex::build(&db);
    let g1 = figure6_graph();
    let m = Mapping::new(g1.clone(), kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
    let alts = data_chase(
        &m,
        &db,
        &index,
        "Children",
        "ID",
        &Value::str("002"),
        &funcs(),
    )
    .unwrap();
    for a in &alts {
        assert_eq!(a.mapping.graph.node_count(), g1.node_count() + 1);
        assert_eq!(a.mapping.graph.edges().len(), g1.edges().len() + 1);
        let new_edge = a.mapping.graph.edges().last().unwrap();
        assert!(new_edge.predicate.to_string().starts_with("Children.ID = "));
    }
}

/// E3.10 — Example 3.10: R1 ⊕ R2 = R2 on the paper data (every
/// child–parent pair extends to a phone).
#[test]
fn example_3_10_minimum_union_identity() {
    let db = paper_database();
    let g = figure6_graph();
    let funcs = funcs();
    let scheme = g.scheme(&db).unwrap();

    let r1 = full_associations(&db, &g, 0b011, &funcs).unwrap(); // C ⨝ P
    let r2 = full_associations(&db, &g, 0b111, &funcs).unwrap(); // C ⨝ P ⨝ Ph
    let r1p = clio::relational::ops::pad_to(&r1, &scheme).unwrap();
    let r2p = clio::relational::ops::pad_to(&r2, &scheme).unwrap();

    let mut m = minimum_union(&r1p, &r2p, SubsumptionAlgo::Partitioned).unwrap();
    let mut expect = r2p.clone();
    m.sort_canonical();
    expect.sort_canonical();
    assert_eq!(m.rows(), expect.rows(), "R1 ⊕ R2 must equal R2");
}

/// E3.15 — Example 3.15: the mapping query with concat correspondence and
/// both filters.
#[test]
fn example_3_15_mapping_query() {
    let db = paper_database();
    let m = example_3_15_mapping();
    let out = m.evaluate(&db, &funcs()).unwrap();
    // kids under 7 only
    let ids: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
    assert_eq!(out.len(), 3);
    assert!(!ids.contains(&"009".to_owned()));
    // contactPh = concat(type, ',', number) of the father's phone
    let maya = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("002"))
        .unwrap();
    assert_eq!(maya[4], Value::str("work,555-0104"));
    // bus schedule present for Maya, absent for Tom
    assert_eq!(maya[5], Value::str("8:15"));
    let tom = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("004"))
        .unwrap();
    assert!(tom[5].is_null());
}

/// E6.2 — ArrivalTime-style reuse is covered in unit tests; here check
/// the session-level flow end to end: a second correspondence for a
/// mapped attribute creates a new workspace reusing prior work.
#[test]
fn example_6_2_session_flow() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    let chases = session
        .data_chase("Children", "ID", &Value::str("002"))
        .unwrap();
    let sbps = chases
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("SBPS").is_some()
        })
        .copied()
        .unwrap();
    session.confirm(sbps).unwrap();
    session
        .add_correspondence("SBPS.time", "BusSchedule")
        .unwrap();

    // second computation of BusSchedule: from Children.docid
    let ids = session
        .add_correspondence("'doc-' || Children.docid", "BusSchedule")
        .unwrap();
    assert_eq!(ids.len(), 1);
    let alt = session
        .workspaces()
        .iter()
        .find(|w| w.id == ids[0])
        .unwrap();
    // the alternative rolled back to the pre-chase graph (Children only)
    assert_eq!(alt.mapping.graph.node_count(), 1);
    // and reuses the ID correspondence
    assert!(alt.mapping.correspondence_for("ID").is_some());
    assert!(alt
        .mapping
        .correspondence_for("BusSchedule")
        .unwrap()
        .expr
        .to_string()
        .contains("docid"));
}
