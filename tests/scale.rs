//! Moderate-scale end-to-end checks: the algorithms stay correct and
//! usable on workloads well beyond the paper's toy instance (Sec 6's
//! "large schemas / large data volumes" concern). Sizes are chosen to
//! keep the suite under a few seconds in debug builds.

use clio::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

#[test]
fn fd_algorithms_agree_on_a_wide_star_with_data() {
    let w = generate(&SyntheticSpec {
        topology: Topology::Star,
        relations: 6,
        rows: 120,
        match_rate: 0.6,
        payload_attrs: 1,
        seed: 99,
    });
    let funcs = funcs();
    let mut a = full_disjunction(&w.db, &w.graph, FdAlgo::Naive, &funcs).unwrap();
    let mut b = full_disjunction(&w.db, &w.graph, FdAlgo::OuterJoin, &funcs).unwrap();
    a.sort_canonical(&w.graph);
    b.sort_canonical(&w.graph);
    assert_eq!(a.table().rows(), b.table().rows());
    assert!(a.len() >= 120); // at least every hub row appears
}

#[test]
fn long_chain_mapping_end_to_end() {
    let w = generate(&SyntheticSpec {
        topology: Topology::Chain,
        relations: 10,
        rows: 60,
        match_rate: 0.75,
        payload_attrs: 1,
        seed: 5,
    });
    let funcs = funcs();
    let out = w.mapping.evaluate(&w.db, &funcs).unwrap();
    assert!(!out.is_empty());
    // every produced tuple has the required B0
    let b0 = 0;
    assert!(out.rows().iter().all(|r| !r[b0].is_null()));

    // illustrations stay small even though D(G) is large
    let population = w.mapping.examples(&w.db, &funcs).unwrap();
    let ill = Illustration::minimal_sufficient(&population, w.mapping.target.arity());
    assert!(is_sufficient(
        &ill.examples,
        &population,
        w.mapping.target.arity(),
        SufficiencyScope::mapping()
    ));
    // the illustration scales with the number of coverage categories
    // (≤ 55 for a 10-chain), not with the data volume
    let categories: std::collections::HashSet<u64> =
        population.iter().map(|e| e.coverage).collect();
    assert!(
        ill.len() <= categories.len() * 2,
        "illustration ({}) should scale with categories ({}), not rows ({})",
        ill.len(),
        categories.len(),
        population.len()
    );
    assert!(ill.len() < population.len());
}

#[test]
fn session_on_a_large_synthetic_source() {
    let w = generate(&SyntheticSpec {
        topology: Topology::RandomTree,
        relations: 8,
        rows: 150,
        match_rate: 0.8,
        payload_attrs: 2,
        seed: 21,
    });
    let mut db = w.db.clone();
    // redeclare knowledge edges as FKs so the session can walk
    for s in w.knowledge.specs() {
        db.constraints
            .foreign_keys
            .push(clio::relational::constraints::ForeignKey {
                from_relation: s.rel_a.clone(),
                from_attrs: s.attr_pairs.iter().map(|(a, _)| a.clone()).collect(),
                to_relation: s.rel_b.clone(),
                to_attrs: s.attr_pairs.iter().map(|(_, b)| b.clone()).collect(),
            });
    }
    let mut session = Session::new(db, w.target.clone());
    session.add_correspondence("R0.p0", "B0").unwrap();
    // walk outward to every other relation, confirming the first
    // alternative each time
    for i in 1..8 {
        let rel = format!("R{i}");
        if session
            .active()
            .unwrap()
            .mapping
            .graph
            .node_by_alias(&rel)
            .is_some()
        {
            continue;
        }
        let ids = session.data_walk(None, &rel).unwrap();
        session.confirm(ids[0]).unwrap();
        session
            .add_correspondence(&format!("R{i}.p0"), &format!("B{i}"))
            .unwrap();
    }
    let preview = session.target_preview().unwrap();
    assert!(preview.len() >= 150);
    // the final graph covers all 8 relations
    assert_eq!(session.active().unwrap().mapping.graph.node_count(), 8);
    // and its illustration is synchronized and sufficient
    let w2 = session.active().unwrap();
    let population = w2.mapping.examples(session.database(), &funcs()).unwrap();
    assert!(is_sufficient(
        &w2.illustration.examples,
        &population,
        w2.mapping.target.arity(),
        SufficiencyScope::mapping()
    ));
}

#[test]
fn chase_scales_with_a_value_index() {
    let w = generate(&SyntheticSpec {
        topology: Topology::Chain,
        relations: 4,
        rows: 2000,
        match_rate: 0.9,
        payload_attrs: 1,
        seed: 31,
    });
    let index = ValueIndex::build(&w.db);
    let funcs = funcs();
    let mut g = QueryGraph::new();
    g.add_node(Node::new("R0")).unwrap();
    let m = Mapping::new(g, w.target.clone())
        .with_correspondence(ValueCorrespondence::identity("R0.p0", "B0"));
    // chase a hub id: occurrences live in R1.l0
    let alts = data_chase(&m, &w.db, &index, "R0", "id", &Value::str("r0-10"), &funcs).unwrap();
    for alt in &alts {
        assert!(alt.mapping.graph.node_count() == 2);
        assert!(alt.occurrence_count >= 1);
    }
}

#[test]
fn mining_scales_and_stays_consistent() {
    let w = generate(&SyntheticSpec {
        topology: Topology::Chain,
        relations: 5,
        rows: 500,
        match_rate: 1.0, // strict containment guaranteed
        payload_attrs: 1,
        seed: 77,
    });
    let config = clio::core::mining::MiningConfig {
        min_containment: 0.9,
        min_shared_values: 5,
        require_same_type: true,
    };
    let mined = clio::core::mining::mine_inclusion_dependencies(&w.db, &config);
    // every chain link is rediscovered
    for i in 0..4 {
        assert!(
            mined
                .iter()
                .any(|d| d.from == (format!("R{}", i + 1), format!("l{i}"))
                    && d.to == (format!("R{i}"), "id".into())),
            "link R{}.l{i} -> R{i}.id not mined",
            i + 1
        );
    }
}
