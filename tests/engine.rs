//! Relational-engine integration tests: algebraic laws and cross-operator
//! consistency on realistic data, beyond the per-module unit tests.

use clio::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

fn sorted_rows(t: &Table) -> Vec<Vec<Value>> {
    let mut t = t.clone();
    t.sort_canonical();
    t.rows().to_vec()
}

fn children() -> Table {
    paper_database().relation("Children").unwrap().to_table("C")
}

fn parents() -> Table {
    paper_database().relation("Parents").unwrap().to_table("P")
}

#[test]
fn inner_join_is_symmetric_up_to_column_order() {
    let funcs = funcs();
    let p = parse_expr("C.mid = P.ID").unwrap();
    let ab = join(&children(), &parents(), &p, JoinKind::Inner, &funcs).unwrap();
    let ba = join(&parents(), &children(), &p, JoinKind::Inner, &funcs).unwrap();
    // reorder ba's columns onto ab's scheme and compare
    let ba_reordered = clio::relational::ops::pad_to(&ba, ab.scheme()).unwrap();
    assert_eq!(sorted_rows(&ab), sorted_rows(&ba_reordered));
}

#[test]
fn full_outer_join_contains_inner_left_right() {
    let funcs = funcs();
    let p = parse_expr("C.mid = P.ID").unwrap();
    let inner = join(&children(), &parents(), &p, JoinKind::Inner, &funcs).unwrap();
    let left = join(&children(), &parents(), &p, JoinKind::LeftOuter, &funcs).unwrap();
    let full = join(&children(), &parents(), &p, JoinKind::FullOuter, &funcs).unwrap();
    assert!(inner.len() <= left.len());
    assert!(left.len() <= full.len());
    for row in inner.rows() {
        assert!(left.rows().contains(row));
        assert!(full.rows().contains(row));
    }
    for row in left.rows() {
        assert!(full.rows().contains(row));
    }
}

#[test]
fn selection_commutes_with_inner_join() {
    let funcs = funcs();
    let p = parse_expr("C.mid = P.ID").unwrap();
    let filter = parse_expr("C.age < 7").unwrap();
    // σ(join) == join(σ(C), P)
    let joined = join(&children(), &parents(), &p, JoinKind::Inner, &funcs).unwrap();
    let a = select(&joined, &filter, &funcs).unwrap();
    let filtered = select(&children(), &parse_expr("C.age < 7").unwrap(), &funcs).unwrap();
    let b = join(&filtered, &parents(), &p, JoinKind::Inner, &funcs).unwrap();
    assert_eq!(sorted_rows(&a), sorted_rows(&b));
}

#[test]
fn selection_does_not_commute_with_outer_join() {
    // the classic outer-join trap: filtering the preserved side before
    // vs after differs — the engine must reproduce this faithfully
    let funcs = funcs();
    let p = parse_expr("C.mid = P.ID").unwrap();
    let filter = parse_expr("P.affiliation = 'Almaden'").unwrap();
    let after = select(
        &join(&children(), &parents(), &p, JoinKind::LeftOuter, &funcs).unwrap(),
        &filter,
        &funcs,
    )
    .unwrap();
    let before = join(
        &children(),
        &select(
            &parents(),
            &parse_expr("P.affiliation = 'Almaden'").unwrap(),
            &funcs,
        )
        .unwrap(),
        &p,
        JoinKind::LeftOuter,
        &funcs,
    )
    .unwrap();
    // after: only Maya's row (filter kills padded rows);
    // before: every child survives, padded unless mother is Almaden
    assert_eq!(after.len(), 1);
    assert_eq!(before.len(), 4);
}

#[test]
fn outer_union_is_commutative_and_associative_up_to_order() {
    let a = children();
    let b = parents();
    let c = paper_database().relation("SBPS").unwrap().to_table("S");
    let ab_c = outer_union(&outer_union(&a, &b).unwrap(), &c).unwrap();
    let a_bc = outer_union(&a, &outer_union(&b, &c).unwrap()).unwrap();
    let reordered = clio::relational::ops::pad_to(&a_bc, ab_c.scheme()).unwrap();
    assert_eq!(sorted_rows(&ab_c), sorted_rows(&reordered));
}

#[test]
fn nary_minimum_union_beats_pairwise_folding() {
    // minimum union is NOT associative: pairwise folding can differ from
    // the one-shot n-ary version. Construct the classic witness:
    //   x = (a, -), y = (-, b), z = (a, b)
    // fold((x ⊕ y) ⊕ z): x ⊕ y = {x, y}; adding z kills both → {z}.
    // But fold((x ⊕ z) ⊕ y): x ⊕ z = {z}; z ⊕ y = ... y killed → {z}.
    // To see real divergence we need subsumption *introduced* by padding:
    // combine tables with different schemes where early pairwise unions
    // pad prematurely. The n-ary form is the specification.
    let s1 = Scheme::new(vec![Column::new("R", "a", DataType::Str)]);
    let s2 = Scheme::new(vec![Column::new("R", "b", DataType::Str)]);
    let s12 = Scheme::new(vec![
        Column::new("R", "a", DataType::Str),
        Column::new("R", "b", DataType::Str),
    ]);
    let x = Table::new(s1, vec![vec!["1".into()]]);
    let y = Table::new(s2, vec![vec!["2".into()]]);
    let z = Table::new(s12, vec![vec!["1".into(), "2".into()]]);

    let nary = minimum_union_all(&[&x, &y, &z], SubsumptionAlgo::Partitioned).unwrap();
    assert_eq!(nary.len(), 1); // z subsumes both padded x and padded y

    let pairwise = minimum_union(
        &minimum_union(&x, &y, SubsumptionAlgo::Partitioned).unwrap(),
        &z,
        SubsumptionAlgo::Partitioned,
    )
    .unwrap();
    // here pairwise agrees (padding happens before comparison), which is
    // exactly why the engine funnels everything through the n-ary form
    assert_eq!(sorted_rows(&nary), sorted_rows(&pairwise));
}

#[test]
fn strong_predicate_analysis_matches_filter_behaviour() {
    // for every edge predicate of the paper mappings: evaluating on the
    // all-null tuple never passes
    let db = paper_database();
    let funcs = funcs();
    for m in [example_3_15_mapping(), section2_mapping()] {
        let scheme = m.graph.scheme(&db).unwrap();
        let all_null = vec![Value::Null; scheme.arity()];
        for e in m.graph.edges() {
            assert!(e.predicate.is_strong(&scheme, &funcs).unwrap());
            assert!(!e
                .predicate
                .eval_truth(&scheme, &all_null, &funcs)
                .unwrap()
                .passes());
        }
    }
}

#[test]
fn value_index_is_complete_over_paper_database() {
    let db = paper_database();
    let idx = ValueIndex::build(&db);
    // every non-null cell is findable
    for rel in db.relations() {
        for (ri, row) in rel.rows().iter().enumerate() {
            for (ai, v) in row.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                let attr = &rel.schema().attrs()[ai].name;
                assert!(
                    idx.occurrences(v).iter().any(|o| {
                        o.relation == rel.name() && &o.attribute == attr && o.row == ri
                    }),
                    "missing occurrence of {v} at {}.{attr}[{ri}]",
                    rel.name()
                );
            }
        }
    }
}

#[test]
fn complex_expressions_evaluate_over_associations() {
    // CASE + IN + BETWEEN over the paper's full disjunction
    let db = paper_database();
    let funcs = funcs();
    let g = running_graph();
    let d = full_disjunction(&db, &g, FdAlgo::Auto, &funcs).unwrap();
    let expr = parse_expr(
        "CASE WHEN SBPS.time IS NOT NULL THEN 'bus' \
              WHEN Children.age BETWEEN 0 AND 4 THEN 'carried' \
              ELSE 'walks' END",
    )
    .unwrap();
    let bound = expr.bind(d.scheme()).unwrap();
    let mut labels = Vec::new();
    for i in 0..d.len() {
        labels.push(bound.eval(d.row(i), &funcs).unwrap().to_string());
    }
    assert!(labels.contains(&"bus".to_owned())); // Anna, Maya
    assert!(labels.contains(&"walks".to_owned())); // Tom (5), Ben (9), lone parents
                                                   // Maya is 4 but rides the bus, so 'carried' requires a 0-4 child
                                                   // without a bus — none in this instance
    assert!(!labels.contains(&"carried".to_owned()));

    let in_expr = parse_expr("Children.ID IN ('001', '002')").unwrap();
    let bound = in_expr.bind(d.scheme()).unwrap();
    let hits = (0..d.len())
        .filter(|&i| bound.eval_truth(d.row(i), &funcs).unwrap().passes())
        .count();
    assert_eq!(hits, 2);
}

#[test]
fn paper_database_round_trips_through_csv_directory() {
    let db = paper_database();
    let dir = std::env::temp_dir().join(format!("clio_paper_csv_{}", std::process::id()));
    clio::relational::csv::write_database(&db, &dir).unwrap();
    let back = clio::relational::csv::read_database(&dir).unwrap();
    assert_eq!(back, db);
    // a session over the reloaded database behaves identically
    let mut session = Session::new(back, kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    let scenarios = session
        .add_correspondence("Parents.affiliation", "affiliation")
        .unwrap();
    assert_eq!(scenarios.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn table_rendering_is_stable_and_grid_aligned() {
    let db = paper_database();
    let g = running_graph();
    let funcs = funcs();
    let mut d = full_disjunction(&db, &g, FdAlgo::Auto, &funcs).unwrap();
    d.sort_canonical(&g);
    let s1 = d.render(&g);
    let s2 = d.render(&g);
    assert_eq!(s1, s2); // deterministic
    let widths: Vec<usize> = s1.lines().map(str::len).collect();
    assert!(
        widths.windows(2).all(|w| w[0] == w[1]),
        "grid must be rectangular"
    );
}
