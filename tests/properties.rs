//! Property-based tests over the core invariants:
//!
//! * the optimized outer-join full disjunction agrees with the
//!   definitional algorithm on random tree workloads;
//! * partitioned subsumption removal agrees with the naive definition;
//! * minimum union is commutative and idempotent;
//! * greedy illustration selection is always sufficient, and never larger
//!   than necessary relative to exact search;
//! * illustration evolution preserves continuity and sufficiency;
//! * expression display/parse round-trips.

use clio::prelude::*;
use proptest::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

fn spec_strategy(topologies: &'static [Topology]) -> impl Strategy<Value = SyntheticSpec> {
    (
        0..topologies.len(),
        2usize..5,
        5usize..25,
        0.0f64..1.0,
        proptest::num::u64::ANY,
    )
        .prop_map(
            move |(t, relations, rows, match_rate, seed)| SyntheticSpec {
                topology: topologies[t],
                relations,
                rows,
                match_rate,
                payload_attrs: 1,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FD(outer-join) == FD(naive, either subsumption algo) on trees.
    #[test]
    fn fd_algorithms_agree_on_trees(
        spec in spec_strategy(&[Topology::Chain, Topology::Star, Topology::RandomTree])
    ) {
        let w = generate(&spec);
        let funcs = funcs();
        let mut naive = full_disjunction_naive(
            &w.db, &w.graph, &funcs, SubsumptionAlgo::Naive).unwrap();
        let mut part = full_disjunction_naive(
            &w.db, &w.graph, &funcs, SubsumptionAlgo::Partitioned).unwrap();
        let mut outer = full_disjunction_outer_join(&w.db, &w.graph, &funcs).unwrap();
        naive.sort_canonical(&w.graph);
        part.sort_canonical(&w.graph);
        outer.sort_canonical(&w.graph);
        prop_assert_eq!(naive.table().rows(), part.table().rows());
        prop_assert_eq!(naive.table().rows(), outer.table().rows());
    }

    /// On cyclic graphs the naive algorithm with both subsumption
    /// implementations agrees; every association's coverage is an
    /// induced-connected subgraph.
    #[test]
    fn fd_on_cycles_is_consistent(
        spec in spec_strategy(&[Topology::Cycle])
    ) {
        let w = generate(&spec);
        let funcs = funcs();
        let mut a = full_disjunction_naive(
            &w.db, &w.graph, &funcs, SubsumptionAlgo::Naive).unwrap();
        let mut b = full_disjunction_naive(
            &w.db, &w.graph, &funcs, SubsumptionAlgo::Partitioned).unwrap();
        a.sort_canonical(&w.graph);
        b.sort_canonical(&w.graph);
        prop_assert_eq!(a.table().rows(), b.table().rows());
        for i in 0..a.len() {
            prop_assert!(w.graph.is_subset_connected(a.coverage(i)));
        }
    }

    /// Parallel naive FD is **byte-identical** to serial — same rows in
    /// the same order, no canonical sort — on random tree and cyclic
    /// workloads. This is the determinism contract of the exec layer:
    /// per-subgraph results are merged in canonical subgraph order no
    /// matter which worker computed them.
    #[test]
    fn parallel_fd_naive_is_byte_identical_to_serial(
        spec in spec_strategy(&[
            Topology::Chain, Topology::Star, Topology::RandomTree, Topology::Cycle,
        ])
    ) {
        let w = generate(&spec);
        let funcs = funcs();
        let serial = clio::relational::exec::with_threads(1, || {
            full_disjunction_naive(&w.db, &w.graph, &funcs, SubsumptionAlgo::Adaptive).unwrap()
        });
        let parallel = clio::relational::exec::with_threads(4, || {
            full_disjunction_naive(&w.db, &w.graph, &funcs, SubsumptionAlgo::Adaptive).unwrap()
        });
        // deliberately NO sort_canonical: row order is part of the claim
        prop_assert_eq!(serial.table().rows(), parallel.table().rows());
    }

    /// Subsumption removal: the two algorithms agree on random nullable
    /// tables, and the result contains no strictly-subsumed pair.
    #[test]
    fn subsumption_algorithms_agree(
        rows in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u8..4), 4),
            0..40,
        )
    ) {
        let scheme = Scheme::new(
            (0..4).map(|i| Column::new("R", format!("a{i}"), DataType::Int)).collect(),
        );
        let to_table = || Table::new(
            scheme.clone(),
            rows.iter()
                .map(|r| r.iter().map(|c| match c {
                    None => Value::Null,
                    Some(v) => Value::Int(i64::from(*v)),
                }).collect())
                .collect(),
        );
        let mut a = to_table();
        let mut b = to_table();
        clio::relational::ops::remove_subsumed_naive(&mut a);
        clio::relational::ops::remove_subsumed_partitioned(&mut b);
        a.sort_canonical();
        b.sort_canonical();
        prop_assert_eq!(a.rows(), b.rows());
        for (i, x) in a.rows().iter().enumerate() {
            for (j, y) in a.rows().iter().enumerate() {
                if i != j {
                    prop_assert!(!clio::relational::ops::strictly_subsumes(x, y));
                }
            }
        }
    }

    /// Minimum union is commutative, and self-union removes exactly the
    /// subsumed tuples.
    #[test]
    fn minimum_union_properties(
        rows in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u8..3), 3),
            0..25,
        ),
        split in 0usize..25,
    ) {
        let scheme = Scheme::new(
            (0..3).map(|i| Column::new("R", format!("a{i}"), DataType::Int)).collect(),
        );
        let all: Vec<Vec<Value>> = rows.iter()
            .map(|r| r.iter().map(|c| match c {
                None => Value::Null,
                Some(v) => Value::Int(i64::from(*v)),
            }).collect())
            .collect();
        let k = split.min(all.len());
        let t1 = Table::new(scheme.clone(), all[..k].to_vec());
        let t2 = Table::new(scheme.clone(), all[k..].to_vec());

        let mut ab = minimum_union(&t1, &t2, SubsumptionAlgo::Partitioned).unwrap();
        let mut ba = minimum_union(&t2, &t1, SubsumptionAlgo::Partitioned).unwrap();
        ab.sort_canonical();
        ba.sort_canonical();
        prop_assert_eq!(ab.rows(), ba.rows());

        let mut self_union = minimum_union(&t1, &t1, SubsumptionAlgo::Partitioned).unwrap();
        let mut t1d = t1.clone();
        clio::relational::ops::remove_subsumed_naive(&mut t1d);
        self_union.sort_canonical();
        t1d.sort_canonical();
        prop_assert_eq!(self_union.rows(), t1d.rows());
    }

    /// Greedy selection is always sufficient; exact search (when it
    /// completes) is sufficient and no larger than greedy.
    #[test]
    fn illustration_selection_invariants(
        spec in spec_strategy(&[Topology::Chain, Topology::Star])
    ) {
        let w = generate(&spec);
        let funcs = funcs();
        let population = w.mapping.examples(&w.db, &funcs).unwrap();
        let arity = w.mapping.target.arity();
        let scope = SufficiencyScope::mapping();

        let greedy = select_greedy(&population, arity, scope);
        let g_ill: Vec<Example> = greedy.iter().map(|&i| population[i].clone()).collect();
        prop_assert!(is_sufficient(&g_ill, &population, arity, scope));

        if let Some(exact) = select_exact(&population, arity, scope, 50_000) {
            let e_ill: Vec<Example> = exact.iter().map(|&i| population[i].clone()).collect();
            prop_assert!(is_sufficient(&e_ill, &population, arity, scope));
            prop_assert!(exact.len() <= greedy.len());
        }
    }

    /// Evolving an illustration across a graph extension preserves
    /// continuity and restores sufficiency.
    #[test]
    fn evolution_invariants(
        rows in 5usize..20,
        match_rate in 0.0f64..1.0,
        seed in proptest::num::u64::ANY,
    ) {
        let spec = SyntheticSpec {
            topology: Topology::Chain,
            relations: 3,
            rows,
            match_rate,
            payload_attrs: 1,
            seed,
        };
        let w = generate(&spec);
        let funcs = funcs();

        // old mapping: first two relations of the chain
        let mut old_graph = QueryGraph::new();
        old_graph.add_node(Node::new("R0")).unwrap();
        old_graph.add_node(Node::new("R1")).unwrap();
        old_graph
            .add_edge(0, 1, parse_expr("R1.l0 = R0.id").unwrap())
            .unwrap();
        let mut old_m = w.mapping.clone();
        old_m.graph = old_graph;
        old_m.correspondences.retain(|c| {
            c.source_qualifiers().iter().all(|q| *q == "R0" || *q == "R1")
        });

        let old_pop = old_m.examples(&w.db, &funcs).unwrap();
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());

        let evo = evolve_illustration(&old_ill, &old_m, &w.mapping, &w.db, &funcs).unwrap();
        let old_scheme = old_m.graph.scheme(&w.db).unwrap();
        let new_scheme = w.mapping.graph.scheme(&w.db).unwrap();
        prop_assert!(continuity_holds(
            &old_ill, &evo.illustration, &old_scheme, &new_scheme).unwrap());

        let new_pop = w.mapping.examples(&w.db, &funcs).unwrap();
        prop_assert!(is_sufficient(
            &evo.illustration.examples,
            &new_pop,
            w.mapping.target.arity(),
            SufficiencyScope::mapping(),
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every data-walk alternative is structurally sound: connected graph,
    /// original graph preserved as an induced subgraph (same nodes/edges),
    /// correspondences and filters inherited verbatim.
    #[test]
    fn walk_alternatives_are_structural_extensions(
        relations in 3usize..6,
        rows in 5usize..20,
        seed in proptest::num::u64::ANY,
    ) {
        let spec = SyntheticSpec {
            topology: Topology::RandomTree,
            relations,
            rows,
            match_rate: 0.8,
            payload_attrs: 1,
            seed,
        };
        let w = generate(&spec);
        let funcs = funcs();
        // start from R0 alone, walk to the last relation
        let mut g = QueryGraph::new();
        g.add_node(Node::new("R0")).unwrap();
        let mut m = w.mapping.clone();
        m.graph = g;
        m.correspondences.retain(|c| c.source_qualifiers() == vec!["R0"]);
        let end = format!("R{}", relations - 1);
        let alts = data_walk(&m, &w.db, &w.knowledge, "R0", &end, relations, &funcs)
            .unwrap();
        for alt in alts {
            let ag = &alt.mapping.graph;
            prop_assert!(ag.is_connected());
            prop_assert!(ag.node_by_alias("R0").is_some());
            prop_assert!(ag.node_by_alias(&end).is_some());
            prop_assert_eq!(&alt.mapping.correspondences, &m.correspondences);
            prop_assert_eq!(&alt.mapping.source_filters, &m.source_filters);
            // the original node set survives
            for n in m.graph.nodes() {
                prop_assert!(ag.node_by_alias(&n.alias).is_some());
            }
            // and the alternative validates
            alt.mapping.validate(&w.db, &funcs).unwrap();
        }
    }

    /// Every chase alternative adds exactly one node and one equijoin
    /// edge, anchored at the chased attribute.
    #[test]
    fn chase_alternatives_add_one_node_one_edge(
        rows in 5usize..25,
        seed in proptest::num::u64::ANY,
        probe_idx in 0usize..25,
    ) {
        let spec = SyntheticSpec {
            topology: Topology::Chain,
            relations: 3,
            rows,
            match_rate: 0.9,
            payload_attrs: 1,
            seed,
        };
        let w = generate(&spec);
        let funcs = funcs();
        let index = ValueIndex::build(&w.db);
        let mut g = QueryGraph::new();
        g.add_node(Node::new("R0")).unwrap();
        let m = Mapping::new(g, w.target.clone())
            .with_correspondence(ValueCorrespondence::identity("R0.id", "B0"));
        let probe = Value::str(format!("r0-{}", probe_idx % rows));
        let alts = data_chase(&m, &w.db, &index, "R0", "id", &probe, &funcs).unwrap();
        for alt in alts {
            prop_assert_eq!(alt.mapping.graph.node_count(), 2);
            prop_assert_eq!(alt.mapping.graph.edges().len(), 1);
            let edge = &alt.mapping.graph.edges()[0];
            prop_assert!(edge.predicate.to_string().starts_with("R0.id = "));
            prop_assert!(alt.occurrence_count >= 1);
        }
    }

    /// Mapping scripts round-trip for arbitrary synthetic mappings.
    #[test]
    fn mapping_script_round_trip(
        spec in spec_strategy(&[Topology::Chain, Topology::Star, Topology::Cycle, Topology::RandomTree])
    ) {
        let w = generate(&spec);
        let text = clio::core::script::write_mapping(&w.mapping);
        let parsed = clio::core::script::parse_mapping(&text)
            .unwrap_or_else(|e| panic!("failed to parse generated script: {e}\n{text}"));
        prop_assert_eq!(parsed, w.mapping);
    }

    /// Merged target-mapping evaluation never contains a subsumed pair and
    /// never loses a maximal tuple relative to the union.
    #[test]
    fn target_merge_invariants(
        rows in 4usize..16,
        seed in proptest::num::u64::ANY,
    ) {
        use clio::core::target_mapping::TargetMapping;
        let spec = SyntheticSpec {
            topology: Topology::Chain,
            relations: 2,
            rows,
            match_rate: 0.5,
            payload_attrs: 1,
            seed,
        };
        let w = generate(&spec);
        let funcs = funcs();
        // two mappings: the full one and an R0-only partial one
        let mut partial = w.mapping.clone();
        let mut g = QueryGraph::new();
        g.add_node(Node::new("R0")).unwrap();
        partial.graph = g;
        partial.correspondences.retain(|c| c.source_qualifiers() == vec!["R0"]);

        let mut tm = TargetMapping::new(w.mapping.target.clone());
        tm.accept(w.mapping.clone()).unwrap();
        tm.accept(partial).unwrap();

        let union = tm.evaluate_union(&w.db, &funcs).unwrap();
        let merged = tm.evaluate_merged(&w.db, &funcs).unwrap();
        prop_assert!(merged.len() <= union.len());
        // no subsumed pair survives
        for (i, a) in merged.rows().iter().enumerate() {
            for (j, b) in merged.rows().iter().enumerate() {
                if i != j {
                    prop_assert!(!clio::relational::ops::strictly_subsumes(a, b));
                }
            }
        }
        // every union tuple is subsumed by (or equal to) some merged tuple
        for u in union.rows() {
            prop_assert!(merged
                .rows()
                .iter()
                .any(|m| clio::relational::ops::subsumes(m, u)));
        }
    }
}

// ---- incremental-cache transparency --------------------------------------

/// One session operator in a random refinement sequence. Each variant
/// carries an index into a fixed pool so shrinking stays meaningful.
#[derive(Debug, Clone, Copy)]
enum SessionOp {
    Corr(usize),
    ConfirmFirst,
    SourceFilter(usize),
    TargetFilter(usize),
    Walk(usize),
    Chase(usize),
    Require(usize),
    Preview,
    Accept,
    EditChildren,
}

const CORR_POOL: &[(&str, &str)] = &[
    ("Children.ID", "ID"),
    ("Children.name", "name"),
    ("Parents.affiliation", "affiliation"),
    ("SBPS.time", "BusSchedule"),
];
const SOURCE_FILTER_POOL: &[&str] = &["Children.age > 3", "Parents.salary > 50000"];
const TARGET_FILTER_POOL: &[&str] = &["name IS NOT NULL", "ID <> '009'"];
const WALK_POOL: &[&str] = &["Parents", "SBPS", "PhoneDir"];
const CHASE_POOL: &[(&str, &str, &str)] = &[("Children", "ID", "002"), ("Children", "mid", "201")];
const REQUIRE_POOL: &[&str] = &["BusSchedule", "affiliation"];

fn session_op_strategy() -> impl Strategy<Value = SessionOp> {
    // `Corr` and `Preview` appear several times to weight the sequence
    // toward operators that exercise (and then re-hit) the cache
    prop_oneof![
        (0..CORR_POOL.len()).prop_map(SessionOp::Corr),
        (0..CORR_POOL.len()).prop_map(SessionOp::Corr),
        (0..CORR_POOL.len()).prop_map(SessionOp::Corr),
        Just(SessionOp::ConfirmFirst),
        Just(SessionOp::ConfirmFirst),
        (0..SOURCE_FILTER_POOL.len()).prop_map(SessionOp::SourceFilter),
        (0..TARGET_FILTER_POOL.len()).prop_map(SessionOp::TargetFilter),
        (0..WALK_POOL.len()).prop_map(SessionOp::Walk),
        (0..CHASE_POOL.len()).prop_map(SessionOp::Chase),
        (0..REQUIRE_POOL.len()).prop_map(SessionOp::Require),
        Just(SessionOp::Preview),
        Just(SessionOp::Preview),
        Just(SessionOp::Preview),
        Just(SessionOp::Accept),
        Just(SessionOp::EditChildren),
    ]
}

/// Apply one operator and render everything observable about the outcome
/// into a string — success payloads, error messages, and preview tables
/// alike — so two sessions can be compared step by step.
fn apply_session_op(s: &mut Session, op: SessionOp, step: usize) -> String {
    fn fmt<T: std::fmt::Debug, E: std::fmt::Display>(r: std::result::Result<T, E>) -> String {
        match r {
            Ok(v) => format!("ok {v:?}"),
            Err(e) => format!("err {e}"),
        }
    }
    match op {
        SessionOp::Corr(i) => {
            let (expr, attr) = CORR_POOL[i % CORR_POOL.len()];
            fmt(s.add_correspondence(expr, attr))
        }
        SessionOp::ConfirmFirst => match s.workspaces().first().map(|w| w.id) {
            Some(id) => fmt(s.confirm(id)),
            None => "no workspace".to_owned(),
        },
        SessionOp::SourceFilter(i) => {
            fmt(s.add_source_filter(SOURCE_FILTER_POOL[i % SOURCE_FILTER_POOL.len()]))
        }
        SessionOp::TargetFilter(i) => {
            fmt(s.add_target_filter(TARGET_FILTER_POOL[i % TARGET_FILTER_POOL.len()]))
        }
        SessionOp::Walk(i) => fmt(s.data_walk(None, WALK_POOL[i % WALK_POOL.len()])),
        SessionOp::Chase(i) => {
            let (alias, attr, value) = CHASE_POOL[i % CHASE_POOL.len()];
            fmt(s.data_chase(alias, attr, &Value::str(value)))
        }
        SessionOp::Require(i) => {
            fmt(s.require_target_attribute(REQUIRE_POOL[i % REQUIRE_POOL.len()]))
        }
        SessionOp::Preview => fmt(s.target_preview()),
        SessionOp::Accept => fmt(s.accept_active()),
        SessionOp::EditChildren => {
            // a content-only edit: one fresh child keyed by the step number
            let mut rel = s.database().relation("Children").unwrap().clone();
            let inserted = rel.insert(vec![
                Value::str(format!("9{step:02}")),
                Value::str(format!("kid{step}")),
                Value::Int(3 + step as i64),
                Value::str("201"),
                Value::Null,
                Value::str(format!("D9{step}")),
            ]);
            format!("{inserted:?} {}", fmt(s.replace_relation(rel)))
        }
    }
}

/// Everything user-visible about a session, rendered for comparison.
fn session_digest(s: &Session) -> String {
    let mut out = String::new();
    for w in s.workspaces() {
        out.push_str(&format!(
            "workspace {}: {:?} {:?}\n",
            w.id, w.mapping, w.illustration
        ));
    }
    out.push_str(&format!("accepted: {:?}\n", s.accepted()));
    out.push_str(&format!("preview: {:?}\n", s.target_preview()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The evaluation cache is **transparent**: an arbitrary operator
    /// sequence (correspondences, confirms, filters, walks, chases,
    /// previews, accepts, relation edits) replayed on a cache-enabled and
    /// a cache-disabled paper session produces byte-identical outcomes at
    /// every step, and byte-identical final state.
    #[test]
    fn cache_is_transparent_to_operator_sequences(
        ops in proptest::collection::vec(session_op_strategy(), 1..12)
    ) {
        let mut cached = Session::new(paper_database(), kids_target());
        let mut plain = Session::new(paper_database(), kids_target());
        plain.set_cache_enabled(false);
        for (step, &op) in ops.iter().enumerate() {
            let a = apply_session_op(&mut cached, op, step);
            let b = apply_session_op(&mut plain, op, step);
            prop_assert_eq!(a, b, "diverged at step {} ({:?})", step, op);
        }
        prop_assert_eq!(session_digest(&cached), session_digest(&plain));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrency and caching are **transparent to the session
    /// service**: the same per-session operator sequences replayed
    /// through a `SessionPool` serially (width 1) and concurrently
    /// (width 4), with the cache on and off, produce byte-identical
    /// per-session step outputs and final digests. `EditChildren`
    /// sequences exercise copy-on-write isolation: a session editing the
    /// shared snapshot must never perturb its siblings.
    #[test]
    fn session_pool_is_transparent_to_width_and_caching(
        per_session_ops in proptest::collection::vec(
            proptest::collection::vec(session_op_strategy(), 1..8),
            2..5,
        )
    ) {
        let replay = |width: usize, cache: bool| -> Vec<String> {
            let mut pool = SessionPool::new(paper_database(), kids_target()).with_width(width);
            pool.set_cache_enabled(cache);
            pool.run(per_session_ops.len(), |i, mut s| {
                let mut log = String::new();
                for (step, &op) in per_session_ops[i].iter().enumerate() {
                    log.push_str(&apply_session_op(&mut s, op, step));
                    log.push('\n');
                }
                log.push_str(&session_digest(&s));
                log
            })
        };
        let baseline = replay(1, true);
        for (width, cache) in [(4, true), (1, false), (4, false)] {
            let run = replay(width, cache);
            prop_assert_eq!(
                &baseline, &run,
                "diverged at width {} cache {}", width, cache
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The **persistent** cache is transparent across a restart: replay
    /// an arbitrary operator sequence in a session that spills to an
    /// on-disk store, then replay the same sequence in a *fresh* session
    /// over a *fresh* [`clio_incr::DiskStore`] on the same directory —
    /// the disk-warmed replay must match a never-persisted baseline
    /// byte for byte at every step and in the final digest.
    #[test]
    fn disk_cache_is_transparent_across_restart(
        ops in proptest::collection::vec(session_op_strategy(), 1..10)
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "clio-props-restart-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let namespace = clio_incr::database_digest(&paper_database());
        let open = || -> std::sync::Arc<dyn clio_incr::CacheStore> {
            std::sync::Arc::new(clio_incr::DiskStore::open(&dir, namespace))
        };

        // process 1: a never-persisted baseline and a spilling session
        // replay side by side; the spilling session populates the store
        let mut baseline = Session::new(paper_database(), kids_target());
        let mut first = Session::new(paper_database(), kids_target());
        first.attach_store(open());
        for (step, &op) in ops.iter().enumerate() {
            let a = apply_session_op(&mut baseline, op, step);
            let b = apply_session_op(&mut first, op, step);
            prop_assert_eq!(&a, &b, "first run diverged at step {} ({:?})", step, op);
        }
        prop_assert_eq!(session_digest(&baseline), session_digest(&first));

        // process 2: a fresh session over a fresh store instance on the
        // same directory replays the same sequence disk-warm
        let mut cold = Session::new(paper_database(), kids_target());
        let mut restarted = Session::new(paper_database(), kids_target());
        restarted.attach_store(open());
        for (step, &op) in ops.iter().enumerate() {
            let a = apply_session_op(&mut cold, op, step);
            let b = apply_session_op(&mut restarted, op, step);
            prop_assert_eq!(&a, &b, "restarted run diverged at step {} ({:?})", step, op);
        }
        prop_assert_eq!(session_digest(&cold), session_digest(&restarted));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache transparency on **cyclic** graphs, where `D(G)` takes the
    /// naive per-subgraph path and the cache memoizes individual `F(J)`
    /// tables: previews, filters, and base-relation edits replay
    /// identically with the cache on and off.
    #[test]
    fn cache_is_transparent_on_cyclic_workloads(
        rows in 4usize..10,
        seed in proptest::num::u64::ANY,
        ops in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let spec = SyntheticSpec {
            topology: Topology::Cycle,
            relations: 3,
            rows,
            match_rate: 0.6,
            payload_attrs: 1,
            seed,
        };
        let build = || {
            let w = generate(&spec);
            let mut s = Session::new(w.db, w.target);
            s.adopt_mapping(w.mapping, "cycle under test").unwrap();
            s
        };
        let mut cached = build();
        let mut plain = build();
        plain.set_cache_enabled(false);
        let apply = |s: &mut Session, op: usize, step: usize| match op {
            0 | 3 => format!("{:?}", s.target_preview()),
            1 => {
                // content edit on R0: synthesize a row from its schema
                let mut rel = s.database().relation("R0").unwrap().clone();
                let row: Vec<Value> = rel
                    .schema()
                    .attrs()
                    .iter()
                    .enumerate()
                    .map(|(i, a)| match a.ty {
                        DataType::Int => Value::Int(900 + (step * 10 + i) as i64),
                        _ => Value::str(format!("z{step}-{i}")),
                    })
                    .collect();
                let inserted = rel.insert(row);
                format!("{inserted:?} {:?}", s.replace_relation(rel))
            }
            _ => format!("{:?}", s.add_source_filter("R0.id IS NOT NULL")),
        };
        for (step, &op) in ops.iter().enumerate() {
            let a = apply(&mut cached, op, step);
            let b = apply(&mut plain, op, step);
            prop_assert_eq!(a, b, "diverged at step {} (op {})", step, op);
        }
        prop_assert_eq!(session_digest(&cached), session_digest(&plain));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The eviction policy is **answer-invisible**: the same operator
    /// sequence replayed under `Lru` and `CostAware`, with a byte budget
    /// tight enough to force evictions on both sides, produces
    /// byte-identical step outputs and final digests. The policy decides
    /// only which entries stay resident (and therefore what gets
    /// recomputed), never what any operator returns.
    #[test]
    fn eviction_policy_is_transparent_to_operator_sequences(
        ops in proptest::collection::vec(session_op_strategy(), 1..12),
        budget in prop_oneof![
            Just(0usize),
            Just(2_048usize),
            Just(8_192usize),
            Just(usize::MAX),
        ],
    ) {
        let build = |policy| {
            let mut s = Session::new(paper_database(), kids_target());
            s.set_cache_policy(policy);
            s.cache().set_capacity(budget);
            s
        };
        let mut lru = build(clio_incr::EvictionPolicy::Lru);
        let mut cost = build(clio_incr::EvictionPolicy::CostAware);
        for (step, &op) in ops.iter().enumerate() {
            let a = apply_session_op(&mut lru, op, step);
            let b = apply_session_op(&mut cost, op, step);
            prop_assert_eq!(a, b, "diverged at step {} ({:?})", step, op);
        }
        prop_assert_eq!(session_digest(&lru), session_digest(&cost));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Collapsing the byte budget to zero at an arbitrary step —
    /// optionally switching eviction policy at runtime first — empties
    /// the cache immediately, changes no answer afterwards, and keeps
    /// the eviction ledger consistent: the cost-aware breakdown never
    /// exceeds total evictions, and a zero budget leaves nothing
    /// resident through the end of the run.
    #[test]
    fn zero_capacity_empties_the_cache_without_changing_answers(
        ops in proptest::collection::vec(session_op_strategy(), 2..10),
        cut in 0usize..10,
        switch in prop_oneof![
            Just(None),
            Just(Some(clio_incr::EvictionPolicy::Lru)),
            Just(Some(clio_incr::EvictionPolicy::CostAware)),
        ],
    ) {
        let mut plain = Session::new(paper_database(), kids_target());
        plain.set_cache_enabled(false);
        let mut squeezed = Session::new(paper_database(), kids_target());
        let cut = cut % ops.len();
        for (step, &op) in ops.iter().enumerate() {
            if step == cut {
                if let Some(policy) = switch {
                    squeezed.cache().set_policy(policy);
                }
                squeezed.cache().set_capacity(0);
                let stats = squeezed.cache().stats();
                prop_assert_eq!(stats.entries, 0, "zero budget left entries resident");
                prop_assert_eq!(stats.bytes, 0, "zero budget left bytes accounted");
            }
            let a = apply_session_op(&mut plain, op, step);
            let b = apply_session_op(&mut squeezed, op, step);
            prop_assert_eq!(a, b, "diverged at step {} ({:?})", step, op);
        }
        let stats = squeezed.cache().stats();
        prop_assert_eq!(stats.entries, 0, "entries survived a zero budget");
        prop_assert_eq!(stats.bytes, 0);
        prop_assert!(
            stats.cost_evictions <= stats.evictions,
            "cost-aware evictions ({}) exceed total evictions ({})",
            stats.cost_evictions,
            stats.evictions
        );
        prop_assert_eq!(session_digest(&plain), session_digest(&squeezed));
    }
}

// ---- expression round-trip ----------------------------------------------

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..3usize, 0..3usize).prop_map(|(q, a)| Expr::col(&format!("Q{q}.a{a}"))),
        // non-negative only: `-1` displays as `-1`, which reparses as
        // Neg(1) — semantically equal but structurally different
        (0i64..50).prop_map(Expr::lit),
        "[a-z]{0,6}".prop_map(Expr::lit),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Concat),
                ]
            )
                .prop_map(|(l, r, op)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), proptest::bool::ANY).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(|args| Expr::Func {
                name: "concat".into(),
                args,
            }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone()),
            )
                .prop_map(|(branches, otherwise)| Expr::Case {
                    branches,
                    otherwise: otherwise.map(Box::new),
                }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::bool::ANY
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), inner.clone(), inner, proptest::bool::ANY).prop_map(
                |(e, low, high, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                },
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV round-trips arbitrary relations, including empty strings,
    /// quotes, commas, newline-free junk, and nulls.
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            (
                proptest::num::i64::ANY,
                proptest::option::of("[ -~]{0,12}"), // printable ASCII incl. , and "
                proptest::option::of(proptest::num::i32::ANY),
            ),
            0..30,
        )
    ) {
        use clio::relational::csv::{relation_from_csv, relation_to_csv};
        use clio::relational::relation::Relation;
        use clio::relational::schema::RelSchema;

        let schema = RelSchema::new(
            "R",
            vec![
                Attribute::not_null("id", DataType::Int),
                Attribute::new("text", DataType::Str),
                Attribute::new("num", DataType::Int),
            ],
        )
        .unwrap();
        let mut rel = Relation::empty(schema);
        for (id, text, num) in rows {
            let row = vec![
                Value::Int(id),
                text.map(Value::str).unwrap_or(Value::Null),
                num.map(|n| Value::Int(i64::from(n))).unwrap_or(Value::Null),
            ];
            // relations reject all-null rows; id is always non-null here
            rel.insert(row).unwrap();
        }
        let csv = relation_to_csv(&rel);
        let back = relation_from_csv(rel.schema().clone(), &csv)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{csv}"));
        prop_assert_eq!(back.rows(), rel.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input — it returns a located
    /// error instead.
    #[test]
    fn parser_is_total_on_arbitrary_strings(s in "\\PC{0,60}") {
        let _ = parse_expr(&s); // must not panic
        let _ = parse_expr_list(&s);
    }

    /// The parser never panics on expression-shaped token soup either.
    #[test]
    fn parser_is_total_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("("), Just(")"), Just(","), Just("."),
                Just("AND"), Just("OR"), Just("NOT"), Just("IS"), Just("NULL"),
                Just("CASE"), Just("WHEN"), Just("THEN"), Just("END"),
                Just("BETWEEN"), Just("IN"), Just("||"), Just("="), Just("<"),
                Just("a"), Just("Q.a"), Just("'s'"), Just("1"), Just("1.5"),
            ],
            0..14,
        )
    ) {
        let text = tokens.join(" ");
        let _ = parse_expr(&text); // must not panic
    }

    /// `parse(display(e)) == e` for arbitrary expressions.
    #[test]
    fn expression_display_parse_round_trip(e in expr_strategy()) {
        let text = e.to_string();
        let reparsed = parse_expr(&text)
            .unwrap_or_else(|err| panic!("failed to reparse `{text}`: {err}"));
        prop_assert_eq!(reparsed, e);
    }

    /// `simplify(e)` evaluates identically to `e` on random rows, and is
    /// idempotent.
    #[test]
    fn simplify_preserves_semantics(
        e in expr_strategy(),
        row in proptest::collection::vec(
            proptest::option::of(-5i64..5), 9,
        )
    ) {
        use clio::relational::simplify::simplify;
        let scheme = Scheme::new(
            (0..3)
                .flat_map(|q| (0..3).map(move |a| Column::new(format!("Q{q}"), format!("a{a}"), DataType::Int)))
                .collect(),
        );
        let row: Vec<Value> = row
            .into_iter()
            .map(|v| v.map(Value::Int).unwrap_or(Value::Null))
            .collect();
        let funcs = funcs();
        let simplified = simplify(&e);
        prop_assert_eq!(simplify(&simplified).to_string(), simplified.to_string());
        let a = e.eval(&scheme, &row, &funcs);
        let b = simplified.eval(&scheme, &row, &funcs);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), _) | (_, Err(_)) => {
                // pruning can remove erroring subexpressions (CASE branch
                // elimination), so only require: if the simplified form
                // errors, the original must too
            }
        }
    }
}

// ---- planner byte-identity and the MAP language --------------------------

/// Identifier pool for the language round-trip: plain names, language
/// and expression keywords, whitespace- and quote-bearing names —
/// everything the printers must quote for a reparse to survive.
fn odd_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s: String| s),
        Just("from".to_owned()),
        Just("SELECT".to_owned()),
        Just("not null".to_owned()),
        Just("weird rel".to_owned()),
        Just("qu\"ote".to_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plan-based evaluation is byte-identical to the definitional
    /// evaluator over random topologies and a mix of pushable filters
    /// (strong single-alias), non-pushable filters (IS NULL,
    /// multi-alias), and target filters.
    #[test]
    fn planned_evaluation_is_byte_identical(
        spec in spec_strategy(&[Topology::Chain, Topology::Star, Topology::Cycle, Topology::RandomTree]),
        filters in proptest::collection::vec(0usize..5, 0..3),
    ) {
        let w = generate(&spec);
        let funcs = funcs();
        let mut m = w.mapping.clone();
        for f in filters {
            match f {
                0 => m.source_filters.push(parse_expr("R0.id <> 'no-such'").unwrap()),
                1 => m.source_filters.push(parse_expr("R0.p0 IS NOT NULL").unwrap()),
                2 => m.source_filters.push(parse_expr("R0.p0 IS NULL").unwrap()),
                3 => m.source_filters.push(parse_expr("R0.id = R1.id").unwrap()),
                _ => m.target_filters.push(parse_expr("B0 IS NOT NULL").unwrap()),
            }
        }
        let legacy = m.evaluate(&w.db, &funcs).unwrap();
        let planned = m.evaluate_planned(&w.db, &funcs).unwrap();
        prop_assert_eq!(legacy.rows(), planned.rows());
    }

    /// `parse_map(print_mapping(m)) == m` for synthetic mappings across
    /// every topology the generator produces.
    #[test]
    fn lang_print_parse_round_trip(
        spec in spec_strategy(&[Topology::Chain, Topology::Star, Topology::Cycle, Topology::RandomTree]),
    ) {
        let printed = clio_lang::print_mapping(&w_mapping(&spec));
        let reparsed = clio_lang::parse_map(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse printed mapping: {e}\n{printed}"));
        prop_assert_eq!(reparsed, w_mapping(&spec));
    }

    /// The language round-trip also holds for hand-built mappings whose
    /// identifiers are keywords, carry whitespace, or embed quotes.
    #[test]
    fn lang_round_trip_survives_hostile_identifiers(
        t in odd_name(), ta in odd_name(),
        r1 in odd_name(), r2 in odd_name(), alias in odd_name(),
        code in proptest::option::of(odd_name()),
    ) {
        prop_assume!(r1 != r2 && alias != r1 && !t.is_empty());
        let target = RelSchema::new(&t, vec![Attribute::new(&ta, DataType::Str)]).unwrap();
        let mut g = QueryGraph::new();
        let a = g.add_node(Node::new(&r1)).unwrap();
        let mut n2 = Node::copy_of(&alias, &r2);
        if let Some(c) = &code {
            n2 = n2.with_code(c);
        }
        let b = g.add_node(n2).unwrap();
        g.add_edge(a, b, Expr::binary(
            BinOp::Eq,
            Expr::Column(ColumnRef::qualified(&r1, "x")),
            Expr::Column(ColumnRef::qualified(&alias, "y")),
        )).unwrap();
        let m = Mapping::new(g, target).with_correspondence(ValueCorrespondence::new(
            Expr::Column(ColumnRef::qualified(&r1, "x")),
            &ta,
        ));
        let printed = clio_lang::print_mapping(&m);
        let reparsed = clio_lang::parse_map(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse printed mapping: {e}\n{printed}"));
        prop_assert_eq!(reparsed, m.clone());
        // the line-oriented script format quotes the same way
        let script = clio::core::script::write_mapping(&m);
        let reparsed = clio::core::script::parse_mapping(&script)
            .unwrap_or_else(|e| panic!("failed to reparse written script: {e}\n{script}"));
        prop_assert_eq!(reparsed, m);
    }
}

/// The synthetic mapping for a spec (helper so the round-trip test can
/// compare against a second, independently generated copy).
fn w_mapping(spec: &SyntheticSpec) -> Mapping {
    generate(spec).mapping
}
