//! Long-running session flows, persistence, link operators, and ranking —
//! integration coverage beyond the figure golden tests.

use clio::core::operators::link::{conjoin_edge_predicate, remove_node, replace_edge_predicate};
use clio::core::ranking::{join_support, rank_walk_alternatives};
use clio::core::script::{parse_mapping, write_mapping};
use clio::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

/// Drive the entire Section-2 session, then persist the final mapping and
/// reload it into a fresh session: the two sessions' target views match.
#[test]
fn session_persistence_round_trip() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    session.add_correspondence("Children.name", "name").unwrap();
    let ids = session
        .add_correspondence("Parents.affiliation", "affiliation")
        .unwrap();
    let fid = ids
        .iter()
        .find(|id| {
            session
                .workspaces()
                .iter()
                .find(|w| w.id == **id)
                .unwrap()
                .description
                .contains("fid")
        })
        .copied()
        .unwrap();
    session.confirm(fid).unwrap();
    let preview_before = session.target_preview().unwrap();

    // save + reload into a brand-new session
    let script = write_mapping(&session.active().unwrap().mapping);
    let reloaded = parse_mapping(&script).unwrap();
    let mut session2 = Session::new(paper_database(), kids_target());
    let id = session2.adopt_mapping(reloaded, "from script").unwrap();
    assert_eq!(session2.active().unwrap().id, id);
    let preview_after = session2.target_preview().unwrap();

    let mut a = preview_before.clone();
    let mut b = preview_after.clone();
    a.sort_canonical();
    b.sort_canonical();
    assert_eq!(a.rows(), b.rows());
}

#[test]
fn adopt_mapping_rejects_wrong_target() {
    let mut session = Session::new(paper_database(), kids_target());
    let other_target = RelSchema::new("Other", vec![Attribute::new("x", DataType::Int)]).unwrap();
    let mut g = QueryGraph::new();
    g.add_node(Node::new("Children")).unwrap();
    let m = Mapping::new(g, other_target);
    assert!(session.adopt_mapping(m, "bad").is_err());
}

#[test]
fn paper_mappings_round_trip_through_scripts() {
    for m in [example_3_15_mapping(), section2_mapping()] {
        let text = write_mapping(&m);
        let parsed = parse_mapping(&text).unwrap();
        assert_eq!(parsed, m);
        // and the reloaded mapping evaluates identically
        let db = paper_database();
        let mut a = m.evaluate(&db, &funcs()).unwrap();
        let mut b = parsed.evaluate(&db, &funcs()).unwrap();
        a.sort_canonical();
        b.sort_canonical();
        assert_eq!(a.rows(), b.rows());
    }
}

/// Flip the Section-2 affiliation edge from father to mother with the
/// replace-edge operator and check the data changes accordingly.
#[test]
fn replace_edge_switches_scenarios() {
    let db = paper_database();
    let m = section2_mapping();
    let flipped = replace_edge_predicate(
        &m,
        &db,
        &funcs(),
        "Children",
        "Parents",
        parse_expr("Children.mid = Parents.ID").unwrap(),
    )
    .unwrap();
    let out = flipped.evaluate(&db, &funcs()).unwrap();
    let maya = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("002"))
        .unwrap();
    // affiliation now comes from the mother (Almaden), phone unchanged
    assert_eq!(maya[2], Value::str("Almaden"));
    assert_eq!(maya[4], Value::str("555-0103"));
}

#[test]
fn conjoin_edge_narrows_linkage() {
    let db = paper_database();
    let m = section2_mapping();
    let narrowed = conjoin_edge_predicate(
        &m,
        &db,
        &funcs(),
        "Children",
        "SBPS",
        parse_expr("SBPS.time < '8:10'").unwrap(),
    )
    .unwrap();
    let out = narrowed.evaluate(&db, &funcs()).unwrap();
    // only Anna's 8:05 pickup survives the narrowed link; Maya's 8:15
    // no longer joins, so her BusSchedule is null
    let anna = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("001"))
        .unwrap();
    let maya = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("002"))
        .unwrap();
    assert_eq!(anna[5], Value::str("8:05"));
    assert!(maya[5].is_null());
}

#[test]
fn remove_node_shrinks_section2_mapping() {
    let db = paper_database();
    let m = section2_mapping();
    let without_sbps = remove_node(&m, &db, &funcs(), "SBPS").unwrap();
    assert_eq!(without_sbps.graph.node_count(), 4);
    assert!(without_sbps.correspondence_for("BusSchedule").is_none());
    let out = without_sbps.evaluate(&db, &funcs()).unwrap();
    assert!(out.rows().iter().all(|r| r[5].is_null()));
    // removing the articulation node Parents2 (PhoneDir hangs off it) fails
    assert!(remove_node(&m, &db, &funcs(), "Parents2").is_err());
}

#[test]
fn ranking_prefers_data_supported_walks() {
    let db = paper_database();
    let knowledge = paper_knowledge();
    let mut g = QueryGraph::new();
    g.add_node(Node::new("Children")).unwrap();
    let m = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
    let alts = data_walk(&m, &db, &knowledge, "Children", "PhoneDir", 3, &funcs()).unwrap();
    let ranked = rank_walk_alternatives(alts, &db, &funcs()).unwrap();
    assert!(!ranked.is_empty());
    // all four children have fathers (support 4); Tom is motherless, so
    // the mid walk joins only 3 — the fid walk ranks first on data
    for (_, score) in &ranked {
        assert_eq!(score.path_len, 2);
    }
    assert_eq!(ranked[0].1.join_support, 4);
    assert!(ranked[0].0.description.contains("fid"));
    assert_eq!(ranked[1].1.join_support, 3);
    // join_support of the full Section-2 mapping: children with a mother,
    // her phone, AND a bus pickup -> Anna and Maya
    assert_eq!(join_support(&section2_mapping(), &db, &funcs()).unwrap(), 2);
}

/// Mining the paper database rediscovers the declared foreign keys and
/// surfaces the undeclared SBPS/XmasBazaar links; with mined knowledge, a
/// walk reaches SBPS without a chase, and Figure 11 gains the direct
/// `G4`-style alternative when a Children–PhoneDir spec is mined in.
#[test]
fn mining_enriches_walks_on_paper_database() {
    use clio::core::mining::{enrich_knowledge, mine_inclusion_dependencies, MiningConfig};

    let db = paper_database();
    let strict = MiningConfig {
        min_containment: 1.0,
        min_shared_values: 2,
        require_same_type: true,
    };
    let mined = mine_inclusion_dependencies(&db, &strict);
    assert!(mined.iter().any(
        |d| d.from == ("SBPS".into(), "ID".into()) && d.to == ("Children".into(), "ID".into())
    ));

    let mut knowledge = paper_knowledge();
    assert!(knowledge.paths("Children", "SBPS", 3).is_empty());
    enrich_knowledge(&mut knowledge, &db, &strict);
    assert!(!knowledge.paths("Children", "SBPS", 3).is_empty());

    // a mapping can now walk straight to SBPS
    let mut g = QueryGraph::new();
    g.add_node(Node::new("Children")).unwrap();
    let m = Mapping::new(g, kids_target())
        .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
    let alts = data_walk(&m, &db, &knowledge, "Children", "SBPS", 3, &funcs()).unwrap();
    assert!(!alts.is_empty());
    assert!(alts[0].mapping.graph.node_by_alias("SBPS").is_some());
}

/// The session survives a long randomized command sequence without
/// panicking, and its invariants hold throughout.
#[test]
fn session_fuzz_smoke() {
    let mut session = Session::new(paper_database(), kids_target());
    type Gesture = Box<dyn Fn(&mut Session)>;
    let gestures: Vec<Gesture> = vec![
        Box::new(|s| {
            let _ = s.add_correspondence("Children.ID", "ID");
        }),
        Box::new(|s| {
            let _ = s.add_correspondence("Children.name", "name");
        }),
        Box::new(|s| {
            let _ = s.add_correspondence("Parents.affiliation", "affiliation");
        }),
        Box::new(|s| {
            let _ = s.data_walk(None, "PhoneDir");
        }),
        Box::new(|s| {
            let _ = s.data_chase("Children", "ID", &Value::str("002"));
        }),
        Box::new(|s| {
            if let Some(w) = s.workspaces().first() {
                let id = w.id;
                let _ = s.confirm(id);
            }
        }),
        Box::new(|s| {
            let _ = s.add_source_filter("Children.age < 7");
        }),
        Box::new(|s| {
            let _ = s.require_target_attribute("name");
        }),
        Box::new(|s| {
            let _ = s.accept_active();
        }),
        Box::new(|s| {
            let _ = s.target_preview();
        }),
    ];
    // a fixed pseudo-random order, long enough to hit interesting states
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..120 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (state >> 33) as usize % gestures.len();
        gestures[k](&mut session);
        // invariant: the active workspace (if any) holds a valid mapping
        if let Some(w) = session.active() {
            w.mapping.validate(session.database(), &funcs()).unwrap();
        }
    }
}
