//! S2-SQL — the Section-2 narrative end to end, including the generated
//! `CREATE VIEW Kids` SQL and the inner-join refinement.

use clio::prelude::*;

fn funcs() -> FuncRegistry {
    FuncRegistry::with_builtins()
}

/// The generated SQL for the final Section-2 mapping has the paper's
/// shape: a view over Children with left outer joins to Parents,
/// Parents2, PhoneDir and SBPS, and no residual WHERE (the `Kids.ID`
/// constraint is absorbed by rooting the join chain at Children).
#[test]
fn section2_sql_golden() {
    let db = paper_database();
    let m = section2_mapping();
    let sql = generate_sql(
        &m,
        &db,
        &SqlOptions {
            root: Some("Children".into()),
            create_view: true,
        },
    )
    .unwrap();

    let expected = "\
CREATE VIEW Kids AS
SELECT Children.ID AS ID,
       Children.name AS name,
       Parents.affiliation AS affiliation,
       Parents.address AS address,
       PhoneDir.number AS contactPh,
       SBPS.time AS BusSchedule,
       Parents.salary + Parents2.salary AS FamilyIncome
FROM Children
  LEFT JOIN Parents ON Children.fid = Parents.ID
  LEFT JOIN Parents AS Parents2 ON Children.mid = Parents2.ID
  LEFT JOIN SBPS ON Children.ID = SBPS.ID
  LEFT JOIN PhoneDir ON PhoneDir.ID = Parents2.ID
";
    assert_eq!(sql, expected);
}

/// Requiring BusSchedule flips its LEFT JOIN to an inner JOIN (the paper's
/// closing refinement) and removes kids without a schedule.
#[test]
fn section2_required_field_refinement() {
    let db = paper_database();
    let m = section2_mapping();
    let required = require_target_attribute(&m, "BusSchedule");

    let sql = generate_sql(
        &required,
        &db,
        &SqlOptions {
            root: Some("Children".into()),
            create_view: false,
        },
    )
    .unwrap();
    assert!(sql.contains("\n  JOIN SBPS ON Children.ID = SBPS.ID"));
    assert_eq!(sql.matches("LEFT JOIN").count(), 3);

    let out = required.evaluate(&db, &funcs()).unwrap();
    assert_eq!(out.len(), 2); // only Anna and Maya ride the bus
    for row in out.rows() {
        assert!(!row[5].is_null());
    }
}

/// The mapping query result matches the paper's semantics value by value.
#[test]
fn section2_mapping_result_values() {
    let db = paper_database();
    let out = section2_mapping().evaluate(&db, &funcs()).unwrap();
    assert_eq!(out.len(), 4);

    let get = |id: &str| {
        out.rows()
            .iter()
            .find(|r| r[0] == Value::str(id))
            .unwrap_or_else(|| panic!("kid {id} missing"))
    };

    // Anna: father 202 (UofT), mother 201's phone, bus 8:05,
    // income 85k + 90k
    let anna = get("001");
    assert_eq!(anna[2], Value::str("UofT"));
    assert_eq!(anna[3], Value::str("12 Oak St"));
    assert_eq!(anna[4], Value::str("555-0101"));
    assert_eq!(anna[5], Value::str("8:05"));
    assert_eq!(anna[6], Value::Int(175_000));

    // Tom is motherless: contactPh and FamilyIncome null, no bus
    let tom = get("004");
    assert!(tom[4].is_null());
    assert!(tom[5].is_null());
    assert!(tom[6].is_null());

    // Ben: no bus, but phone and income present
    let ben = get("009");
    assert_eq!(ben[4], Value::str("555-0106"));
    assert!(ben[5].is_null());
    assert_eq!(ben[6], Value::Int(142_000));
}

/// The full Section-2 session drive reproduces the same target contents
/// as the statically-built mapping (modulo the FamilyIncome and address
/// correspondences, which the narrative does not add).
#[test]
fn section2_session_drive_matches_static_mapping() {
    let mut session = Session::new(paper_database(), kids_target());
    session.add_correspondence("Children.ID", "ID").unwrap();
    session.add_correspondence("Children.name", "name").unwrap();

    let ids = session
        .add_correspondence("Parents.affiliation", "affiliation")
        .unwrap();
    let fid = ids
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.description.contains("fid")
        })
        .copied()
        .unwrap();
    session.confirm(fid).unwrap();

    let walks = session.data_walk(None, "PhoneDir").unwrap();
    let mothers = walks
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("Parents2").is_some() && w.description.contains("mid")
        })
        .copied()
        .unwrap();
    session.confirm(mothers).unwrap();
    session
        .add_correspondence("PhoneDir.number", "contactPh")
        .unwrap();

    let chases = session
        .data_chase("Children", "ID", &Value::str("002"))
        .unwrap();
    let sbps = chases
        .iter()
        .find(|id| {
            let w = session.workspaces().iter().find(|w| w.id == **id).unwrap();
            w.mapping.graph.node_by_alias("SBPS").is_some()
        })
        .copied()
        .unwrap();
    session.confirm(sbps).unwrap();
    session
        .add_correspondence("SBPS.time", "BusSchedule")
        .unwrap();

    let preview = session.target_preview().unwrap();
    let reference = section2_mapping()
        .evaluate(session.database(), &funcs())
        .unwrap();
    assert_eq!(preview.len(), reference.len());
    // ID, name, affiliation, contactPh, BusSchedule must agree
    for row in preview.rows() {
        let id = &row[0];
        let r = reference.rows().iter().find(|r| &r[0] == id).unwrap();
        assert_eq!(row[1], r[1], "name for {id}");
        assert_eq!(row[2], r[2], "affiliation for {id}");
        assert_eq!(row[4], r[4], "contactPh for {id}");
        assert_eq!(row[5], r[5], "BusSchedule for {id}");
    }
}

/// The Def-3.14 evaluation and the generated LEFT-JOIN SQL agree on the
/// paper instance: evaluate the mapping, then emulate the SQL's join
/// chain with the relational engine and compare.
#[test]
fn mapping_eval_matches_left_join_plan() {
    let db = paper_database();
    let m = section2_mapping();
    let funcs = funcs();

    // engine-level emulation of the generated SQL
    let children = db.relation("Children").unwrap().to_table("Children");
    let parents = db.relation("Parents").unwrap().to_table("Parents");
    let parents2 = db
        .relation("Parents")
        .unwrap()
        .renamed("Parents2")
        .to_table("Parents2");
    let phone = db.relation("PhoneDir").unwrap().to_table("PhoneDir");
    let sbps = db.relation("SBPS").unwrap().to_table("SBPS");

    let j1 = join(
        &children,
        &parents,
        &parse_expr("Children.fid = Parents.ID").unwrap(),
        JoinKind::LeftOuter,
        &funcs,
    )
    .unwrap();
    let j2 = join(
        &j1,
        &parents2,
        &parse_expr("Children.mid = Parents2.ID").unwrap(),
        JoinKind::LeftOuter,
        &funcs,
    )
    .unwrap();
    let j3 = join(
        &j2,
        &phone,
        &parse_expr("PhoneDir.ID = Parents2.ID").unwrap(),
        JoinKind::LeftOuter,
        &funcs,
    )
    .unwrap();
    let j4 = join(
        &j3,
        &sbps,
        &parse_expr("Children.ID = SBPS.ID").unwrap(),
        JoinKind::LeftOuter,
        &funcs,
    )
    .unwrap();

    // project the correspondences
    let outputs: Vec<(Expr, Column)> = vec![
        (
            parse_expr("Children.ID").unwrap(),
            Column::new("Kids", "ID", DataType::Str),
        ),
        (
            parse_expr("Children.name").unwrap(),
            Column::new("Kids", "name", DataType::Str),
        ),
        (
            parse_expr("Parents.affiliation").unwrap(),
            Column::new("Kids", "affiliation", DataType::Str),
        ),
        (
            parse_expr("Parents.address").unwrap(),
            Column::new("Kids", "address", DataType::Str),
        ),
        (
            parse_expr("PhoneDir.number").unwrap(),
            Column::new("Kids", "contactPh", DataType::Str),
        ),
        (
            parse_expr("SBPS.time").unwrap(),
            Column::new("Kids", "BusSchedule", DataType::Str),
        ),
        (
            parse_expr("Parents.salary + Parents2.salary").unwrap(),
            Column::new("Kids", "FamilyIncome", DataType::Int),
        ),
    ];
    let mut sql_result = clio::relational::ops::project(&j4, &outputs, &funcs).unwrap();
    sql_result.dedup();
    sql_result.sort_canonical();

    let mut eval_result = m.evaluate(&db, &funcs).unwrap();
    eval_result.sort_canonical();
    assert_eq!(sql_result.rows(), eval_result.rows());
}
