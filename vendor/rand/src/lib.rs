//! Minimal, std-only stand-in for the parts of the `rand` crate API this
//! workspace uses. The environment has no registry access, so the real
//! crate cannot be fetched; this shim provides `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` methods
//! (`random`, `random_range`, `random_bool`) with deterministic,
//! platform-independent output.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same
//! construction rand's `SmallRng` historically used — so streams are
//! high-quality for test/benchmark data, though NOT cryptographically
//! secure.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build an RNG from a `u64` seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (`rng.random()`).
pub trait Standard: Sized {
    /// Draw a uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a half-open interval. Mirrors rand's
/// `SampleUniform` so `rng.random_range(0..6)` infers the integer type
/// from the expected output (e.g. `Value::Int(rng.random_range(0..6))`
/// samples an `i64`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range arguments accepted by `rng.random_range(..)`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end)
    }
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply
/// with rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = uniform_below(rng, span);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample from an empty range");
        let unit: f64 = Standard::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait RngExt: RngCore {
    /// Uniform sample of type `T` (`u64`, `u32`, `bool`, `f64`, `f32`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for source compatibility with `rand::Rng` imports.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by some call sites; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(0..6i64);
            assert!((0..6).contains(&v));
            let u = rng.random_range(3usize..10);
            assert!((3..10).contains(&u));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
