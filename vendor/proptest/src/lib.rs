//! Minimal, std-only stand-in for the parts of the `proptest` crate this
//! workspace uses. The environment has no registry access, so the real
//! crate cannot be fetched.
//!
//! Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   index (generation is a pure function of `module::test_name` and the
//!   case number), so failures reproduce exactly but are not minimized.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * **Tiny regex subset** for string strategies: literal characters,
//!   `[a-z]`-style character classes (with ranges), the `\PC`
//!   (non-control) class, and `{m,n}` / `{n}` quantifiers — exactly what
//!   this repo's tests use.

pub mod test_runner {
    //! Deterministic per-case RNG and run configuration.

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// xoshiro256++ seeded from a hash of (test id, case index): every
    /// case is reproducible from the test name alone.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Deterministic RNG for one test case.
        #[must_use]
        pub fn for_case(test_id: &str, case: u32) -> Self {
            // FNV-1a over the test id, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(bound);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a cloneable, reference-counted strategy.
        fn boxed(self) -> RcStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            RcStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Build a recursive strategy: `self` is the leaf; `recurse`
        /// wraps an inner strategy into a composite one. `depth` bounds
        /// the recursion depth; the size/branch hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> RcStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(RcStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let expanded = recurse(current).boxed();
                // 2/3 chance of recursing at each level below the cap.
                current = OneOf::new(vec![leaf.clone(), expanded.clone(), expanded]).boxed();
            }
            current
        }
    }

    /// Cloneable type-erased strategy (`BoxedStrategy` equivalent).
    pub struct RcStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for RcStrategy<T> {
        fn clone(&self) -> Self {
            RcStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for RcStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<RcStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Choose uniformly among `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<RcStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let off = rng.below(span);
                    ((self.start as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )*};
    }

    impl_range_strategy! {
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    }

    /// Full-range numeric strategy (`proptest::num::<ty>::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct NumAny<T>(PhantomData<T>);

    impl<T> NumAny<T> {
        /// Const constructor (used by the `ANY` consts).
        #[must_use]
        pub const fn new() -> Self {
            NumAny(PhantomData)
        }
    }

    impl<T> Default for NumAny<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    macro_rules! impl_num_any {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for NumAny<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_num_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // String literals are regex-subset string strategies.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod num {
    //! `proptest::num::<ty>::ANY` strategies.
    #![allow(missing_docs)]

    macro_rules! num_mod {
        ($($m:ident : $t:ty),* $(,)?) => {$(
            pub mod $m {
                /// Uniform over the full range of the type.
                pub const ANY: crate::strategy::NumAny<$t> =
                    crate::strategy::NumAny::new();
            }
        )*};
    }

    num_mod! {
        u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
        i8: i8, i16: i16, i32: i32, i64: i64, isize: isize,
    }
}

pub mod bool {
    //! `proptest::bool::ANY`.

    /// Uniform boolean.
    pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `None` ~30% of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.3 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Regex-subset string generation for `&str` strategies.

    use super::test_runner::TestRng;

    enum Atom {
        /// Choose one char from the set.
        Class(Vec<char>),
        /// A literal char.
        Literal(char),
    }

    struct Quantified {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    /// Characters for the `\PC` (non-control) class: printable ASCII plus
    /// a few multi-byte code points so parsers see non-ASCII input.
    fn non_control_chars() -> Vec<char> {
        let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        chars.extend(['\u{e9}', '\u{3b1}', '\u{2192}', '\u{6f22}', '\u{1d11e}']);
        chars
    }

    fn parse(pattern: &str) -> Vec<Quantified> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad range in pattern {pattern:?}");
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // skip ']'
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => {
                    assert!(
                        i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C',
                        "unsupported escape in pattern {pattern:?} (only \\PC is known)"
                    );
                    i += 3;
                    Atom::Class(non_control_chars())
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // optional {m,n} / {n}
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            out.push(Quantified { atom, min, max });
        }
        out
    }

    /// Generate a string matching the (subset) regex `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut s = String::new();
        for q in &atoms {
            let count = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..count {
                match &q.atom {
                    Atom::Literal(c) => s.push(*c),
                    Atom::Class(set) => {
                        s.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        s
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip a case when an assumption fails. This shim simply returns from
/// the case closure (the case counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut rng =
                                $crate::test_runner::TestRng::for_case(test_id, case);
                            $(
                                let $arg = $crate::strategy::Strategy::generate(
                                    &($strat), &mut rng);
                            )*
                            $body
                        })
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: {test_id} failed at case {case} of {} \
                             (cases are deterministic; rerun reproduces this)",
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_generation_matches_subset() {
        let mut rng = TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::string::generate_from_pattern("[ -~]{0,12}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = crate::string::generate_from_pattern("\\PC{0,60}", &mut rng);
            assert!(u.chars().all(|c| !c.is_control()));
            assert!(u.chars().count() <= 60);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u8..17, 0..9);
        let a = strat.generate(&mut TestRng::for_case("d", 3));
        let b = strat.generate(&mut TestRng::for_case("d", 3));
        assert_eq!(a, b);
        for v in &a {
            assert!(*v < 17);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself compiles and runs: tuples, oneof, map, vec.
        #[test]
        fn macro_smoke(
            v in crate::collection::vec((0usize..5, prop_oneof![Just(1i64), -4i64..4]), 0..8),
            flag in crate::bool::ANY,
            s in "[a-c]{2,4}",
        ) {
            prop_assert!(v.len() < 8);
            for (a, b) in &v {
                prop_assert!(*a < 5);
                prop_assert!((-4..4).contains(b) || *b == 1);
            }
            let _ = flag;
            prop_assert!((2..=4).contains(&s.len()));
        }
    }
}
