//! Minimal, std-only stand-in for the parts of the `criterion` benchmark
//! harness this workspace uses. The environment has no registry access,
//! so the real crate cannot be fetched.
//!
//! Semantics: each `Bencher::iter` call runs a short warm-up, then takes
//! `sample_size` timed samples (each sample batches enough iterations to
//! exceed a minimum duration) and prints min / median / max per-iteration
//! times in a `cargo bench`-friendly single line. No plotting, no
//! statistics beyond the median, no baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", 8)` renders as `algo/8`.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(8)` renders as `8`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `body`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration: find an iteration count that takes
        // at least ~1ms per sample so timer resolution is irrelevant.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(body());
            }
            let total = start.elapsed().as_secs_f64() * 1e9;
            self.samples_ns.push(total / iters_per_sample as f64);
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    }

    fn report(&self, label: &str) {
        if self.samples_ns.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let min = self.samples_ns[0];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Benchmark `f` with no external input.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// No-op (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark `f` at the top level.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
        self
    }
}

/// Re-export for call sites that import `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
