//! # clio — data-driven understanding and refinement of schema mappings
//!
//! A from-scratch Rust reproduction of *"Data-Driven Understanding and
//! Refinement of Schema Mappings"* (Yan, Miller, Haas, Fagin — SIGMOD
//! 2001), the Clio paper that introduced example-driven construction and
//! refinement of schema mappings.
//!
//! The workspace is organized as:
//!
//! * [`relational`] (`clio-relational`) — the in-memory relational engine:
//!   values with SQL null semantics, three-valued logic, an SQL-ish
//!   expression language, joins/outer joins, outer union, subsumption
//!   removal, and **minimum union**;
//! * [`core`] (`clio-core`) — the paper's contribution: query graphs, data
//!   associations, **full disjunctions**, mappings `⟨G, V, C_S, C_T⟩`,
//!   mapping examples, **sufficient illustrations**, focused
//!   illustrations, the **data walk** and **data chase** operators,
//!   continuous illustration evolution, the workspace/session framework,
//!   and SQL generation;
//! * [`datagen`] (`clio-datagen`) — the reconstructed Figure-1 paper
//!   dataset and synthetic workload generators.
//!
//! # Quickstart
//!
//! ```
//! use clio::prelude::*;
//!
//! // The paper's source database (Figure 1) and Kids target schema.
//! let db = clio::datagen::paper::paper_database();
//! let target = clio::datagen::paper::kids_target();
//!
//! // Drive a mapping session with data examples, as in Section 2.
//! let mut session = Session::new(db, target);
//! session.add_correspondence("Children.ID", "ID").unwrap();   // v1
//! session.add_correspondence("Children.name", "name").unwrap(); // v2
//!
//! // Adding Parents.affiliation forces a data walk: two scenarios
//! // (mother's vs father's affiliation), each in its own workspace.
//! let scenarios = session
//!     .add_correspondence("Parents.affiliation", "affiliation")
//!     .unwrap();
//! assert_eq!(scenarios.len(), 2);
//! session.confirm(scenarios[0]).unwrap();
//!
//! // WYSIWYG: the target view under the active mapping.
//! let preview = session.target_preview().unwrap();
//! assert_eq!(preview.len(), 4); // all four children
//! ```

pub use clio_core as core;
pub use clio_datagen as datagen;
pub use clio_relational as relational;

/// One-stop prelude re-exporting the most used types from all crates.
pub mod prelude {
    pub use clio_core::prelude::*;
    pub use clio_datagen::paper::{
        example_3_15_mapping, figure6_graph, kids_target, paper_database, paper_knowledge,
        running_graph, section2_mapping,
    };
    pub use clio_datagen::synthetic::{generate, SyntheticSpec, Topology};
    pub use clio_relational::prelude::*;
}
