//! Data trimming operators (paper Sec 5): modify `C_S` / `C_T` without
//! touching the query graph, and report the effect on examples.
//!
//! Trimming operators are "illustrated using positive and negative
//! examples so a user can see the effect of the different filters" — the
//! [`trim_effect`] diff computes exactly which examples flip polarity.

use clio_relational::database::Database;
use clio_relational::error::Result;
use clio_relational::expr::Expr;
use clio_relational::funcs::FuncRegistry;
use clio_relational::parser::parse_expr;

use crate::example::Example;
use crate::mapping::Mapping;

/// Add a source filter (parsed from text) to a mapping.
pub fn add_source_filter(mapping: &Mapping, filter: &str) -> Result<Mapping> {
    let e = parse_expr(filter)?;
    Ok(mapping.clone().with_source_filter(e))
}

/// Add a target filter (parsed from text) to a mapping.
pub fn add_target_filter(mapping: &Mapping, filter: &str) -> Result<Mapping> {
    let e = parse_expr(filter)?;
    Ok(mapping.clone().with_target_filter(e))
}

/// Remove the `i`-th source filter.
#[must_use]
pub fn remove_source_filter(mapping: &Mapping, i: usize) -> Mapping {
    let mut m = mapping.clone();
    if i < m.source_filters.len() {
        m.source_filters.remove(i);
    }
    m
}

/// Remove the `i`-th target filter.
#[must_use]
pub fn remove_target_filter(mapping: &Mapping, i: usize) -> Mapping {
    let mut m = mapping.clone();
    if i < m.target_filters.len() {
        m.target_filters.remove(i);
    }
    m
}

/// Mark a target attribute as *required*: add
/// `Target.attr IS NOT NULL` to `C_T`. This is the paper's Section-2
/// gesture — "upon seeing a null in the BusSchedule column, [the user may]
/// indicate that BusSchedule is really a required field", turning the
/// corresponding left outer join into an inner join.
#[must_use]
pub fn require_target_attribute(mapping: &Mapping, attr: &str) -> Mapping {
    let e = Expr::IsNull {
        expr: Box::new(Expr::col(&format!("{}.{attr}", mapping.target.name()))),
        negated: true,
    };
    if mapping.target_filters.contains(&e) {
        mapping.clone()
    } else {
        mapping.clone().with_target_filter(e)
    }
}

/// The example-level effect of a trimming operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimEffect {
    /// Examples positive before and negative after (trimmed away).
    pub newly_negative: Vec<Example>,
    /// Examples negative before and positive after (re-admitted).
    pub newly_positive: Vec<Example>,
    /// Positive-example counts before and after.
    pub positive_before: usize,
    /// Positive-example count after the change.
    pub positive_after: usize,
}

/// Compare two mappings that share a query graph: which examples change
/// polarity? Both example populations are generated over the same `D(G)`.
pub fn trim_effect(
    before: &Mapping,
    after: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<TrimEffect> {
    let assocs = before.associations(db, crate::full_disjunction::FdAlgo::Auto, funcs)?;
    let eb = before.examples_for(&assocs, db, funcs)?;
    let ea = after.examples_for(&assocs, db, funcs)?;
    debug_assert_eq!(eb.len(), ea.len());
    let mut newly_negative = Vec::new();
    let mut newly_positive = Vec::new();
    for (b, a) in eb.iter().zip(&ea) {
        if b.positive && !a.positive {
            newly_negative.push(a.clone());
        } else if !b.positive && a.positive {
            newly_positive.push(a.clone());
        }
    }
    Ok(TrimEffect {
        positive_before: eb.iter().filter(|e| e.positive).count(),
        positive_after: ea.iter().filter(|e| e.positive).count(),
        newly_negative,
        newly_positive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("age", DataType::Int)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), 6i64.into(), "201".into()])
                .row(vec!["002".into(), 4i64.into(), "202".into()])
                .row(vec!["003".into(), 9i64.into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("SBPS")
                .attr("ID", DataType::Str)
                .attr("time", DataType::Str)
                .row(vec!["002".into(), "8:15".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let s = g.add_node(Node::new("SBPS").with_code("S")).unwrap();
        g.add_edge(c, s, Expr::col_eq("Children.ID", "SBPS.ID"))
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("BusSchedule", DataType::Str),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("SBPS.time", "BusSchedule"))
            .with_target_not_null_filters()
    }

    fn funcs() -> clio_relational::funcs::FuncRegistry {
        clio_relational::funcs::FuncRegistry::with_builtins()
    }

    #[test]
    fn add_and_remove_filters() {
        let m = mapping();
        let m2 = add_source_filter(&m, "Children.age < 7").unwrap();
        assert_eq!(m2.source_filters.len(), 1);
        let m3 = remove_source_filter(&m2, 0);
        assert_eq!(m3.source_filters, m.source_filters);
        let m4 = add_target_filter(&m, "Kids.BusSchedule IS NOT NULL").unwrap();
        assert_eq!(m4.target_filters.len(), 2);
        let m5 = remove_target_filter(&m4, 1);
        assert_eq!(m5.target_filters, m.target_filters);
        // out-of-range removal is a no-op
        assert_eq!(remove_source_filter(&m, 7), m);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(add_source_filter(&mapping(), "age <").is_err());
    }

    #[test]
    fn section_2_bus_schedule_required() {
        // before: kids without a bus schedule appear with a null
        let m = mapping();
        let before = m.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(before.len(), 3);
        // after requiring BusSchedule, only Maya (002) remains
        let m2 = require_target_attribute(&m, "BusSchedule");
        let after = m2.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(after.len(), 1);
        assert_eq!(after.rows()[0][0], Value::str("002"));
        // idempotent
        let m3 = require_target_attribute(&m2, "BusSchedule");
        assert_eq!(m3.target_filters.len(), m2.target_filters.len());
    }

    #[test]
    fn trim_effect_reports_flipped_examples() {
        let m = mapping();
        let m2 = require_target_attribute(&m, "BusSchedule");
        let effect = trim_effect(&m, &m2, &db(), &funcs()).unwrap();
        assert_eq!(effect.positive_before, 3);
        assert_eq!(effect.positive_after, 1);
        assert_eq!(effect.newly_negative.len(), 2);
        assert!(effect.newly_positive.is_empty());
        // loosening filters re-admits examples
        let back = trim_effect(&m2, &m, &db(), &funcs()).unwrap();
        assert_eq!(back.newly_positive.len(), 2);
        assert!(back.newly_negative.is_empty());
    }

    #[test]
    fn trim_effect_of_identical_mappings_is_empty() {
        let m = mapping();
        let effect = trim_effect(&m, &m, &db(), &funcs()).unwrap();
        assert!(effect.newly_negative.is_empty() && effect.newly_positive.is_empty());
    }
}
