//! Mapping operators (paper Sec 5): the actions a user takes after
//! studying an illustration.
//!
//! * **correspondence operators** — add/remove value correspondences,
//!   spawning alternative mappings with maximal reuse (Sec 6.2);
//! * **data trimming operators** — add/remove source and target filters,
//!   with positive/negative example effect reporting;
//! * **data linking operators** — [`data_walk`] and
//!   [`data_chase`], which extend the query graph.

pub mod chase;
pub mod correspondence_ops;
pub mod link;
pub mod trim;
pub mod walk;

pub use chase::{data_chase, ChaseAlternative};
pub use correspondence_ops::{add_correspondence, remove_correspondence, AddOutcome};
pub use link::{conjoin_edge_predicate, remove_node, replace_edge_predicate};
pub use trim::{
    add_source_filter, add_target_filter, require_target_attribute, trim_effect, TrimEffect,
};
pub use walk::{data_walk, WalkAlternative};
