//! Additional data-linking operators (the paper defers several operators
//! to its companion report \[17\]; these are the natural complements of
//! walk and chase): replacing an edge's join predicate, conjoining extra
//! predicates onto an edge, and removing a node from the mapping.

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::funcs::FuncRegistry;

use crate::mapping::Mapping;
use crate::query_graph::QueryGraph;

/// Replace the predicate of the edge between `a_alias` and `b_alias`.
/// The new predicate must bind against the endpoints and be strong; the
/// resulting mapping is re-validated. This is how a user flips the
/// mother-link to the father-link without redoing a walk.
pub fn replace_edge_predicate(
    mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    a_alias: &str,
    b_alias: &str,
    new_predicate: Expr,
) -> Result<Mapping> {
    let g = &mapping.graph;
    let a = g
        .node_by_alias(a_alias)
        .ok_or_else(|| Error::Invalid(format!("unknown node `{a_alias}`")))?;
    let b = g
        .node_by_alias(b_alias)
        .ok_or_else(|| Error::Invalid(format!("unknown node `{b_alias}`")))?;
    if g.edge_between(a, b).is_none() {
        return Err(Error::Invalid(format!(
            "no edge between `{a_alias}` and `{b_alias}` to replace"
        )));
    }
    let mut new_graph = QueryGraph::new();
    for n in g.nodes() {
        new_graph.add_node(n.clone())?;
    }
    for e in g.edges() {
        let pred = if (e.a == a && e.b == b) || (e.a == b && e.b == a) {
            new_predicate.clone()
        } else {
            e.predicate.clone()
        };
        new_graph.add_edge(e.a, e.b, pred)?;
    }
    let mut m = mapping.clone();
    m.graph = new_graph;
    m.validate(db, funcs)?;
    Ok(m)
}

/// Conjoin an extra predicate onto an existing edge (tightening the
/// linkage, e.g. adding a date-range condition to an ID join).
pub fn conjoin_edge_predicate(
    mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    a_alias: &str,
    b_alias: &str,
    extra: Expr,
) -> Result<Mapping> {
    let g = &mapping.graph;
    let a = g
        .node_by_alias(a_alias)
        .ok_or_else(|| Error::Invalid(format!("unknown node `{a_alias}`")))?;
    let b = g
        .node_by_alias(b_alias)
        .ok_or_else(|| Error::Invalid(format!("unknown node `{b_alias}`")))?;
    let existing = g
        .edge_between(a, b)
        .ok_or_else(|| Error::Invalid("no edge to conjoin onto".into()))?
        .predicate
        .clone();
    replace_edge_predicate(
        mapping,
        db,
        funcs,
        a_alias,
        b_alias,
        Expr::conjunction(vec![existing, extra]),
    )
}

/// Remove a node (and its incident edges) from the mapping. The node
/// must not be an articulation point — the remaining graph has to stay
/// connected (mappings require connected query graphs). Correspondences
/// and source filters referencing the removed alias are dropped, since
/// they can no longer bind.
pub fn remove_node(
    mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    alias: &str,
) -> Result<Mapping> {
    let g = &mapping.graph;
    let victim = g
        .node_by_alias(alias)
        .ok_or_else(|| Error::Invalid(format!("unknown node `{alias}`")))?;
    if g.node_count() == 1 {
        return Err(Error::Invalid(
            "cannot remove the last node of a mapping".into(),
        ));
    }

    let mut new_graph = QueryGraph::new();
    // old id -> new id
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(g.node_count());
    for (i, n) in g.nodes().iter().enumerate() {
        if i == victim {
            remap.push(None);
        } else {
            remap.push(Some(new_graph.add_node(n.clone())?));
        }
    }
    for e in g.edges() {
        if let (Some(a), Some(b)) = (remap[e.a], remap[e.b]) {
            new_graph.add_edge(a, b, e.predicate.clone())?;
        }
    }
    if !new_graph.is_connected() {
        return Err(Error::Invalid(format!(
            "removing `{alias}` would disconnect the query graph"
        )));
    }

    let mut m = mapping.clone();
    m.graph = new_graph;
    m.correspondences
        .retain(|c| !c.source_qualifiers().contains(&alias));
    m.source_filters
        .retain(|f| !f.qualifiers().contains(&alias));
    m.validate(db, funcs)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::Node;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, attrs) in [
            ("Children", vec!["ID", "mid", "fid"]),
            ("Parents", vec!["ID", "affiliation"]),
            ("PhoneDir", vec!["ID", "number"]),
        ] {
            let mut b = RelationBuilder::new(name);
            for a in attrs {
                b = b.attr(a, DataType::Str);
            }
            b = match name {
                "Children" => b.row(vec!["002".into(), "203".into(), "204".into()]),
                "Parents" => b.row(vec!["203".into(), "Almaden".into()]),
                _ => b.row(vec!["203".into(), "555".into()]),
            };
            db.add_relation(b.build().unwrap()).unwrap();
        }
        db
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(p, ph, parse_expr("PhoneDir.ID = Parents.ID").unwrap())
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("number", DataType::Str),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("PhoneDir.number", "number"))
            .with_target_not_null_filters()
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn replace_edge_flips_mother_to_father() {
        let m = mapping();
        let m2 = replace_edge_predicate(
            &m,
            &db(),
            &funcs(),
            "Children",
            "Parents",
            parse_expr("Children.fid = Parents.ID").unwrap(),
        )
        .unwrap();
        let g = &m2.graph;
        let e = g.edge_between(0, 1).unwrap();
        assert_eq!(e.predicate.to_string(), "Children.fid = Parents.ID");
        // other edges untouched
        assert_eq!(
            g.edge_between(1, 2).unwrap().predicate.to_string(),
            "PhoneDir.ID = Parents.ID"
        );
        // the result evaluates: Maya's father 204 has no parent row here,
        // so number becomes null but Maya is still produced
        let out = m2.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows()[0][1].is_null());
    }

    #[test]
    fn replace_edge_validates() {
        let m = mapping();
        // non-strong predicate rejected
        assert!(replace_edge_predicate(
            &m,
            &db(),
            &funcs(),
            "Children",
            "Parents",
            parse_expr("TRUE").unwrap(),
        )
        .is_err());
        // unknown endpoints rejected
        assert!(replace_edge_predicate(
            &m,
            &db(),
            &funcs(),
            "Children",
            "SBPS",
            parse_expr("Children.ID = SBPS.ID").unwrap(),
        )
        .is_err());
        // missing edge rejected
        assert!(replace_edge_predicate(
            &m,
            &db(),
            &funcs(),
            "Children",
            "PhoneDir",
            parse_expr("Children.ID = PhoneDir.ID").unwrap(),
        )
        .is_err());
    }

    #[test]
    fn conjoin_tightens_the_edge() {
        let m = mapping();
        let m2 = conjoin_edge_predicate(
            &m,
            &db(),
            &funcs(),
            "Children",
            "Parents",
            parse_expr("Parents.affiliation = 'Almaden'").unwrap(),
        )
        .unwrap();
        let e = m2.graph.edge_between(0, 1).unwrap();
        assert_eq!(
            e.predicate.to_string(),
            "(Children.mid = Parents.ID) AND (Parents.affiliation = 'Almaden')"
        );
        let out = m2.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(out.rows()[0][1], Value::str("555"));
    }

    #[test]
    fn remove_leaf_node_drops_its_correspondences() {
        let m = mapping();
        let m2 = remove_node(&m, &db(), &funcs(), "PhoneDir").unwrap();
        assert_eq!(m2.graph.node_count(), 2);
        assert_eq!(m2.correspondences.len(), 1); // PhoneDir.number dropped
        assert!(m2.correspondence_for("number").is_none());
        m2.validate(&db(), &funcs()).unwrap();
    }

    #[test]
    fn remove_articulation_point_rejected() {
        let m = mapping();
        // Parents connects Children and PhoneDir
        assert!(remove_node(&m, &db(), &funcs(), "Parents").is_err());
    }

    #[test]
    fn remove_last_node_rejected() {
        let m = mapping();
        let m2 = remove_node(&m, &db(), &funcs(), "PhoneDir").unwrap();
        let m3 = remove_node(&m2, &db(), &funcs(), "Parents").unwrap();
        assert!(remove_node(&m3, &db(), &funcs(), "Children").is_err());
    }

    #[test]
    fn remove_unknown_node_rejected() {
        assert!(remove_node(&mapping(), &db(), &funcs(), "SBPS").is_err());
    }
}
