//! Correspondence operators (paper Secs 5, 6.2).
//!
//! Adding a correspondence for an unmapped target attribute simply extends
//! the active mapping. Adding a **second** correspondence for an
//! already-mapped attribute means the target attribute can be computed in
//! two different ways (the paper's `ArrivalTime` — from the bus schedule
//! *or* from class schedules), so a **new alternative mapping** is spawned
//! that reuses everything else: the query graph, the other
//! correspondences, and the filters (Example 6.2).

use crate::correspondence::ValueCorrespondence;
use crate::mapping::Mapping;

/// Result of adding a correspondence.
#[derive(Debug, Clone, PartialEq)]
pub enum AddOutcome {
    /// The target attribute was unmapped: the mapping was extended.
    Extended(Mapping),
    /// The attribute already had a correspondence: a new alternative
    /// mapping was created (the original is untouched).
    NewAlternative {
        /// The spawned alternative with the new correspondence in place.
        alternative: Mapping,
        /// The expression of the correspondence it replaced.
        replaced: ValueCorrespondence,
    },
}

impl AddOutcome {
    /// The resulting mapping, whichever variant.
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        match self {
            AddOutcome::Extended(m) => m,
            AddOutcome::NewAlternative { alternative, .. } => alternative,
        }
    }
}

/// Add a value correspondence to a mapping, spawning an alternative when
/// the target attribute is already mapped. `base_graph` optionally
/// supplies the query graph for the spawned alternative — Example 6.2:
/// Clio copies "the query graph *as it was prior to the addition of the
/// first correspondence for ArrivalTime*", since graph extensions made for
/// the first computation (e.g. walking to the bus-schedule table) are
/// specific to it. Pass `None` to reuse the current graph.
#[must_use]
pub fn add_correspondence(
    mapping: &Mapping,
    v: ValueCorrespondence,
    base_graph: Option<&crate::query_graph::QueryGraph>,
) -> AddOutcome {
    match mapping.correspondence_for(&v.target_attr) {
        None => {
            let mut m = mapping.clone();
            m.set_correspondence(v);
            AddOutcome::Extended(m)
        }
        Some(existing) => {
            let replaced = existing.clone();
            let mut alternative = mapping.clone();
            if let Some(g) = base_graph {
                alternative.graph = g.clone();
                // drop pieces that no longer bind against the rolled-back
                // graph (correspondences/filters added for the replaced
                // computation)
                let aliases: Vec<String> = g.nodes().iter().map(|n| n.alias.clone()).collect();
                alternative.correspondences.retain(|c| {
                    c.source_qualifiers()
                        .iter()
                        .all(|q| aliases.contains(&(*q).to_owned()))
                });
                alternative.source_filters.retain(|f| {
                    f.qualifiers()
                        .iter()
                        .all(|q| aliases.contains(&(*q).to_owned()))
                });
            }
            alternative.set_correspondence(v);
            AddOutcome::NewAlternative {
                alternative,
                replaced,
            }
        }
    }
}

/// Remove the correspondence for a target attribute (no-op when absent).
#[must_use]
pub fn remove_correspondence(mapping: &Mapping, target_attr: &str) -> Mapping {
    let mut m = mapping.clone();
    m.correspondences.retain(|c| c.target_attr != target_attr);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::expr::Expr;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn base_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        g
    }

    fn extended_graph() -> QueryGraph {
        let mut g = base_graph();
        let b = g.add_node(Node::new("BusSchedule").with_code("B")).unwrap();
        g.add_edge(0, b, Expr::col_eq("Children.ID", "BusSchedule.ID"))
            .unwrap();
        g
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("ArrivalTime", DataType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn first_correspondence_extends() {
        let m = Mapping::new(base_graph(), target());
        let out = add_correspondence(&m, ValueCorrespondence::identity("Children.ID", "ID"), None);
        match out {
            AddOutcome::Extended(m2) => assert_eq!(m2.correspondences.len(), 1),
            other => panic!("expected Extended, got {other:?}"),
        }
    }

    #[test]
    fn example_6_2_second_correspondence_spawns_alternative() {
        // mapping computing ArrivalTime from the bus schedule
        let m = Mapping::new(extended_graph(), target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "BusSchedule.time",
                "ArrivalTime",
            ))
            .with_source_filter(Expr::IsNull {
                expr: Box::new(Expr::col("BusSchedule.time")),
                negated: true,
            });

        // second way to compute ArrivalTime (from class schedules), rolled
        // back to the graph prior to the bus-schedule walk
        let out = add_correspondence(
            &m,
            ValueCorrespondence::identity("Children.lastClassEnd", "ArrivalTime"),
            Some(&base_graph()),
        );
        let AddOutcome::NewAlternative {
            alternative,
            replaced,
        } = out
        else {
            panic!("expected NewAlternative");
        };
        assert_eq!(replaced.expr.to_string(), "BusSchedule.time");
        // graph rolled back
        assert_eq!(alternative.graph.node_count(), 1);
        // ID correspondence reused; bus-schedule correspondence dropped
        // (references a node no longer in the graph); new one in place
        assert_eq!(alternative.correspondences.len(), 2);
        assert_eq!(
            alternative
                .correspondence_for("ArrivalTime")
                .unwrap()
                .expr
                .to_string(),
            "Children.lastClassEnd"
        );
        // filter referencing the dropped node removed
        assert!(alternative.source_filters.is_empty());
        // the original mapping is untouched
        assert_eq!(
            m.correspondence_for("ArrivalTime")
                .unwrap()
                .expr
                .to_string(),
            "BusSchedule.time"
        );
    }

    #[test]
    fn alternative_without_rollback_keeps_graph() {
        let m = Mapping::new(extended_graph(), target()).with_correspondence(
            ValueCorrespondence::identity("BusSchedule.time", "ArrivalTime"),
        );
        let out = add_correspondence(
            &m,
            ValueCorrespondence::identity("Children.ID", "ArrivalTime"),
            None,
        );
        assert_eq!(out.mapping().graph.node_count(), 2);
    }

    #[test]
    fn remove_correspondence_is_targeted() {
        let m = Mapping::new(base_graph(), target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let m2 = remove_correspondence(&m, "ID");
        assert!(m2.correspondences.is_empty());
        let m3 = remove_correspondence(&m2, "ID"); // no-op
        assert_eq!(m3, m2);
    }
}
