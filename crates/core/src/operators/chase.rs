//! The data chase operator (paper Sec 5.2).
//!
//! In a chase, the user selects a *value* in the current illustration
//! ("chase Maya's ID, 002") without knowing where else it lives. Clio
//! locates every occurrence of the value in relations not yet referenced
//! by the mapping and offers one extension per occurrence site: a new node
//! plus an outer equijoin edge `Q.A = R.B`.

use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;
use clio_relational::index::ValueIndex;
use clio_relational::value::Value;

use crate::knowledge::{JoinSpec, Provenance, SchemaKnowledge};
use crate::mapping::Mapping;
use crate::query_graph::Node;

/// One alternative produced by a data chase.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaseAlternative {
    /// The extended mapping.
    pub mapping: Mapping,
    /// The relation where the chased value was found.
    pub relation: String,
    /// The attribute where the chased value was found.
    pub attribute: String,
    /// How many rows of `relation` contain the value (evidence strength).
    pub occurrence_count: usize,
    /// Human-readable description of the proposed link.
    pub description: String,
}

impl ChaseAlternative {
    /// The join spec this chase discovered; confirming the alternative
    /// should add it to the schema knowledge (paper: the chase lets users
    /// "actively discover new ways of connecting data").
    #[must_use]
    pub fn discovered_spec(&self, from_relation: &str, from_attr: &str) -> JoinSpec {
        JoinSpec::simple(
            from_relation,
            from_attr,
            self.relation.clone(),
            self.attribute.clone(),
            Provenance::UserAsserted,
        )
    }
}

/// Run a data chase: chase `value`, selected at `start_alias.start_attr`
/// of the mapping's graph, through the whole database.
///
/// Returns one alternative per `(relation, attribute)` occurrence site
/// with the relation not referenced by the mapping. The site the value
/// was selected from is naturally excluded (its relation is in the graph).
pub fn data_chase(
    mapping: &Mapping,
    db: &Database,
    index: &ValueIndex,
    start_alias: &str,
    start_attr: &str,
    value: &Value,
    funcs: &FuncRegistry,
) -> Result<Vec<ChaseAlternative>> {
    let _span = clio_obs::span("op.chase");
    let start = mapping
        .graph
        .node_by_alias(start_alias)
        .ok_or_else(|| Error::Invalid(format!("start node `{start_alias}` not in graph")))?;
    // the attribute must exist on the start relation
    let start_rel = &mapping.graph.nodes()[start].relation;
    db.relation(start_rel)?.schema().index_of(start_attr)?;
    if value.is_null() {
        return Err(Error::Invalid("cannot chase a null value".into()));
    }

    let mut out = Vec::new();
    let mut pruned: u64 = 0;
    for (relation, attribute) in index.occurrence_sites(value) {
        if !mapping.graph.nodes_of_relation(&relation).is_empty() {
            pruned += 1;
            continue; // paper: only relations not referenced by a node in M
        }
        let occurrence_count = index
            .occurrences(value)
            .iter()
            .filter(|o| o.relation == relation && o.attribute == attribute)
            .count();

        let mut g = mapping.graph.clone();
        let alias = g.fresh_alias(&relation);
        let node = if alias == relation {
            Node::new(alias.clone())
        } else {
            Node::copy_of(alias.clone(), relation.clone())
        };
        let id = g.add_node(node)?;
        let pred = clio_relational::expr::Expr::col_eq(
            &format!("{start_alias}.{start_attr}"),
            &format!("{alias}.{attribute}"),
        );
        g.add_edge(start, id, pred.clone())?;
        g.validate(db, funcs)?;

        let mut m = mapping.clone();
        m.graph = g;
        out.push(ChaseAlternative {
            mapping: m,
            description: format!("found `{value}` in {relation}.{attribute}; link {pred}"),
            relation,
            attribute,
            occurrence_count,
        });
    }
    metrics::add(Counter::ChaseAlternativesGenerated, out.len() as u64);
    metrics::add(Counter::ChaseAlternativesPruned, pruned);
    Ok(out)
}

/// Confirming a chase alternative teaches Clio the discovered join:
/// record it in the schema knowledge for future walks.
pub fn confirm_chase(
    knowledge: &mut SchemaKnowledge,
    alternative: &ChaseAlternative,
    from_relation: &str,
    from_attr: &str,
) {
    knowledge.add_spec(alternative.discovered_spec(from_relation, from_attr));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::QueryGraph;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    /// The Section-2 chase setting: 002 occurs in SBPS.ID and in two
    /// attributes of XmasBazaar.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["002".into(), "202".into()])
                .row(vec!["001".into(), "201".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["201".into()])
                .row(vec!["202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("SBPS")
                .attr("ID", DataType::Str)
                .attr("time", DataType::Str)
                .row(vec!["002".into(), "8:15".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("XmasBazaar")
                .attr("seller", DataType::Str)
                .attr("buyer", DataType::Str)
                .row(vec!["002".into(), "001".into()])
                .row(vec!["001".into(), "002".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        let target =
            RelSchema::new("Kids", vec![Attribute::not_null("ID", DataType::Str)]).unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn figure_5_chase_of_002_finds_three_scenarios() {
        let database = db();
        let index = ValueIndex::build(&database);
        let alts = data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs(),
        )
        .unwrap();
        // SBPS.ID + XmasBazaar.seller + XmasBazaar.buyer = 3 scenarios;
        // occurrences inside Children/Parents are skipped (in the graph)
        assert_eq!(alts.len(), 3);
        let sites: Vec<(String, String)> = alts
            .iter()
            .map(|a| (a.relation.clone(), a.attribute.clone()))
            .collect();
        assert!(sites.contains(&("SBPS".into(), "ID".into())));
        assert!(sites.contains(&("XmasBazaar".into(), "seller".into())));
        assert!(sites.contains(&("XmasBazaar".into(), "buyer".into())));
    }

    #[test]
    fn chase_edges_are_equijoins_on_the_selected_attribute() {
        let database = db();
        let index = ValueIndex::build(&database);
        let alts = data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs(),
        )
        .unwrap();
        let sbps = alts.iter().find(|a| a.relation == "SBPS").unwrap();
        let g = &sbps.mapping.graph;
        let c = g.node_by_alias("Children").unwrap();
        let s = g.node_by_alias("SBPS").unwrap();
        assert_eq!(
            g.edge_between(c, s).unwrap().predicate.to_string(),
            "Children.ID = SBPS.ID"
        );
        assert_eq!(sbps.occurrence_count, 1);
    }

    #[test]
    fn chase_preserves_correspondences_and_filters() {
        let database = db();
        let index = ValueIndex::build(&database);
        let m = mapping().with_source_filter(parse_expr("Children.ID IS NOT NULL").unwrap());
        let alts = data_chase(
            &m,
            &database,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs(),
        )
        .unwrap();
        for a in &alts {
            assert_eq!(a.mapping.correspondences, m.correspondences);
            assert_eq!(a.mapping.source_filters, m.source_filters);
        }
    }

    #[test]
    fn chasing_a_value_with_no_external_occurrences() {
        let database = db();
        let index = ValueIndex::build(&database);
        let alts = data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "mid",
            &Value::str("202"),
            &funcs(),
        )
        .unwrap();
        // 202 only occurs in Children.mid and Parents.ID, both in-graph
        assert!(alts.is_empty());
    }

    #[test]
    fn chase_validates_inputs() {
        let database = db();
        let index = ValueIndex::build(&database);
        assert!(data_chase(
            &mapping(),
            &database,
            &index,
            "SBPS",
            "ID",
            &Value::str("002"),
            &funcs()
        )
        .is_err()); // start not in graph
        assert!(data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "nope",
            &Value::str("002"),
            &funcs()
        )
        .is_err()); // unknown attribute
        assert!(data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "ID",
            &Value::Null,
            &funcs()
        )
        .is_err()); // null value
    }

    #[test]
    fn confirm_chase_teaches_knowledge() {
        let database = db();
        let index = ValueIndex::build(&database);
        let alts = data_chase(
            &mapping(),
            &database,
            &index,
            "Children",
            "ID",
            &Value::str("002"),
            &funcs(),
        )
        .unwrap();
        let sbps = alts.iter().find(|a| a.relation == "SBPS").unwrap();
        let mut knowledge = SchemaKnowledge::new();
        confirm_chase(&mut knowledge, sbps, "Children", "ID");
        assert_eq!(knowledge.specs_between("Children", "SBPS").len(), 1);
        assert_eq!(knowledge.specs()[0].provenance, Provenance::UserAsserted);
    }
}
