//! The data walk operator (paper Sec 5.1).
//!
//! `DataWalk(M, Q, R)` extends a mapping's query graph with every way
//! Clio's schema knowledge can connect node `Q` (already in the graph) to
//! relation `R` (not yet in the graph), producing one alternative mapping
//! per walk. A walk is a path `Q — x₁ — … — R`; when a path step would
//! traverse two nodes already in the graph, its edge label must match the
//! existing edge — otherwise a fresh **copy** of the relation is
//! introduced (the paper's `Parents2` in Figure 11).

use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;

use crate::knowledge::{PathStep, SchemaKnowledge};
use crate::mapping::Mapping;
use crate::query_graph::{Node, NodeId, QueryGraph};

/// One alternative produced by a data walk.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkAlternative {
    /// The extended mapping `M_a = ⟨G ∪ G', V, C_S, C_T⟩`.
    pub mapping: Mapping,
    /// Number of path steps in `G'`.
    pub path_len: usize,
    /// Aliases of nodes added by the walk (last one is the end relation).
    pub new_nodes: Vec<String>,
    /// Human-readable rendering of the walk path.
    pub description: String,
}

/// Run `DataWalk(M, Q, R)`.
///
/// * `start_alias` — alias of the start node `Q` in `M`'s graph;
/// * `end_relation` — the relation `R ∉ N` to reach;
/// * `max_steps` — bound on path length searched in the knowledge graph.
///
/// Alternatives are ranked shortest-path first, then by least perturbation
/// (fewest new nodes), mirroring the paper's "simple heuristics related to
/// path length, least perturbation to the current active mapping".
pub fn data_walk(
    mapping: &Mapping,
    db: &Database,
    knowledge: &SchemaKnowledge,
    start_alias: &str,
    end_relation: &str,
    max_steps: usize,
    funcs: &FuncRegistry,
) -> Result<Vec<WalkAlternative>> {
    let _span = clio_obs::span("op.walk");
    let start = mapping
        .graph
        .node_by_alias(start_alias)
        .ok_or_else(|| Error::Invalid(format!("start node `{start_alias}` not in graph")))?;
    db.relation(end_relation)?;
    if !mapping.graph.nodes_of_relation(end_relation).is_empty() {
        return Err(Error::Invalid(format!(
            "data walk requires end relation `{end_relation}` to be outside the graph; \
             it is already referenced"
        )));
    }

    let start_rel = mapping.graph.nodes()[start].relation.clone();
    let mut alternatives: Vec<WalkAlternative> = Vec::new();
    let mut pruned: u64 = 0;

    for path in knowledge.paths(&start_rel, end_relation, max_steps) {
        let mut results: Vec<(QueryGraph, NodeId, Vec<String>, Vec<String>)> = vec![(
            mapping.graph.clone(),
            start,
            Vec::new(),
            vec![start_alias.to_owned()],
        )];
        for step in &path {
            results = extend_step(results, step)?;
        }
        for (graph, _, new_nodes, trail) in results {
            graph.validate(db, funcs)?;
            let mut m = mapping.clone();
            m.graph = graph;
            let alt = WalkAlternative {
                mapping: m,
                path_len: path.len(),
                new_nodes,
                description: trail.join(" -- "),
            };
            if !alternatives
                .iter()
                .any(|a| a.mapping.graph == alt.mapping.graph)
            {
                alternatives.push(alt);
            } else {
                pruned += 1;
            }
        }
    }

    alternatives.sort_by_key(|a| (a.path_len, a.new_nodes.len()));
    metrics::add(
        Counter::WalkAlternativesGenerated,
        alternatives.len() as u64,
    );
    metrics::add(Counter::WalkAlternativesPruned, pruned);
    Ok(alternatives)
}

/// Advance every partial extension by one path step, branching over the
/// admissible targets (matching existing nodes, or a fresh copy when no
/// existing node is admissible).
#[allow(clippy::type_complexity)]
fn extend_step(
    partials: Vec<(QueryGraph, NodeId, Vec<String>, Vec<String>)>,
    step: &PathStep,
) -> Result<Vec<(QueryGraph, NodeId, Vec<String>, Vec<String>)>> {
    let mut out = Vec::new();
    for (graph, current, new_nodes, trail) in partials {
        let current_alias = graph.nodes()[current].alias.clone();
        let current_is_new = new_nodes.contains(&current_alias);
        let mut extended_any = false;

        // try to reuse existing nodes of the step's target relation
        for n in graph.nodes_of_relation(&step.to) {
            if n == current {
                continue;
            }
            let n_alias = graph.nodes()[n].alias.clone();
            let n_is_new = new_nodes.contains(&n_alias);
            let pred = step
                .spec
                .instantiate_from(&step.from, &current_alias, &n_alias);
            if current_is_new || n_is_new {
                // at least one endpoint is new: a fresh edge is allowed
                if graph.edge_between(current, n).is_none() {
                    let mut g = graph.clone();
                    g.add_edge(current, n, pred.clone())?;
                    let mut t = trail.clone();
                    t.push(format!("[{pred}] {n_alias}"));
                    out.push((g, n, new_nodes.clone(), t));
                    extended_any = true;
                }
            } else {
                // both endpoints pre-existing: the edge must already exist
                // with exactly this label (paper's walk condition)
                if let Some(e) = graph.edge_between(current, n) {
                    if e.predicate == pred {
                        let mut t = trail.clone();
                        t.push(format!("[{pred}] {n_alias} (existing)"));
                        out.push((graph.clone(), n, new_nodes.clone(), t));
                        extended_any = true;
                    }
                }
            }
        }

        // no admissible reuse: introduce a fresh copy of the relation
        if !extended_any {
            let alias = graph.fresh_alias(&step.to);
            let mut g = graph.clone();
            let node = if alias == step.to {
                Node::new(alias.clone())
            } else {
                Node::copy_of(alias.clone(), step.to.clone())
            };
            let id = g.add_node(node)?;
            let pred = step
                .spec
                .instantiate_from(&step.from, &current_alias, &alias);
            g.add_edge(current, id, pred.clone())?;
            let mut nn = new_nodes.clone();
            nn.push(alias.clone());
            let mut t = trail.clone();
            t.push(format!("[{pred}] {alias}"));
            out.push((g, id, nn, t));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::knowledge::{JoinSpec, Provenance};
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, attrs) in [
            ("Children", vec!["ID", "mid", "fid"]),
            ("Parents", vec!["ID", "affiliation"]),
            ("PhoneDir", vec!["ID", "number"]),
            ("SBPS", vec!["ID", "time"]),
        ] {
            let mut b = RelationBuilder::new(name);
            for a in attrs {
                b = b.attr(a, DataType::Str);
            }
            db.add_relation(b.build().unwrap()).unwrap();
        }
        db
    }

    fn knowledge() -> SchemaKnowledge {
        let mut k = SchemaKnowledge::new();
        k.add_spec(JoinSpec::simple(
            "Children",
            "mid",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple(
            "Children",
            "fid",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple(
            "PhoneDir",
            "ID",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k
    }

    fn target() -> RelSchema {
        RelSchema::new("Kids", vec![Attribute::not_null("ID", DataType::Str)]).unwrap()
    }

    /// `G1` of Figure 11: Children — Parents via **fid**.
    fn mapping_g1() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.fid = Parents.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn figure_11_walk_children_to_phonedir() {
        let alts = data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "PhoneDir",
            3,
            &funcs(),
        )
        .unwrap();
        // two 2-step walks: via existing Parents (fid matches) and via a
        // fresh copy Parents2 (mid conflicts with existing fid edge)
        assert_eq!(alts.len(), 2);

        let via_existing = alts
            .iter()
            .find(|a| a.new_nodes == vec!["PhoneDir".to_owned()])
            .expect("walk reusing Parents");
        assert_eq!(via_existing.mapping.graph.node_count(), 3);
        assert!(via_existing.description.contains("(existing)"));

        let via_copy = alts
            .iter()
            .find(|a| a.new_nodes.contains(&"Parents2".to_owned()))
            .expect("walk via Parents2 copy");
        assert_eq!(via_copy.mapping.graph.node_count(), 4);
        let g = &via_copy.mapping.graph;
        let p2 = g.node_by_alias("Parents2").unwrap();
        let c = g.node_by_alias("Children").unwrap();
        assert_eq!(
            g.edge_between(c, p2).unwrap().predicate.to_string(),
            "Children.mid = Parents2.ID"
        );
    }

    #[test]
    fn walk_inherits_correspondences_and_filters() {
        let m = mapping_g1().with_source_filter(parse_expr("Children.ID IS NOT NULL").unwrap());
        let alts = data_walk(&m, &db(), &knowledge(), "Children", "PhoneDir", 3, &funcs()).unwrap();
        for a in &alts {
            assert_eq!(a.mapping.correspondences, m.correspondences);
            assert_eq!(a.mapping.source_filters, m.source_filters);
        }
    }

    #[test]
    fn walk_from_parents_reuses_single_step() {
        let alts = data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Parents",
            "PhoneDir",
            3,
            &funcs(),
        )
        .unwrap();
        // one-step walk Parents → PhoneDir
        assert_eq!(alts[0].path_len, 1);
        assert_eq!(alts[0].new_nodes, vec!["PhoneDir".to_owned()]);
    }

    #[test]
    fn walk_to_unreachable_relation_is_empty() {
        let alts = data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "SBPS",
            3,
            &funcs(),
        )
        .unwrap();
        assert!(alts.is_empty());
    }

    #[test]
    fn walk_rejects_end_relation_already_in_graph() {
        assert!(data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "Parents",
            3,
            &funcs()
        )
        .is_err());
    }

    #[test]
    fn walk_rejects_unknown_start_or_end() {
        assert!(data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "SBPS",
            "PhoneDir",
            3,
            &funcs()
        )
        .is_err());
        assert!(data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "Nope",
            3,
            &funcs()
        )
        .is_err());
    }

    #[test]
    fn alternatives_ranked_by_path_length_then_perturbation() {
        let alts = data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "PhoneDir",
            4,
            &funcs(),
        )
        .unwrap();
        let keys: Vec<(usize, usize)> = alts
            .iter()
            .map(|a| (a.path_len, a.new_nodes.len()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn max_steps_zero_yields_nothing() {
        let alts = data_walk(
            &mapping_g1(),
            &db(),
            &knowledge(),
            "Children",
            "PhoneDir",
            0,
            &funcs(),
        )
        .unwrap();
        assert!(alts.is_empty());
    }
}
