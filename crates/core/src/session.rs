//! Clio's mapping framework: workspaces, the active mapping, alternative
//! management, and the WYSIWYG target view (paper Sec 6).
//!
//! A [`Session`] owns the source database, the target schema, the schema
//! knowledge and value index, and a set of [`Workspace`]s — one per
//! mapping alternative, each with a synchronized illustration. When a
//! data walk or chase produces several alternatives, new workspaces are
//! created (ranked most-likely first, the first becoming active) and the
//! workspace they replace is discarded; `confirm` keeps one alternative
//! and deletes its siblings. Multiple mappings can be *accepted* for one
//! target (paper Example 6.1 — complementary filters for motherless
//! children); the target view is the union of all accepted mappings plus
//! the active one.

use std::sync::Arc;

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;
use clio_relational::index::ValueIndex;
use clio_relational::parser::parse_expr;
use clio_relational::schema::RelSchema;
use clio_relational::table::Table;
use clio_relational::value::Value;

use clio_incr::EvalCache;

use crate::correspondence::ValueCorrespondence;
use crate::evolution::evolve_illustration_cached;
use crate::illustration::Illustration;
use crate::knowledge::SchemaKnowledge;
use crate::mapping::Mapping;
use crate::operators::chase::{confirm_chase, data_chase};
use crate::operators::correspondence_ops::{add_correspondence, AddOutcome};
use crate::operators::walk::data_walk;
use crate::query_graph::{Node, QueryGraph};

/// One mapping alternative plus its illustration.
#[derive(Debug, Clone, PartialEq)]
pub struct Workspace {
    /// Stable identifier.
    pub id: usize,
    /// The workspace's mapping.
    pub mapping: Mapping,
    /// The synchronized illustration.
    pub illustration: Illustration,
    /// Alternatives created by one operation share a generation tag;
    /// `confirm` deletes same-generation siblings.
    pub generation: usize,
    /// Human-readable description of how this alternative arose.
    pub description: String,
    /// Graph state before the last data-linking operation (used to roll
    /// back when a second correspondence spawns an alternative mapping —
    /// paper Example 6.2).
    pub graph_before_last_link: Option<QueryGraph>,
}

/// A Clio mapping session.
///
/// The source database and value index are held behind [`Arc`]s, so
/// sessions spawned from one snapshot (see `SessionPool`) share them
/// without copying. [`Session::replace_relation`] — the only mutation
/// path — goes through [`Arc::make_mut`], i.e. copy-on-write: the first
/// edit in a sharing session materializes a private copy, and sibling
/// sessions keep observing the original snapshot
/// (`docs/concurrency.md`).
#[derive(Debug, Clone)]
pub struct Session {
    db: Arc<Database>,
    funcs: FuncRegistry,
    /// Schema knowledge driving data walks (seeded from foreign keys,
    /// extended by confirmed chases).
    pub knowledge: SchemaKnowledge,
    index: Arc<ValueIndex>,
    target: RelSchema,
    workspaces: Vec<Workspace>,
    active: Option<usize>,
    accepted: Vec<Mapping>,
    next_id: usize,
    generation: usize,
    /// Maximum path length searched by data walks.
    pub walk_max_steps: usize,
    /// Memoized evaluation results (`F(J)`, `D(G)`, mapping queries),
    /// invalidated by relation edits and function-registry changes.
    cache: EvalCache,
    /// Route mapping evaluation through the planner (off by default).
    plan_enabled: bool,
}

impl Session {
    /// Start a session over a source database and a target relation
    /// schema. Knowledge is seeded from the database's foreign keys; the
    /// value index is built eagerly.
    #[must_use]
    pub fn new(db: Database, target: RelSchema) -> Session {
        Session::shared(Arc::new(db), target)
    }

    /// Start a session over an `Arc`-shared source snapshot without
    /// copying it. Knowledge and the value index are still derived
    /// eagerly — except over a paged database that ships a persisted
    /// index (`_index.clh`), which is loaded instead of rebuilt so
    /// opening a session does not scan every relation. Use
    /// [`Session::from_parts`] to share pre-built parts directly.
    #[must_use]
    pub fn shared(db: Arc<Database>, target: RelSchema) -> Session {
        let knowledge = SchemaKnowledge::from_database(&db);
        let index = db
            .stored_index()
            .unwrap_or_else(|| Arc::new(ValueIndex::build(&db)));
        Session::from_parts(db, index, knowledge, target)
    }

    /// Assemble a session from pre-built shared parts. This is the cheap
    /// constructor `SessionPool` uses to spawn sessions: the database,
    /// value index, and seed knowledge are computed once per pool and
    /// shared by every session (the knowledge is cloned — sessions
    /// extend it independently via confirmed chases). Each session still
    /// gets its own function registry, workspaces, and [`EvalCache`].
    ///
    /// The caller is responsible for `index` and `knowledge` actually
    /// matching `db`; mismatched parts produce wrong walk/chase results,
    /// not errors.
    #[must_use]
    pub fn from_parts(
        db: Arc<Database>,
        index: Arc<ValueIndex>,
        knowledge: SchemaKnowledge,
        target: RelSchema,
    ) -> Session {
        Session {
            knowledge,
            index,
            db,
            funcs: FuncRegistry::with_builtins(),
            target,
            workspaces: Vec::new(),
            active: None,
            accepted: Vec::new(),
            next_id: 0,
            generation: 0,
            walk_max_steps: 4,
            cache: EvalCache::new(),
            plan_enabled: false,
        }
    }

    /// The source database.
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The target relation schema this session maps into.
    #[must_use]
    pub fn target_schema(&self) -> &RelSchema {
        &self.target
    }

    /// The source database as a shareable snapshot handle. Cloning the
    /// returned `Arc` is O(1); the snapshot stays valid even if this
    /// session later edits its database (the edit copies first).
    #[must_use]
    pub fn shared_database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The function registry (register custom correspondence functions
    /// here before adding correspondences that use them). Taking the
    /// mutable registry conservatively invalidates the whole evaluation
    /// cache — a redefined function can change any cached result.
    pub fn funcs_mut(&mut self) -> &mut FuncRegistry {
        self.cache.bump_epoch();
        &mut self.funcs
    }

    /// The session's incremental evaluation cache (for statistics and
    /// benchmarks; see `docs/incremental.md`).
    #[must_use]
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Turn the incremental cache on or off (on by default). Disabling
    /// routes every operator through the plain evaluation paths; output
    /// is byte-identical either way.
    pub fn set_cache_enabled(&mut self, on: bool) {
        self.cache.set_enabled(on);
    }

    /// Route mapping evaluation through the planner (off by default):
    /// builds a [`crate::plan::Plan`] per evaluation, applying the
    /// filter-pushdown and subgraph-ordering rewrites. Output is
    /// byte-identical to the definitional path either way.
    pub fn set_plan_enabled(&mut self, on: bool) {
        self.plan_enabled = on;
    }

    /// Is plan-based evaluation on?
    #[must_use]
    pub fn plan_enabled(&self) -> bool {
        self.plan_enabled
    }

    /// Evaluate a mapping the way this session is configured to —
    /// through the planner when [`Session::set_plan_enabled`] is on,
    /// the definitional cached path otherwise.
    pub fn evaluate_mapping(&self, mapping: &Mapping) -> Result<Table> {
        if self.plan_enabled {
            mapping.evaluate_planned_cached(&self.db, &self.funcs, Some(&self.cache))
        } else {
            mapping.evaluate_cached(&self.db, &self.funcs, Some(&self.cache))
        }
    }

    /// The planner's `explain` tree for the active workspace's mapping.
    pub fn explain_active(&self) -> Result<String> {
        let w = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?;
        let plan = crate::plan::Plan::new(&w.mapping, &self.db, &self.funcs, Some(&self.cache))?;
        Ok(plan.explain())
    }

    /// Choose how the cache evicts under byte-budget pressure (the
    /// CLI's `--cache-policy`; cost-aware by default). Answer-invisible:
    /// the policy only decides what stays resident.
    pub fn set_cache_policy(&mut self, policy: clio_incr::EvictionPolicy) {
        self.cache.set_policy(policy);
    }

    /// Attach a persistent second-tier cache backend (e.g. a
    /// [`clio_incr::DiskStore`] over the CLI's `--cache-dir`): eligible
    /// cache insertions spill to it, and lookups that miss in memory
    /// consult it before recomputing. Output stays byte-identical with
    /// or without a store — only the work to produce it changes.
    pub fn attach_store(&mut self, store: Arc<dyn clio_incr::CacheStore>) {
        self.cache.set_store(Some(store));
    }

    /// Replace the contents of one base relation (a content edit — the
    /// schema must stay identical, so every mapping stays valid). The
    /// value index is rebuilt, dependent cache entries are invalidated,
    /// and each workspace's illustration is *evolved* over the new data
    /// (paper Sec 5.3 continuity, applied to data instead of graph
    /// changes): familiar examples that survive the edit are retained,
    /// sufficiency is repaired by adding examples.
    pub fn replace_relation(&mut self, rel: clio_relational::relation::Relation) -> Result<()> {
        let name = rel.name().to_owned();
        let old_schema = self.db.relation(&name)?.schema();
        if old_schema != rel.schema() {
            return Err(Error::Invalid(format!(
                "replace_relation only supports content edits; \
                 the schema of `{name}` changed"
            )));
        }
        // Copy-on-write: if the snapshot is shared with other sessions,
        // clone it first; they keep seeing the pre-edit data.
        Arc::make_mut(&mut self.db).replace_relation(rel)?;
        self.index = Arc::new(ValueIndex::build(&self.db));
        self.cache.bump_version(&name);
        let ids: Vec<usize> = self.workspaces.iter().map(|w| w.id).collect();
        for id in ids {
            let w = self
                .workspaces
                .iter()
                .find(|w| w.id == id)
                .expect("workspace ids are stable within this loop")
                .clone();
            let evo = evolve_illustration_cached(
                &w.illustration,
                &w.mapping,
                &w.mapping,
                &self.db,
                &self.funcs,
                Some(&self.cache),
            )?;
            let ws = self
                .workspaces
                .iter_mut()
                .find(|w| w.id == id)
                .expect("workspace ids are stable within this loop");
            ws.illustration = evo.illustration;
        }
        Ok(())
    }

    /// All workspaces.
    #[must_use]
    pub fn workspaces(&self) -> &[Workspace] {
        &self.workspaces
    }

    /// The active workspace, if any.
    #[must_use]
    pub fn active(&self) -> Option<&Workspace> {
        self.active
            .and_then(|id| self.workspaces.iter().find(|w| w.id == id))
    }

    fn active_mut(&mut self) -> Result<&mut Workspace> {
        let id = self
            .active
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?;
        self.workspaces
            .iter_mut()
            .find(|w| w.id == id)
            .ok_or_else(|| Error::Invalid("active workspace vanished".into()))
    }

    /// Mappings accepted so far.
    #[must_use]
    pub fn accepted(&self) -> &[Mapping] {
        &self.accepted
    }

    /// Make workspace `id` active.
    pub fn activate(&mut self, id: usize) -> Result<()> {
        if self.workspaces.iter().any(|w| w.id == id) {
            self.active = Some(id);
            Ok(())
        } else {
            Err(Error::Invalid(format!("no workspace {id}")))
        }
    }

    /// Delete a workspace (rejecting an alternative).
    pub fn delete(&mut self, id: usize) -> Result<()> {
        let before = self.workspaces.len();
        self.workspaces.retain(|w| w.id != id);
        if self.workspaces.len() == before {
            return Err(Error::Invalid(format!("no workspace {id}")));
        }
        if self.active == Some(id) {
            self.active = self.workspaces.first().map(|w| w.id);
        }
        Ok(())
    }

    /// Confirm workspace `id` as the correct alternative (so far): its
    /// same-generation siblings are deleted and it becomes active.
    pub fn confirm(&mut self, id: usize) -> Result<()> {
        let generation = self
            .workspaces
            .iter()
            .find(|w| w.id == id)
            .ok_or_else(|| Error::Invalid(format!("no workspace {id}")))?
            .generation;
        self.workspaces
            .retain(|w| w.id == id || w.generation != generation);
        self.active = Some(id);
        Ok(())
    }

    /// Accept the active workspace's mapping as (part of) the target
    /// mapping. Several mappings may be accepted for one target (paper
    /// Example 6.1).
    pub fn accept_active(&mut self) -> Result<()> {
        let mapping = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?
            .mapping
            .clone();
        mapping.validate(&self.db, &self.funcs)?;
        self.accepted.push(mapping);
        Ok(())
    }

    fn push_workspace(
        &mut self,
        mapping: Mapping,
        description: String,
        generation: usize,
        graph_before_last_link: Option<QueryGraph>,
    ) -> Result<usize> {
        let illustration = self.illustrate(&mapping)?;
        let id = self.next_id;
        self.next_id += 1;
        self.workspaces.push(Workspace {
            id,
            mapping,
            illustration,
            generation,
            description,
            graph_before_last_link,
        });
        Ok(id)
    }

    fn illustrate(&self, mapping: &Mapping) -> Result<Illustration> {
        let population = mapping.examples_cached(&self.db, &self.funcs, Some(&self.cache))?;
        Ok(Illustration::minimal_sufficient(
            &population,
            mapping.target.arity(),
        ))
    }

    /// Add a value correspondence (text form: `"Children.ID"`,
    /// `"Parents.salary + Parents2.salary"`). Behaviour follows the paper:
    ///
    /// * no workspace yet → a workspace is created whose graph holds the
    ///   single source relation the expression references;
    /// * all referenced relations already in the active graph → the
    ///   mapping is extended (or an alternative is spawned when the target
    ///   attribute is already mapped — Example 6.2);
    /// * exactly one referenced relation missing → Clio runs a data walk
    ///   to it and creates one alternative workspace per way of linking it
    ///   (the Figure 3 / Figure 4 scenarios), each with the new
    ///   correspondence in place. Returns the new workspace ids.
    pub fn add_correspondence(&mut self, expr: &str, target_attr: &str) -> Result<Vec<usize>> {
        let v = ValueCorrespondence::new(parse_expr(expr)?, target_attr);
        self.target.index_of(target_attr)?;

        // bootstrap: no workspace yet
        if self.active.is_none() {
            let quals = v.source_qualifiers();
            let [rel] = quals.as_slice() else {
                return Err(Error::Invalid(
                    "the first correspondence must reference exactly one source relation".into(),
                ));
            };
            let rel = (*rel).to_owned();
            self.db.relation(&rel)?;
            let mut graph = QueryGraph::new();
            graph.add_node(Node::new(rel.clone()))?;
            let mapping = Mapping::new(graph, self.target.clone())
                .with_correspondence(v)
                .with_target_not_null_filters();
            mapping.validate(&self.db, &self.funcs)?;
            let id = self.push_workspace(mapping, format!("start from {rel}"), 0, None)?;
            self.active = Some(id);
            return Ok(vec![id]);
        }

        let active = self.active().expect("checked above").clone();
        let graph = &active.mapping.graph;
        let missing: Vec<String> = v
            .source_qualifiers()
            .iter()
            .filter(|q| graph.node_by_alias(q).is_none())
            .map(|q| (*q).to_owned())
            .collect();

        match missing.as_slice() {
            [] => {
                // everything bound: extend or spawn an alternative
                let base = active.graph_before_last_link.clone();
                match add_correspondence(&active.mapping, v, base.as_ref()) {
                    AddOutcome::Extended(m) => {
                        m.validate(&self.db, &self.funcs)?;
                        let illustration = self.illustrate(&m)?;
                        let ws = self.active_mut()?;
                        ws.mapping = m;
                        ws.illustration = illustration;
                        Ok(vec![ws.id])
                    }
                    AddOutcome::NewAlternative { alternative, .. } => {
                        alternative.validate(&self.db, &self.funcs)?;
                        self.generation += 1;
                        let generation = self.generation;
                        let id = self.push_workspace(
                            alternative,
                            format!("alternative computation of {target_attr}"),
                            generation,
                            None,
                        )?;
                        Ok(vec![id])
                    }
                }
            }
            [rel] => {
                // one missing relation: walk to it from every graph node,
                // creating one workspace per alternative (Figure 3 flow)
                let rel = rel.clone();
                let ids = self.walk_internal(&active, &rel, Some(v))?;
                Ok(ids)
            }
            more => Err(Error::Invalid(format!(
                "correspondence references {} relations missing from the graph ({}); \
                 link them one at a time",
                more.len(),
                more.join(", ")
            ))),
        }
    }

    /// Run a data walk from `start_alias` (or from every node when `None`)
    /// to `end_relation`. Creates one workspace per alternative (evolved
    /// illustrations, continuity preserved); the best-ranked becomes
    /// active; the originating workspace is discarded (paper Sec 6.1).
    /// Returns the new workspace ids, ranked.
    pub fn data_walk(
        &mut self,
        start_alias: Option<&str>,
        end_relation: &str,
    ) -> Result<Vec<usize>> {
        let active = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?
            .clone();
        let mut patched = active.clone();
        if let Some(s) = start_alias {
            // restrict walks to those starting at the given node by
            // filtering afterwards; data_walk already takes a start
            let alternatives = data_walk(
                &patched.mapping,
                &self.db,
                &self.knowledge,
                s,
                end_relation,
                self.walk_max_steps,
                &self.funcs,
            )?;
            return self.install_walk_alternatives(&active, alternatives, None);
        }
        // walk from every node, merging alternatives
        let mut all = Vec::new();
        let aliases: Vec<String> = patched
            .mapping
            .graph
            .nodes()
            .iter()
            .map(|n| n.alias.clone())
            .collect();
        for alias in aliases {
            let mut alts = data_walk(
                &patched.mapping,
                &self.db,
                &self.knowledge,
                &alias,
                end_relation,
                self.walk_max_steps,
                &self.funcs,
            )?;
            all.append(&mut alts);
        }
        all.sort_by_key(|a| (a.path_len, a.new_nodes.len()));
        all.dedup_by(|a, b| a.mapping.graph == b.mapping.graph);
        patched.mapping = active.mapping.clone();
        self.install_walk_alternatives(&active, all, None)
    }

    fn walk_internal(
        &mut self,
        active: &Workspace,
        end_relation: &str,
        correspondence: Option<ValueCorrespondence>,
    ) -> Result<Vec<usize>> {
        let mut all = Vec::new();
        let aliases: Vec<String> = active
            .mapping
            .graph
            .nodes()
            .iter()
            .map(|n| n.alias.clone())
            .collect();
        for alias in aliases {
            let mut alts = data_walk(
                &active.mapping,
                &self.db,
                &self.knowledge,
                &alias,
                end_relation,
                self.walk_max_steps,
                &self.funcs,
            )?;
            all.append(&mut alts);
        }
        all.sort_by_key(|a| (a.path_len, a.new_nodes.len()));
        all.dedup_by(|a, b| a.mapping.graph == b.mapping.graph);
        self.install_walk_alternatives(active, all, correspondence)
    }

    fn install_walk_alternatives(
        &mut self,
        origin: &Workspace,
        alternatives: Vec<crate::operators::walk::WalkAlternative>,
        correspondence: Option<ValueCorrespondence>,
    ) -> Result<Vec<usize>> {
        if alternatives.is_empty() {
            return Err(Error::Invalid(
                "no way to link the requested relation was found; \
                 try a data chase to discover one"
                    .into(),
            ));
        }
        self.generation += 1;
        let generation = self.generation;
        let mut ids = Vec::new();
        for alt in alternatives {
            let mut m = alt.mapping;
            if let Some(v) = &correspondence {
                m.set_correspondence(v.clone());
            }
            m.validate(&self.db, &self.funcs)?;
            // continuity: evolve the origin's illustration
            let evo = evolve_illustration_cached(
                &origin.illustration,
                &origin.mapping,
                &m,
                &self.db,
                &self.funcs,
                Some(&self.cache),
            )?;
            let id = self.next_id;
            self.next_id += 1;
            self.workspaces.push(Workspace {
                id,
                mapping: m,
                illustration: evo.illustration,
                generation,
                description: alt.description,
                graph_before_last_link: Some(origin.mapping.graph.clone()),
            });
            ids.push(id);
        }
        // discard the originating workspace, activate the best alternative
        self.workspaces.retain(|w| w.id != origin.id);
        self.active = Some(ids[0]);
        Ok(ids)
    }

    /// Run a data chase from `alias.attr` on `value`. Creates one
    /// workspace per occurrence site (paper Fig 5). Returns the ids.
    pub fn data_chase(&mut self, alias: &str, attr: &str, value: &Value) -> Result<Vec<usize>> {
        let active = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?
            .clone();
        let alternatives = data_chase(
            &active.mapping,
            &self.db,
            &self.index,
            alias,
            attr,
            value,
            &self.funcs,
        )?;
        if alternatives.is_empty() {
            return Err(Error::Invalid(format!(
                "value `{value}` does not occur outside the current mapping"
            )));
        }
        self.generation += 1;
        let generation = self.generation;
        let mut ids = Vec::new();
        for alt in &alternatives {
            let evo = evolve_illustration_cached(
                &active.illustration,
                &active.mapping,
                &alt.mapping,
                &self.db,
                &self.funcs,
                Some(&self.cache),
            )?;
            let id = self.next_id;
            self.next_id += 1;
            self.workspaces.push(Workspace {
                id,
                mapping: alt.mapping.clone(),
                illustration: evo.illustration,
                generation,
                description: alt.description.clone(),
                graph_before_last_link: Some(active.mapping.graph.clone()),
            });
            ids.push(id);
        }
        self.workspaces.retain(|w| w.id != active.id);
        self.active = Some(ids[0]);

        // confirming a chase later (via `confirm`) should teach the
        // knowledge base; record the discovered specs now so walks can
        // use them once the user confirms
        let start_rel = active
            .mapping
            .graph
            .node_by_alias(alias)
            .map(|i| active.mapping.graph.nodes()[i].relation.clone())
            .unwrap_or_else(|| alias.to_owned());
        for alt in &alternatives {
            confirm_chase(&mut self.knowledge, alt, &start_rel, attr);
        }
        Ok(ids)
    }

    /// Adopt an externally-built mapping (e.g. loaded from a mapping
    /// script) as a new workspace and make it active. The mapping is
    /// validated and its target schema must match the session's.
    pub fn adopt_mapping(&mut self, mapping: Mapping, description: &str) -> Result<usize> {
        if mapping.target != self.target {
            return Err(Error::Invalid(format!(
                "mapping targets `{}`, session targets `{}`",
                mapping.target.name(),
                self.target.name()
            )));
        }
        mapping.validate(&self.db, &self.funcs)?;
        let id = self.push_workspace(mapping, description.to_owned(), self.generation, None)?;
        self.active = Some(id);
        Ok(id)
    }

    /// Mark a target attribute as required on the active mapping
    /// (`Target.attr IS NOT NULL` — the paper's inner-join refinement).
    pub fn require_target_attribute(&mut self, attr: &str) -> Result<()> {
        self.target.index_of(attr)?;
        let m = crate::operators::trim::require_target_attribute(
            &self
                .active()
                .ok_or_else(|| Error::Invalid("no active workspace".into()))?
                .mapping,
            attr,
        );
        m.validate(&self.db, &self.funcs)?;
        let illustration = self.illustrate(&m)?;
        let ws = self.active_mut()?;
        ws.mapping = m;
        ws.illustration = illustration;
        Ok(())
    }

    /// Add a source filter (text) to the active mapping.
    pub fn add_source_filter(&mut self, filter: &str) -> Result<()> {
        let m = crate::operators::trim::add_source_filter(
            &self
                .active()
                .ok_or_else(|| Error::Invalid("no active workspace".into()))?
                .mapping,
            filter,
        )?;
        m.validate(&self.db, &self.funcs)?;
        let illustration = self.illustrate(&m)?;
        let ws = self.active_mut()?;
        ws.mapping = m;
        ws.illustration = illustration;
        Ok(())
    }

    /// Add a target filter (text) to the active mapping.
    pub fn add_target_filter(&mut self, filter: &str) -> Result<()> {
        let m = crate::operators::trim::add_target_filter(
            &self
                .active()
                .ok_or_else(|| Error::Invalid("no active workspace".into()))?
                .mapping,
            filter,
        )?;
        m.validate(&self.db, &self.funcs)?;
        let illustration = self.illustrate(&m)?;
        let ws = self.active_mut()?;
        ws.mapping = m;
        ws.illustration = illustration;
        Ok(())
    }

    /// Alternative examples that could replace slot `slot` of the active
    /// workspace's illustration without losing sufficiency (paper Sec 2:
    /// the user may ask "for different example tuples").
    pub fn example_alternatives(&self, slot: usize) -> Result<Vec<crate::example::Example>> {
        let w = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?;
        let population = w
            .mapping
            .examples_cached(&self.db, &self.funcs, Some(&self.cache))?;
        Ok(w.illustration.alternatives_for(
            slot,
            &population,
            w.mapping.target.arity(),
            crate::illustration::SufficiencyScope::mapping(),
        ))
    }

    /// Swap illustration slot `slot` of the active workspace for the
    /// `alt`-th alternative from [`Session::example_alternatives`].
    pub fn swap_example(&mut self, slot: usize, alt: usize) -> Result<()> {
        let alternatives = self.example_alternatives(slot)?;
        let replacement = alternatives
            .get(alt)
            .ok_or_else(|| {
                Error::Invalid(format!(
                    "no alternative {alt} for slot {slot} ({} available)",
                    alternatives.len()
                ))
            })?
            .clone();
        let w = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?;
        let population = w
            .mapping
            .examples_cached(&self.db, &self.funcs, Some(&self.cache))?;
        let arity = w.mapping.target.arity();
        let ws = self.active_mut()?;
        let ok = ws.illustration.swap(
            slot,
            replacement,
            &population,
            arity,
            crate::illustration::SufficiencyScope::mapping(),
        );
        if ok {
            Ok(())
        } else {
            Err(Error::Invalid("swap would break sufficiency".into()))
        }
    }

    /// Run data-driven verification on the active mapping (see
    /// [`verify_mapping`](crate::verify::verify_mapping)). `target_keys`
    /// lists candidate keys of the target to check for merge conflicts;
    /// pass an empty slice to skip key checking.
    pub fn verify_active(
        &self,
        target_keys: &[Vec<String>],
    ) -> Result<Vec<crate::verify::Finding>> {
        let w = self
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace".into()))?;
        crate::verify::verify_mapping(&w.mapping, &self.db, &self.funcs, target_keys)
    }

    /// The accepted mappings as a [`TargetMapping`](crate::target_mapping::TargetMapping)
    /// for union / merge evaluation and contribution reports.
    #[must_use]
    pub fn target_mapping(&self) -> crate::target_mapping::TargetMapping {
        let mut tm = crate::target_mapping::TargetMapping::new(self.target.clone());
        for m in &self.accepted {
            tm.accept(m.clone())
                .expect("accepted mappings share the session target");
        }
        tm
    }

    /// The WYSIWYG target view: the minimum union of all accepted
    /// mappings' query results plus the active mapping's (paper Sec 6.1:
    /// "the target view always shows the contents of the target as they
    /// would be under the \[active\] mapping"). Minimum-union semantics
    /// (Def 3.9): a tuple another mapping strictly extends is merged into
    /// the more complete one.
    pub fn target_preview(&self) -> Result<Table> {
        let mut out = Table::empty(clio_relational::schema::Scheme::of_relation(
            &self.target,
            self.target.name(),
        ));
        let mut mappings: Vec<&Mapping> = self.accepted.iter().collect();
        if let Some(w) = self.active() {
            mappings.push(&w.mapping);
        }
        for m in mappings {
            for row in self.evaluate_mapping(m)?.into_rows() {
                out.push_distinct(row);
            }
        }
        clio_relational::ops::remove_subsumed(
            &mut out,
            crate::full_disjunction::engine_subsumption(),
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::constraints::ForeignKey;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::Attribute;
    use clio_relational::value::DataType;

    /// Source database with the Figure-1 shape (trimmed) and FKs.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("name", DataType::Str)
                .attr("mid", DataType::Str)
                .attr("fid", DataType::Str)
                .row(vec![
                    "001".into(),
                    "Anna".into(),
                    "201".into(),
                    "202".into(),
                ])
                .row(vec![
                    "002".into(),
                    "Maya".into(),
                    "203".into(),
                    "204".into(),
                ])
                .row(vec!["004".into(), "Tom".into(), Value::Null, "201".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["203".into(), "MIT".into()])
                .row(vec!["204".into(), "Almaden".into()])
                .row(vec!["205".into(), "Acme".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("PhoneDir")
                .attr_not_null("ID", DataType::Str)
                .attr("number", DataType::Str)
                .row(vec!["201".into(), "555-0101".into()])
                .row(vec!["202".into(), "555-0102".into()])
                .row(vec!["203".into(), "555-0103".into()])
                .row(vec!["204".into(), "555-0104".into()])
                .row(vec!["205".into(), "555-0105".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("SBPS")
                .attr("ID", DataType::Str)
                .attr("time", DataType::Str)
                .row(vec!["002".into(), "8:15".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints.foreign_keys.extend([
            ForeignKey::simple("Children", "mid", "Parents", "ID"),
            ForeignKey::simple("Children", "fid", "Parents", "ID"),
            ForeignKey::simple("PhoneDir", "ID", "Parents", "ID"),
        ]);
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("name", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
                Attribute::new("BusSchedule", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn session() -> Session {
        Session::new(db(), target())
    }

    #[test]
    fn first_correspondence_bootstraps_a_workspace() {
        let mut s = session();
        let ids = s.add_correspondence("Children.ID", "ID").unwrap();
        assert_eq!(ids.len(), 1);
        let w = s.active().unwrap();
        assert_eq!(w.mapping.graph.node_count(), 1);
        assert!(!w.illustration.is_empty());
        // WYSIWYG target shows all three children
        assert_eq!(s.target_preview().unwrap().len(), 3);
    }

    #[test]
    fn affiliation_correspondence_triggers_walk_with_two_scenarios() {
        // the Figure 3 flow: mapping Children; adding Parents.affiliation
        // yields the mid- and fid-scenarios as alternative workspaces
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        s.add_correspondence("Children.name", "name").unwrap();
        let ids = s
            .add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        assert_eq!(ids.len(), 2);
        // both alternatives carry the new correspondence and the old ones
        for id in &ids {
            let w = s.workspaces().iter().find(|w| w.id == *id).unwrap();
            assert!(w.mapping.correspondence_for("affiliation").is_some());
            assert!(w.mapping.correspondence_for("ID").is_some());
        }
        // the two scenarios differ in the join predicate
        let preds: Vec<String> = ids
            .iter()
            .map(|id| {
                let w = s.workspaces().iter().find(|w| w.id == *id).unwrap();
                w.mapping.graph.edges()[0].predicate.to_string()
            })
            .collect();
        assert!(preds.contains(&"Children.mid = Parents.ID".to_owned()));
        assert!(preds.contains(&"Children.fid = Parents.ID".to_owned()));
        // user picks the fid scenario (Scenario 1 of the paper)
        let fid = ids
            .iter()
            .find(|id| {
                let w = s.workspaces().iter().find(|w| w.id == **id).unwrap();
                w.mapping.graph.edges()[0].predicate.to_string() == "Children.fid = Parents.ID"
            })
            .copied()
            .unwrap();
        s.confirm(fid).unwrap();
        assert_eq!(s.workspaces().len(), 1);
        assert_eq!(s.active().unwrap().id, fid);
    }

    #[test]
    fn explicit_data_walk_creates_ranked_alternatives() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        s.add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        let picked = s.workspaces()[0].id;
        s.confirm(picked).unwrap();
        // Figure 4: find phone numbers — several scenarios, some via a
        // Parents copy
        let ids = s.data_walk(None, "PhoneDir").unwrap();
        assert!(ids.len() >= 2);
        let has_copy = ids.iter().any(|id| {
            let w = s.workspaces().iter().find(|w| w.id == *id).unwrap();
            w.mapping.graph.node_by_alias("Parents2").is_some()
        });
        assert!(has_copy, "expected an alternative introducing Parents2");
        // active is the best-ranked (shortest path)
        assert_eq!(s.active().unwrap().id, ids[0]);
    }

    #[test]
    fn data_chase_discovers_sbps() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        // chase Maya's ID: SBPS is not linked by any foreign key
        let ids = s.data_chase("Children", "ID", &Value::str("002")).unwrap();
        assert_eq!(ids.len(), 1);
        let w = s.active().unwrap();
        assert!(w.mapping.graph.node_by_alias("SBPS").is_some());
        // the chase taught the knowledge base
        assert_eq!(s.knowledge.specs_between("Children", "SBPS").len(), 1);
        // now a walk to SBPS would also work from scratch
        s.add_correspondence("SBPS.time", "BusSchedule").unwrap();
        let preview = s.target_preview().unwrap();
        let maya = preview
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("002"))
            .unwrap();
        assert_eq!(maya[4], Value::str("8:15"));
    }

    #[test]
    fn example_6_1_accepting_two_complementary_mappings() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        let ids = s
            .add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        // scenario joined via mid
        let mid = ids
            .iter()
            .find(|id| {
                let w = s.workspaces().iter().find(|w| w.id == **id).unwrap();
                w.mapping.graph.edges()[0].predicate.to_string() == "Children.mid = Parents.ID"
            })
            .copied()
            .unwrap();
        s.confirm(mid).unwrap();
        // mapping 1: children with mothers
        s.add_source_filter("Children.mid IS NOT NULL").unwrap();
        s.accept_active().unwrap();
        // mapping 2: motherless children, father's affiliation — emulate
        // by flipping the filter and the join via a fresh session flow:
        // simplest here: change filters on the active workspace
        let w = s.active().unwrap().clone();
        let mut m2 = w.mapping.clone();
        m2.source_filters.clear();
        m2 = m2.with_source_filter(parse_expr("Children.mid IS NULL").unwrap());
        // replace the mid edge with fid
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.fid = Parents.ID").unwrap())
            .unwrap();
        m2.graph = g;
        let ws = s.active_mut().unwrap();
        ws.mapping = m2;
        s.accept_active().unwrap();
        assert_eq!(s.accepted().len(), 2);
        // the union covers all children exactly once each
        let preview = s.target_preview().unwrap();
        let toms: Vec<_> = preview
            .rows()
            .iter()
            .filter(|r| r[0] == Value::str("004"))
            .collect();
        assert_eq!(toms.len(), 1);
        assert_eq!(toms[0][2], Value::str("IBM")); // father's affiliation
    }

    #[test]
    fn confirm_and_delete_manage_alternatives() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        let ids = s
            .add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        assert_eq!(s.workspaces().len(), 2);
        s.delete(ids[1]).unwrap();
        assert_eq!(s.workspaces().len(), 1);
        assert!(s.active().is_some());
        assert!(s.delete(999).is_err());
    }

    #[test]
    fn add_correspondence_errors() {
        let mut s = session();
        // multi-relation first correspondence
        assert!(s
            .add_correspondence("Children.ID || Parents.ID", "ID")
            .is_err());
        // unknown target attribute
        assert!(s.add_correspondence("Children.ID", "Nope").is_err());
        s.add_correspondence("Children.ID", "ID").unwrap();
        // two missing relations at once
        assert!(s
            .add_correspondence("Parents.affiliation || PhoneDir.number", "contactPh")
            .is_err());
    }

    #[test]
    fn walk_without_active_workspace_errors() {
        let mut s = session();
        assert!(s.data_walk(None, "PhoneDir").is_err());
        assert!(s.data_chase("Children", "ID", &Value::str("002")).is_err());
        assert!(s.accept_active().is_err());
    }

    #[test]
    fn custom_functions_flow_through_sessions() {
        use clio_relational::funcs::Arity;
        use std::sync::Arc;
        let mut s = session();
        s.funcs_mut().register(
            "mask_id",
            Arity::Exact(1),
            Arc::new(|args: &[Value]| {
                Ok(match &args[0] {
                    Value::Str(v) => Value::Str(format!("kid-{v}")),
                    other => other.clone(),
                })
            }),
        );
        s.add_correspondence("mask_id(Children.ID)", "ID").unwrap();
        let preview = s.target_preview().unwrap();
        assert!(preview.rows().iter().any(|r| r[0] == Value::str("kid-002")));
    }

    #[test]
    fn unregistered_function_fails_loudly() {
        let mut s = session();
        assert!(s
            .add_correspondence("no_such_fn(Children.ID)", "ID")
            .is_err());
        assert!(s.active().is_none());
    }

    #[test]
    fn data_walk_with_explicit_start() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        let ids = s
            .add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        s.confirm(ids[0]).unwrap();
        // explicit start narrows the search to walks beginning at Parents
        let ids = s.data_walk(Some("Parents"), "PhoneDir").unwrap();
        assert!(!ids.is_empty());
        for id in ids {
            let w = s.workspaces().iter().find(|w| w.id == id).unwrap();
            assert!(w.mapping.graph.node_by_alias("PhoneDir").is_some());
        }
        // unknown start errors
        assert!(s.data_walk(Some("Nope"), "SBPS").is_err());
    }

    #[test]
    fn replace_relation_invalidates_and_evolves() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        s.add_correspondence("Children.name", "name").unwrap();
        let before = s.target_preview().unwrap();
        assert_eq!(before.len(), 3);
        assert!(s.cache().stats().entries > 0, "preview should populate");
        // content edit: a fourth child appears
        let mut rel = s.database().relation("Children").unwrap().clone();
        rel.insert(vec!["005".into(), "Zoe".into(), "205".into(), Value::Null])
            .unwrap();
        s.replace_relation(rel).unwrap();
        assert!(s.cache().stats().invalidations > 0);
        let after = s.target_preview().unwrap();
        assert_eq!(after.len(), 4);
        assert!(after.rows().iter().any(|r| r[0] == Value::str("005")));
        // the illustration was refreshed over the new data
        let ill = &s.active().unwrap().illustration;
        assert!(!ill.is_empty());
    }

    #[test]
    fn replace_relation_rejects_schema_changes_and_unknown_relations() {
        let mut s = session();
        let bad = RelationBuilder::new("Children")
            .attr("other", DataType::Str)
            .build()
            .unwrap();
        assert!(s.replace_relation(bad).is_err());
        let unknown = RelationBuilder::new("Nope")
            .attr("x", DataType::Str)
            .build()
            .unwrap();
        assert!(s.replace_relation(unknown).is_err());
    }

    #[test]
    fn shared_sessions_copy_on_write_isolates_edits() {
        let snapshot = Arc::new(db());
        let mut a = Session::shared(Arc::clone(&snapshot), target());
        let mut b = Session::shared(Arc::clone(&snapshot), target());
        // Spawning from one snapshot does not copy the database.
        assert!(Arc::ptr_eq(&a.shared_database(), &snapshot));
        assert!(Arc::ptr_eq(&b.shared_database(), &snapshot));
        a.add_correspondence("Children.ID", "ID").unwrap();
        b.add_correspondence("Children.ID", "ID").unwrap();
        // Session `a` edits Children; `b` and the snapshot must not see it.
        let mut rel = a.database().relation("Children").unwrap().clone();
        rel.insert(vec!["005".into(), "Zoe".into(), "205".into(), Value::Null])
            .unwrap();
        a.replace_relation(rel).unwrap();
        assert!(
            !Arc::ptr_eq(&a.shared_database(), &snapshot),
            "the edit must have materialized a private copy"
        );
        assert!(Arc::ptr_eq(&b.shared_database(), &snapshot));
        assert_eq!(a.database().relation("Children").unwrap().len(), 4);
        assert_eq!(b.database().relation("Children").unwrap().len(), 3);
        assert_eq!(snapshot.relation("Children").unwrap().len(), 3);
        assert_eq!(a.target_preview().unwrap().len(), 4);
        assert_eq!(b.target_preview().unwrap().len(), 3);
    }

    #[test]
    fn uniquely_owned_session_edits_without_copying() {
        let mut s = session();
        let before = Arc::as_ptr(&s.shared_database());
        let mut rel = s.database().relation("Parents").unwrap().clone();
        rel.insert(vec!["206".into(), "Initech".into()]).unwrap();
        s.replace_relation(rel).unwrap();
        assert_eq!(
            Arc::as_ptr(&s.shared_database()),
            before,
            "an unshared snapshot should be edited in place"
        );
    }

    #[test]
    fn cache_toggle_keeps_session_state_byte_identical() {
        let run = |cached: bool| {
            let mut s = session();
            s.set_cache_enabled(cached);
            s.add_correspondence("Children.ID", "ID").unwrap();
            let ids = s
                .add_correspondence("Parents.affiliation", "affiliation")
                .unwrap();
            s.confirm(ids[0]).unwrap();
            s.add_source_filter("Children.mid IS NOT NULL").unwrap();
            let preview1 = s.target_preview().unwrap();
            let preview2 = s.target_preview().unwrap();
            let ill = s.active().unwrap().illustration.clone();
            (preview1, preview2, ill)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0.scheme(), off.0.scheme());
        assert_eq!(on.0.rows(), off.0.rows());
        assert_eq!(on.1.rows(), off.1.rows());
        assert_eq!(on.2, off.2);
    }

    #[test]
    fn funcs_mut_bumps_the_cache_epoch() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        s.target_preview().unwrap();
        let epoch = s.cache().epoch();
        let _ = s.funcs_mut();
        assert_eq!(s.cache().epoch(), epoch + 1);
        assert_eq!(s.cache().stats().entries, 0);
    }

    #[test]
    fn illustrations_stay_synchronized() {
        let mut s = session();
        s.add_correspondence("Children.ID", "ID").unwrap();
        let before = s.active().unwrap().illustration.clone();
        s.add_source_filter("Children.name IS NOT NULL").unwrap();
        let after = &s.active().unwrap().illustration;
        // the mapping changed, the illustration was refreshed (it may or
        // may not differ in content, but it must reflect the new mapping:
        // all examples carry polarity consistent with the filter)
        for e in &after.examples {
            let name_null = e.association[1].is_null();
            if name_null {
                assert!(!e.positive);
            }
        }
        let _ = before;
    }
}
