//! Mapping examples (paper Def 4.1).
//!
//! An example of a mapping `M` is a pair `e = (d, t)` where `d ∈ D(G)` is
//! a data association and `t = Q_{φ(M)}(d)` is the target tuple it induces
//! under the filter-free mapping. The example is **positive** when `d`
//! satisfies all source filters and `t` all target filters, **negative**
//! otherwise — negative examples show the user what data trimming removed.

use clio_relational::schema::Scheme;
use clio_relational::value::Value;

use crate::query_graph::QueryGraph;

/// One mapping example `(d, t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// The data association `d` (row over the graph's wide scheme).
    pub association: Vec<Value>,
    /// Coverage mask of `d`.
    pub coverage: u64,
    /// The induced target tuple `t = Q_{φ(M)}(d)`.
    pub target: Vec<Value>,
    /// `true` when `d ⊨ C_S` and `t ⊨ C_T`.
    pub positive: bool,
}

impl Example {
    /// The target value for target-attribute index `i`.
    #[must_use]
    pub fn target_value(&self, i: usize) -> &Value {
        &self.target[i]
    }

    /// Polarity tag used in rendered illustrations: `+` / `-`.
    #[must_use]
    pub fn polarity_tag(&self) -> &'static str {
        if self.positive {
            "+"
        } else {
            "-"
        }
    }
}

/// Render a set of examples in the paper's Figure-9 style: association
/// rows tagged `"<coverage> <polarity>"`.
#[must_use]
pub fn render_examples(graph: &QueryGraph, scheme: &Scheme, examples: &[&Example]) -> String {
    let rows: Vec<Vec<Value>> = examples.iter().map(|e| e.association.clone()).collect();
    let tags: Vec<String> = examples
        .iter()
        .map(|e| format!("{} {}", graph.coverage_tag(e.coverage), e.polarity_tag()))
        .collect();
    clio_relational::display::render_table(scheme, &rows, &tags)
}

/// Render the *target side* of a set of examples (the induced tuples).
#[must_use]
pub fn render_example_targets(target_scheme: &Scheme, examples: &[&Example]) -> String {
    let rows: Vec<Vec<Value>> = examples.iter().map(|e| e.target.clone()).collect();
    let tags: Vec<String> = examples
        .iter()
        .map(|e| e.polarity_tag().to_owned())
        .collect();
    clio_relational::display::render_table(target_scheme, &rows, &tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::Node;
    use clio_relational::expr::Expr;
    use clio_relational::schema::Column;
    use clio_relational::value::DataType;

    fn graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(0, 1, Expr::col_eq("Children.mid", "Parents.ID"))
            .unwrap();
        g
    }

    fn example(positive: bool) -> Example {
        Example {
            association: vec!["002".into(), "202".into()],
            coverage: 0b11,
            target: vec!["002".into(), Value::Null],
            positive,
        }
    }

    #[test]
    fn polarity_tags() {
        assert_eq!(example(true).polarity_tag(), "+");
        assert_eq!(example(false).polarity_tag(), "-");
    }

    #[test]
    fn render_includes_coverage_and_polarity() {
        let scheme = Scheme::new(vec![
            Column::new("Children", "ID", DataType::Str),
            Column::new("Parents", "ID", DataType::Str),
        ]);
        let e = example(true);
        let s = render_examples(&graph(), &scheme, &[&e]);
        assert!(s.contains("CP +"));
        assert!(s.contains("002"));
    }

    #[test]
    fn render_targets_shows_induced_tuples() {
        let tscheme = Scheme::new(vec![
            Column::new("Kids", "ID", DataType::Str),
            Column::new("Kids", "affiliation", DataType::Str),
        ]);
        let e = example(false);
        let s = render_example_targets(&tscheme, &[&e]);
        assert!(s.contains("Kids.ID"));
        assert!(s.lines().nth(3).unwrap().contains('-')); // polarity tag
    }
}
