//! Mapping verification ("lint"): data-driven diagnostics beyond
//! structural validation.
//!
//! The paper's thesis is that *data* exposes mapping problems a schema
//! view hides. This module runs a mapping against the source instance and
//! reports the problems a user would otherwise discover late: target-key
//! conflicts (two source combinations disagreeing on one key — the data
//! merging hazard), attributes that can never be populated, dead graph
//! nodes, and empty results.

use std::collections::HashMap;
use std::fmt;

use clio_relational::database::Database;
use clio_relational::error::Result;
use clio_relational::funcs::FuncRegistry;
use clio_relational::value::Value;

use crate::mapping::Mapping;

/// One diagnostic about a mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A target attribute has no correspondence — it will always be null.
    UnmappedAttribute {
        /// The attribute name.
        attr: String,
    },
    /// A `NOT NULL` target attribute has no correspondence: combined with
    /// the derived `IS NOT NULL` filter, the mapping can never produce a
    /// tuple.
    RequiredAttributeUnmapped {
        /// The attribute name.
        attr: String,
    },
    /// Two distinct target tuples agree on the key attributes but differ
    /// elsewhere — merging them into one target relation loses or
    /// duplicates information.
    KeyConflict {
        /// The key attribute names.
        key: Vec<String>,
        /// The conflicting key value.
        key_values: Vec<Value>,
        /// How many distinct tuples share the key.
        tuples: usize,
    },
    /// A leaf node of the query graph is referenced by no correspondence
    /// and no filter: it only trims/expands rows silently.
    UnusedNode {
        /// The node alias.
        alias: String,
    },
    /// The mapping query produces no tuples on this instance.
    EmptyResult,
    /// An expression has a definite static type error (it would fail on
    /// first evaluation over a matching row).
    TypeError {
        /// Where the expression lives: `"correspondence for <attr>"`,
        /// `"source filter"`, `"target filter"`, or `"edge <a> -- <b>"`.
        context: String,
        /// The type checker's message.
        message: String,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::UnmappedAttribute { attr } => {
                write!(f, "target attribute `{attr}` is unmapped (always null)")
            }
            Finding::RequiredAttributeUnmapped { attr } => write!(
                f,
                "required target attribute `{attr}` is unmapped: the mapping can never \
                 produce a tuple once its NOT NULL constraint is enforced"
            ),
            Finding::KeyConflict {
                key,
                key_values,
                tuples,
            } => write!(
                f,
                "key conflict: {tuples} distinct tuples share {}({})",
                key.join(","),
                key_values
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Finding::UnusedNode { alias } => write!(
                f,
                "graph node `{alias}` feeds no correspondence or filter; it only \
                 changes which rows appear"
            ),
            Finding::EmptyResult => write!(f, "the mapping produces no tuples on this instance"),
            Finding::TypeError { context, message } => {
                write!(f, "type error in {context}: {message}")
            }
        }
    }
}

/// Run all diagnostics. `target_keys` lists candidate keys of the target
/// relation (attribute-name sets) to check for merge conflicts.
pub fn verify_mapping(
    mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    target_keys: &[Vec<String>],
) -> Result<Vec<Finding>> {
    mapping.validate(db, funcs)?;
    let mut findings = Vec::new();

    // static type checks (advisory: inference errors become findings)
    let scheme = mapping.graph.scheme(db)?;
    let tscheme = mapping.target_scheme();
    for v in &mapping.correspondences {
        if let Err(e) = clio_relational::typing::infer_type(&v.expr, &scheme) {
            findings.push(Finding::TypeError {
                context: format!("correspondence for {}", v.target_attr),
                message: e.to_string(),
            });
        }
    }
    for e in &mapping.source_filters {
        if let Err(err) = clio_relational::typing::infer_type(e, &scheme) {
            findings.push(Finding::TypeError {
                context: "source filter".into(),
                message: err.to_string(),
            });
        }
    }
    for e in &mapping.target_filters {
        if let Err(err) = clio_relational::typing::infer_type(e, &tscheme) {
            findings.push(Finding::TypeError {
                context: "target filter".into(),
                message: err.to_string(),
            });
        }
    }
    for edge in mapping.graph.edges() {
        if let Err(err) = clio_relational::typing::infer_type(&edge.predicate, &scheme) {
            findings.push(Finding::TypeError {
                context: format!(
                    "edge {} -- {}",
                    mapping.graph.nodes()[edge.a].alias,
                    mapping.graph.nodes()[edge.b].alias
                ),
                message: err.to_string(),
            });
        }
    }

    // unmapped attributes
    for attr in mapping.target.attrs() {
        if mapping.correspondence_for(&attr.name).is_none() {
            if attr.not_null {
                findings.push(Finding::RequiredAttributeUnmapped {
                    attr: attr.name.clone(),
                });
            } else {
                findings.push(Finding::UnmappedAttribute {
                    attr: attr.name.clone(),
                });
            }
        }
    }

    // unused leaf nodes
    for (i, node) in mapping.graph.nodes().iter().enumerate() {
        if mapping.graph.neighbors(i).len() > 1 {
            continue; // interior nodes legitimately route joins
        }
        let alias = node.alias.as_str();
        let used_by_corr = mapping
            .correspondences
            .iter()
            .any(|v| v.source_qualifiers().contains(&alias));
        let used_by_filter = mapping
            .source_filters
            .iter()
            .any(|e| e.qualifiers().contains(&alias));
        if !used_by_corr && !used_by_filter && mapping.graph.node_count() > 1 {
            findings.push(Finding::UnusedNode {
                alias: alias.to_owned(),
            });
        }
    }

    // evaluate once for the data-driven checks — unless static typing
    // already found definite errors (evaluation would fail the same way)
    if findings
        .iter()
        .any(|f| matches!(f, Finding::TypeError { .. }))
    {
        return Ok(findings);
    }
    let out = mapping.evaluate(db, funcs)?;
    if out.is_empty() {
        findings.push(Finding::EmptyResult);
    }

    for key in target_keys {
        let idxs: Vec<usize> = key
            .iter()
            .map(|a| mapping.target.index_of(a))
            .collect::<Result<_>>()?;
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in out.rows() {
            let kv: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
            if kv.iter().any(Value::is_null) {
                continue;
            }
            *groups.entry(kv).or_insert(0) += 1;
        }
        for (kv, count) in groups {
            if count > 1 {
                findings.push(Finding::KeyConflict {
                    key: key.clone(),
                    key_values: kv,
                    tuples: count,
                });
            }
        }
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "201".into()])
                .row(vec!["002".into(), "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("phone", DataType::Str)
                .row(vec!["201".into(), "555-1".into()])
                .row(vec!["201".into(), "555-2".into()]) // two phones!
                .row(vec!["202".into(), "555-3".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("phone", DataType::Str),
                Attribute::new("nickname", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("Parents.phone", "phone"))
            .with_target_not_null_filters()
    }

    #[test]
    fn reports_unmapped_nullable_attribute() {
        let findings = verify_mapping(&mapping(), &db(), &funcs(), &[]).unwrap();
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnmappedAttribute { attr } if attr == "nickname")));
    }

    #[test]
    fn reports_key_conflicts_from_fanout() {
        // child 001's mother has two phones: two target tuples share ID 001
        let findings =
            verify_mapping(&mapping(), &db(), &funcs(), &[vec!["ID".to_owned()]]).unwrap();
        let conflict = findings
            .iter()
            .find(|f| matches!(f, Finding::KeyConflict { .. }))
            .expect("expected a key conflict");
        let Finding::KeyConflict {
            key_values, tuples, ..
        } = conflict
        else {
            unreachable!()
        };
        assert_eq!(key_values, &vec![Value::str("001")]);
        assert_eq!(*tuples, 2);
    }

    #[test]
    fn reports_required_attribute_unmapped() {
        let mut m = mapping();
        m.correspondences.retain(|c| c.target_attr != "ID");
        let findings = verify_mapping(&m, &db(), &funcs(), &[]).unwrap();
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::RequiredAttributeUnmapped { attr } if attr == "ID")));
        // and indeed the result is empty (ID filter can never pass)
        assert!(findings.contains(&Finding::EmptyResult));
    }

    #[test]
    fn reports_unused_leaf_node() {
        let mut m = mapping();
        m.correspondences.retain(|c| c.target_attr != "phone");
        let findings = verify_mapping(&m, &db(), &funcs(), &[]).unwrap();
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnusedNode { alias } if alias == "Parents")));
    }

    #[test]
    fn clean_mapping_with_unique_keys_has_no_conflicts() {
        let mut database = db();
        // remove the duplicate phone
        let parents = RelationBuilder::new("ParentsClean")
            .attr_not_null("ID", DataType::Str)
            .attr("phone", DataType::Str)
            .row(vec!["201".into(), "555-1".into()])
            .row(vec!["202".into(), "555-3".into()])
            .build()
            .unwrap();
        database.add_relation(parents).unwrap();
        let mut m = mapping();
        // swap the node to the clean copy
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g
            .add_node(Node::copy_of("Parents", "ParentsClean"))
            .unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        m.graph = g;
        let findings = verify_mapping(&m, &database, &funcs(), &[vec!["ID".to_owned()]]).unwrap();
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::KeyConflict { .. })));
        assert!(!findings.contains(&Finding::EmptyResult));
    }

    #[test]
    fn type_errors_surface_as_findings() {
        let mut m = mapping();
        // comparing a string ID with an integer is a definite mismatch
        m.source_filters
            .push(parse_expr("Children.ID < 5").unwrap());
        let findings = verify_mapping(&m, &db(), &funcs(), &[]).unwrap();
        let type_err = findings
            .iter()
            .find(|f| matches!(f, Finding::TypeError { .. }))
            .expect("expected a type error finding");
        let Finding::TypeError { context, message } = type_err else {
            unreachable!()
        };
        assert_eq!(context, "source filter");
        assert!(message.contains("cannot compare"));
    }

    #[test]
    fn arithmetic_type_error_in_correspondence() {
        let mut m = mapping();
        m.set_correspondence(ValueCorrespondence::parse("Children.ID + 1", "phone").unwrap());
        let findings = verify_mapping(&m, &db(), &funcs(), &[]).unwrap();
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::TypeError { context, .. } if context.contains("phone"))));
    }

    #[test]
    fn findings_render_readably() {
        let f = Finding::KeyConflict {
            key: vec!["ID".into()],
            key_values: vec![Value::str("001")],
            tuples: 2,
        };
        assert_eq!(
            f.to_string(),
            "key conflict: 2 distinct tuples share ID(001)"
        );
        assert!(Finding::EmptyResult.to_string().contains("no tuples"));
    }
}
