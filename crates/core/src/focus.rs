//! Focused illustrations (paper Def 4.7).
//!
//! A user may know specific data well ("the user is familiar with Maya").
//! An illustration is **focused** on a set of tuples `f` of a focus
//! relation `F` when *every* data association involving a tuple of `f`
//! induces an example included in the illustration — the user learns
//! everything about the data she knows.

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;
use clio_relational::schema::Scheme;
use clio_relational::value::Value;

use crate::example::Example;
use crate::illustration::Illustration;
use crate::mapping::Mapping;
use crate::query_graph::NodeId;

/// A focus: a node of the mapping's graph plus distinguished tuples of its
/// relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Focus {
    /// The focus node (paper: focus *relation*; per-node so a specific
    /// copy can be focused).
    pub node: NodeId,
    /// The focus tuples (rows over the node's relation scheme).
    pub tuples: Vec<Vec<Value>>,
}

impl Focus {
    /// Focus on the tuples of `node`'s relation for which `attr = value`
    /// — the common "focus on Maya" gesture.
    pub fn on_value(
        mapping: &Mapping,
        db: &Database,
        node: NodeId,
        attr: &str,
        value: &Value,
    ) -> Result<Focus> {
        let rel_name = &mapping
            .graph
            .nodes()
            .get(node)
            .ok_or_else(|| Error::Invalid("focus node out of range".into()))?
            .relation;
        let rel = db.relation(rel_name)?;
        let tuples = rel.rows_where(attr, value)?.into_iter().cloned().collect();
        Ok(Focus { node, tuples })
    }

    /// Does the association row involve one of the focus tuples? The
    /// projection of `d` onto the focus node's scheme must equal a focus
    /// tuple (paper: `Π_{S_F}(d) ∈ f`).
    #[must_use]
    pub fn involves(&self, scheme: &Scheme, node_alias: &str, association: &[Value]) -> bool {
        let idxs = scheme.indexes_of_qualifier(node_alias);
        let projected: Vec<&Value> = idxs.iter().map(|&i| &association[i]).collect();
        self.tuples
            .iter()
            .any(|t| t.len() == projected.len() && t.iter().zip(&projected).all(|(a, &b)| a == b))
    }
}

/// All examples focused on `focus` — every example whose association
/// involves a focus tuple. This is the *smallest* illustration focused on
/// `f`; any superset is also focused.
pub fn focused_examples(
    mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    focus: &Focus,
) -> Result<Vec<Example>> {
    let all = mapping.examples(db, funcs)?;
    let scheme = mapping.graph.scheme(db)?;
    let alias = &mapping.graph.nodes()[focus.node].alias;
    Ok(all
        .into_iter()
        .filter(|e| focus.involves(&scheme, alias, &e.association))
        .collect())
}

/// Is `illustration` focused on `focus` (Def 4.7) relative to the full
/// population `all`?
#[must_use]
pub fn is_focused(
    illustration: &Illustration,
    all: &[Example],
    scheme: &Scheme,
    node_alias: &str,
    focus: &Focus,
) -> bool {
    all.iter()
        .filter(|e| focus.involves(scheme, node_alias, &e.association))
        .all(|required| illustration.examples.contains(required))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("name", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "Anna".into(), "201".into()])
                .row(vec!["002".into(), "Maya".into(), "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_target_not_null_filters()
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn focus_on_maya_selects_her_associations() {
        let m = mapping();
        let database = db();
        let focus = Focus::on_value(&m, &database, 0, "ID", &Value::str("002")).unwrap();
        assert_eq!(focus.tuples.len(), 1);
        let examples = focused_examples(&m, &database, &funcs(), &focus).unwrap();
        assert_eq!(examples.len(), 1);
        assert_eq!(examples[0].target[0], Value::str("002"));
    }

    #[test]
    fn focused_check_matches_example_4_8() {
        let m = mapping();
        let database = db();
        let all = m.examples(&database, &funcs()).unwrap();
        let scheme = m.graph.scheme(&database).unwrap();

        // illustration holding every child example but NOT parent 205's
        let child_only = Illustration {
            examples: all
                .iter()
                .filter(|e| e.coverage & 0b01 != 0)
                .cloned()
                .collect(),
        };
        let focus_children = Focus {
            node: 0,
            tuples: database.relation("Children").unwrap().rows().to_vec(),
        };
        assert!(is_focused(
            &child_only,
            &all,
            &scheme,
            "Children",
            &focus_children
        ));

        // but it is NOT focused on parent 205
        let focus_205 = Focus::on_value(&m, &database, 1, "ID", &Value::str("205")).unwrap();
        assert!(!is_focused(
            &child_only,
            &all,
            &scheme,
            "Parents",
            &focus_205
        ));

        // adding 205's association makes it focused
        let full = Illustration {
            examples: all.clone(),
        };
        assert!(is_focused(&full, &all, &scheme, "Parents", &focus_205));
    }

    #[test]
    fn empty_focus_is_trivially_focused() {
        let m = mapping();
        let database = db();
        let all = m.examples(&database, &funcs()).unwrap();
        let scheme = m.graph.scheme(&database).unwrap();
        let focus = Focus {
            node: 0,
            tuples: vec![],
        };
        assert!(is_focused(
            &Illustration::empty(),
            &all,
            &scheme,
            "Children",
            &focus
        ));
    }

    #[test]
    fn focus_on_missing_value_selects_nothing() {
        let m = mapping();
        let database = db();
        let focus = Focus::on_value(&m, &database, 0, "ID", &Value::str("999")).unwrap();
        assert!(focus.tuples.is_empty());
        let examples = focused_examples(&m, &database, &funcs(), &focus).unwrap();
        assert!(examples.is_empty());
    }

    #[test]
    fn focus_node_out_of_range_errors() {
        let m = mapping();
        assert!(Focus::on_value(&m, &db(), 9, "ID", &Value::str("002")).is_err());
    }
}
