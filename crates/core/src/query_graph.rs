//! Query graphs (paper Def 3.3): the data-linking component of a mapping.
//!
//! A query graph is an undirected, connected graph whose nodes are
//! (references to) source relations and whose edges are labelled by
//! conjunctions of **strong** join predicates. A mapping may reference
//! multiple copies of one relation; each node therefore carries an *alias*
//! (the unique name, e.g. `Parents2`) in addition to the underlying
//! relation name, and all predicates and schemes are qualified by alias.

use std::fmt;

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::funcs::FuncRegistry;
use clio_relational::schema::Scheme;
use clio_relational::table::Table;

/// Identifier of a node within a query graph (index into the node list).
pub type NodeId = usize;

/// A node: one (copy of a) source relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Unique alias within the graph; qualifies columns (`Parents2.ID`).
    pub alias: String,
    /// Name of the underlying stored relation.
    pub relation: String,
    /// Short code used in coverage tags (`C`, `P`, `Ph`, `S`). Defaults to
    /// a code derived from the alias.
    pub code: String,
}

impl Node {
    /// A node whose alias equals the relation name, with a derived code.
    pub fn new(name: impl Into<String>) -> Node {
        let name = name.into();
        Node {
            code: derive_code(&name),
            relation: name.clone(),
            alias: name,
        }
    }

    /// A relation copy: alias differs from the stored relation name.
    pub fn copy_of(alias: impl Into<String>, relation: impl Into<String>) -> Node {
        let alias = alias.into();
        Node {
            code: derive_code(&alias),
            relation: relation.into(),
            alias,
        }
    }

    /// Override the coverage code (the paper uses `Ph` for `PhoneDir`).
    #[must_use]
    pub fn with_code(mut self, code: impl Into<String>) -> Node {
        self.code = code.into();
        self
    }
}

/// Derive a default coverage code from an alias: the leading uppercase
/// letter, plus the second letter when the alias is CamelCase with a
/// lowercase second character (`PhoneDir` → `Ph`, matching the paper's
/// tags), plus any trailing digits (`Parents2` → `P2`).
fn derive_code(alias: &str) -> String {
    let chars: Vec<char> = alias.chars().collect();
    let mut out = String::new();
    if let Some(&c) = chars.first() {
        out.push(c.to_ascii_uppercase());
    }
    let has_later_upper = chars.iter().skip(1).any(|c| c.is_ascii_uppercase());
    if has_later_upper {
        if let Some(&c) = chars.get(1) {
            if c.is_ascii_lowercase() {
                out.push(c);
            }
        }
    }
    let digits: String = chars
        .iter()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    out.extend(digits.chars().rev());
    out
}

/// An undirected edge labelled by a join predicate (conjunction).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The join predicate; must be strong and reference only the two
    /// endpoint aliases.
    pub predicate: Expr,
}

/// A query graph over a source database schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl QueryGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> QueryGraph {
        QueryGraph::default()
    }

    /// Add a node; aliases must be unique. Returns the new node's id.
    pub fn add_node(&mut self, node: Node) -> Result<NodeId> {
        if self.nodes.iter().any(|n| n.alias == node.alias) {
            return Err(Error::Invalid(format!(
                "duplicate node alias `{}` in query graph",
                node.alias
            )));
        }
        if self.nodes.len() >= 64 {
            return Err(Error::Invalid(
                "query graphs are limited to 64 nodes (coverage masks are u64)".into(),
            ));
        }
        self.nodes.push(node);
        Ok(self.nodes.len() - 1)
    }

    /// Add an edge between existing nodes. The predicate's qualifiers must
    /// be a subset of the two endpoint aliases, and at most one edge may
    /// exist per node pair (label conjunction: extend the existing edge's
    /// predicate instead).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, predicate: Expr) -> Result<()> {
        if a >= self.nodes.len() || b >= self.nodes.len() {
            return Err(Error::Invalid("edge endpoint out of range".into()));
        }
        if a == b {
            return Err(Error::Invalid(
                "self-loops are not allowed in query graphs".into(),
            ));
        }
        if self.edge_between(a, b).is_some() {
            return Err(Error::Invalid(format!(
                "an edge between `{}` and `{}` already exists; conjoin predicates instead",
                self.nodes[a].alias, self.nodes[b].alias
            )));
        }
        let allowed = [self.nodes[a].alias.as_str(), self.nodes[b].alias.as_str()];
        for q in predicate.qualifiers() {
            if !allowed.contains(&q) {
                return Err(Error::Invalid(format!(
                    "edge predicate references `{q}`, which is not an endpoint \
                     (endpoints: {}, {})",
                    allowed[0], allowed[1]
                )));
            }
        }
        self.edges.push(Edge { a, b, predicate });
        Ok(())
    }

    /// The nodes, indexed by [`NodeId`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Find a node id by alias.
    #[must_use]
    pub fn node_by_alias(&self, alias: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.alias == alias)
    }

    /// Node ids whose underlying relation is `relation`.
    #[must_use]
    pub fn nodes_of_relation(&self, relation: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.relation == relation)
            .map(|(i, _)| i)
            .collect()
    }

    /// The edge between `a` and `b`, if any (undirected).
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<&Edge> {
        self.edges
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// Neighbours of a node.
    #[must_use]
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.a == n {
                out.push(e.b);
            } else if e.b == n {
                out.push(e.a);
            }
        }
        out
    }

    /// Is the whole graph connected? (The empty graph is not; a single
    /// node is.)
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let all = if self.nodes.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.nodes.len()) - 1
        };
        self.is_subset_connected(all)
    }

    /// Is the node subset given by `mask` connected in the induced
    /// subgraph? Empty masks are not connected; singletons are.
    #[must_use]
    pub fn is_subset_connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        let start = mask.trailing_zeros() as usize;
        let mut seen = 1u64 << start;
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                let bit = 1u64 << m;
                if mask & bit != 0 && seen & bit == 0 {
                    seen |= bit;
                    stack.push(m);
                }
            }
        }
        seen == mask
    }

    /// Is the graph a tree (connected, |E| = |N| − 1)? Trees admit the
    /// optimized outer-join full-disjunction plan.
    #[must_use]
    pub fn is_tree(&self) -> bool {
        self.is_connected() && self.edges.len() == self.nodes.len().saturating_sub(1)
    }

    /// Edges of the subgraph induced by `mask` (both endpoints inside).
    #[must_use]
    pub fn induced_edges(&self, mask: u64) -> Vec<&Edge> {
        self.edges
            .iter()
            .filter(|e| mask & (1 << e.a) != 0 && mask & (1 << e.b) != 0)
            .collect()
    }

    /// The wide scheme of the graph: node schemes concatenated in node
    /// order, columns qualified by alias.
    pub fn scheme(&self, db: &Database) -> Result<Scheme> {
        let mut scheme = Scheme::empty();
        for n in &self.nodes {
            let rel = db.relation(&n.relation)?;
            scheme = scheme.concat(&Scheme::of_relation(rel.schema(), &n.alias))?;
        }
        Ok(scheme)
    }

    /// The table of one node's relation, qualified by its alias.
    pub fn node_table(&self, db: &Database, n: NodeId) -> Result<Table> {
        let node = &self.nodes[n];
        Ok(db.relation(&node.relation)?.to_table(&node.alias))
    }

    /// A BFS order of node ids starting from `root`, in which every node
    /// after the first is adjacent to an earlier node — the *connected
    /// elimination order* used by the outer-join full-disjunction plan and
    /// SQL generation. Errors if the graph is disconnected.
    pub fn connected_order(&self, root: NodeId) -> Result<Vec<NodeId>> {
        if root >= self.nodes.len() {
            return Err(Error::Invalid("root out of range".into()));
        }
        let mut order = vec![root];
        let mut seen = 1u64 << root;
        let mut i = 0;
        while i < order.len() {
            for m in self.neighbors(order[i]) {
                if seen & (1 << m) == 0 {
                    seen |= 1 << m;
                    order.push(m);
                }
            }
            i += 1;
        }
        if order.len() != self.nodes.len() {
            return Err(Error::Invalid("query graph is not connected".into()));
        }
        Ok(order)
    }

    /// Validate the graph against a database: connected, every node's
    /// relation exists, edge predicates bind against their endpoints'
    /// combined scheme and are strong (paper Sec 3 requires join
    /// predicates to be strong).
    pub fn validate(&self, db: &Database, funcs: &FuncRegistry) -> Result<()> {
        if !self.is_connected() {
            return Err(Error::Invalid("query graph must be connected".into()));
        }
        for e in &self.edges {
            let ra = db.relation(&self.nodes[e.a].relation)?;
            let rb = db.relation(&self.nodes[e.b].relation)?;
            let scheme = Scheme::of_relation(ra.schema(), &self.nodes[e.a].alias)
                .concat(&Scheme::of_relation(rb.schema(), &self.nodes[e.b].alias))?;
            e.predicate.bind(&scheme)?;
            if !e.predicate.is_strong(&scheme, funcs)? {
                return Err(Error::Invalid(format!(
                    "edge predicate `{}` between `{}` and `{}` is not strong",
                    e.predicate, self.nodes[e.a].alias, self.nodes[e.b].alias
                )));
            }
        }
        Ok(())
    }

    /// Render a coverage mask as the paper's tags (`CPPh`, `PPh`, …):
    /// concatenated node codes in node order.
    #[must_use]
    pub fn coverage_tag(&self, mask: u64) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                out.push_str(&n.code);
            }
        }
        out
    }

    /// A fresh alias for a new copy of `relation`: the relation name with
    /// the smallest numeric suffix ≥ 2 not yet used (`Parents` →
    /// `Parents2` → `Parents3`).
    #[must_use]
    pub fn fresh_alias(&self, relation: &str) -> String {
        if self.node_by_alias(relation).is_none() {
            return relation.to_owned();
        }
        let mut k = 2;
        loop {
            let candidate = format!("{relation}{k}");
            if self.node_by_alias(&candidate).is_none() {
                return candidate;
            }
            k += 1;
        }
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nodes: ")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if n.alias == n.relation {
                write!(f, "{}", n.alias)?;
            } else {
                write!(f, "{} (copy of {})", n.alias, n.relation)?;
            }
        }
        writeln!(f)?;
        for e in &self.edges {
            writeln!(
                f,
                "edge {} -- {} : {}",
                self.nodes[e.a].alias, self.nodes[e.b].alias, e.predicate
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, attrs) in [
            ("Children", vec!["ID", "mid", "fid"]),
            ("Parents", vec!["ID", "affiliation"]),
            ("PhoneDir", vec!["ID", "number"]),
        ] {
            let mut b = RelationBuilder::new(name);
            for a in attrs {
                b = b.attr(a, DataType::Str);
            }
            db.add_relation(b.build().unwrap()).unwrap();
        }
        db
    }

    /// The paper's running graph: Children — Parents — PhoneDir.
    fn path_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir").with_code("Ph")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(p, ph, parse_expr("PhoneDir.ID = Parents.ID").unwrap())
            .unwrap();
        g
    }

    #[test]
    fn build_and_navigate() {
        let g = path_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.node_by_alias("Parents"), Some(1));
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert!(g.edge_between(0, 1).is_some());
        assert!(g.edge_between(1, 0).is_some());
        assert!(g.edge_between(0, 2).is_none());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut g = path_graph();
        assert!(g.add_node(Node::new("Parents")).is_err());
        // but a copy with a fresh alias is fine
        g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        assert_eq!(g.nodes_of_relation("Parents"), vec![1, 3]);
    }

    #[test]
    fn edge_validation() {
        let mut g = path_graph();
        assert!(g.add_edge(0, 0, parse_expr("TRUE").unwrap()).is_err());
        assert!(g
            .add_edge(0, 1, parse_expr("Children.fid = Parents.ID").unwrap())
            .is_err()); // second edge between same pair
        assert!(g
            .add_edge(0, 2, parse_expr("Children.ID = SBPS.ID").unwrap())
            .is_err()); // references a non-endpoint qualifier
    }

    #[test]
    fn connectivity_checks() {
        let g = path_graph();
        assert!(g.is_connected());
        assert!(g.is_subset_connected(0b011));
        assert!(g.is_subset_connected(0b110));
        assert!(!g.is_subset_connected(0b101)); // Children + PhoneDir, no edge
        assert!(g.is_subset_connected(0b010));
        assert!(!g.is_subset_connected(0));
        let mut disconnected = QueryGraph::new();
        disconnected.add_node(Node::new("Children")).unwrap();
        disconnected.add_node(Node::new("Parents")).unwrap();
        assert!(!disconnected.is_connected());
        assert!(!QueryGraph::new().is_connected());
    }

    #[test]
    fn tree_detection() {
        let mut g = path_graph();
        assert!(g.is_tree());
        let s = g.add_node(Node::new("SBPS").with_code("S")).unwrap();
        assert!(!g.is_tree()); // disconnected
        g.add_edge(0, s, parse_expr("Children.ID = SBPS.ID").unwrap())
            .unwrap();
        assert!(g.is_tree()); // star-ish tree again
    }

    #[test]
    fn connected_order_reaches_all() {
        let g = path_graph();
        assert_eq!(g.connected_order(0).unwrap(), vec![0, 1, 2]);
        assert_eq!(g.connected_order(2).unwrap(), vec![2, 1, 0]);
        let mut disconnected = QueryGraph::new();
        disconnected.add_node(Node::new("Children")).unwrap();
        disconnected.add_node(Node::new("Parents")).unwrap();
        assert!(disconnected.connected_order(0).is_err());
    }

    #[test]
    fn scheme_concatenates_in_node_order() {
        let g = path_graph();
        let s = g.scheme(&db()).unwrap();
        assert_eq!(s.arity(), 7);
        assert_eq!(s.columns()[0].qualified_name(), "Children.ID");
        assert_eq!(s.columns()[6].qualified_name(), "PhoneDir.number");
    }

    #[test]
    fn validate_against_database() {
        let g = path_graph();
        g.validate(&db(), &FuncRegistry::with_builtins()).unwrap();

        // non-strong edge predicate is rejected
        let mut bad = QueryGraph::new();
        let c = bad.add_node(Node::new("Children")).unwrap();
        let p = bad.add_node(Node::new("Parents")).unwrap();
        bad.add_edge(
            c,
            p,
            parse_expr("Children.mid = Parents.ID OR Children.mid IS NULL").unwrap(),
        )
        .unwrap();
        assert!(bad.validate(&db(), &FuncRegistry::with_builtins()).is_err());
    }

    #[test]
    fn validate_rejects_unknown_relation() {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        let k = g.add_node(Node::new("Kids")).unwrap();
        g.add_edge(0, k, parse_expr("Children.ID = Kids.ID").unwrap())
            .unwrap();
        assert!(g.validate(&db(), &FuncRegistry::with_builtins()).is_err());
    }

    #[test]
    fn coverage_tags_match_paper_style() {
        let g = path_graph();
        assert_eq!(g.coverage_tag(0b111), "CPPh");
        assert_eq!(g.coverage_tag(0b110), "PPh");
        assert_eq!(g.coverage_tag(0b001), "C");
        assert_eq!(g.coverage_tag(0), "");
    }

    #[test]
    fn derived_codes() {
        assert_eq!(Node::new("Children").code, "C");
        assert_eq!(Node::copy_of("Parents2", "Parents").code, "P2");
        assert_eq!(Node::new("PhoneDir").code, "Ph"); // CamelCase alias
        assert_eq!(Node::new("SBPS").code, "S"); // all-caps alias
        assert_eq!(Node::new("PhoneDir").with_code("Ph").code, "Ph");
    }

    #[test]
    fn fresh_alias_numbers_copies() {
        let mut g = path_graph();
        assert_eq!(g.fresh_alias("SBPS"), "SBPS");
        assert_eq!(g.fresh_alias("Parents"), "Parents2");
        g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        assert_eq!(g.fresh_alias("Parents"), "Parents3");
    }

    #[test]
    fn display_lists_nodes_and_edges() {
        let s = path_graph().to_string();
        assert!(s.contains("Children, Parents, PhoneDir"));
        assert!(s.contains("edge Children -- Parents : Children.mid = Parents.ID"));
    }

    #[test]
    fn induced_edges_filters_by_mask() {
        let g = path_graph();
        assert_eq!(g.induced_edges(0b111).len(), 2);
        assert_eq!(g.induced_edges(0b011).len(), 1);
        assert_eq!(g.induced_edges(0b101).len(), 0);
    }
}
