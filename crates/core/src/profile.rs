//! Source profiling: compact statistics that orient a user in an
//! unfamiliar source (paper Sec 6: "If a user is unfamiliar with the data
//! source, the amount of data itself may be an obstacle to understanding
//! how to map it").
//!
//! For every attribute: null fraction, distinct-value count, uniqueness
//! (key likelihood), and a few sample values. The profile powers the
//! CLI's `profile` command and gives mining/walk ranking a cheap signal.

use std::collections::HashSet;
use std::fmt::Write as _;

use clio_relational::database::Database;
use clio_relational::value::Value;

/// Statistics for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeProfile {
    /// Relation name.
    pub relation: String,
    /// Attribute name.
    pub attribute: String,
    /// Total rows in the relation.
    pub rows: usize,
    /// Number of null values.
    pub nulls: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Up to three sample values (first occurrences).
    pub samples: Vec<Value>,
}

impl AttributeProfile {
    /// Fraction of rows that are null (0 when the relation is empty).
    #[must_use]
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Does the attribute look like a key (all non-null, all distinct)?
    #[must_use]
    pub fn looks_like_key(&self) -> bool {
        self.rows > 0 && self.nulls == 0 && self.distinct == self.rows
    }
}

/// Profile every attribute of every relation.
#[must_use]
pub fn profile_database(db: &Database) -> Vec<AttributeProfile> {
    let mut out = Vec::new();
    for rel in db.relations() {
        for (ai, attr) in rel.schema().attrs().iter().enumerate() {
            let mut nulls = 0usize;
            let mut distinct: HashSet<&Value> = HashSet::new();
            let mut samples: Vec<Value> = Vec::new();
            for row in rel.rows() {
                let v = &row[ai];
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                if distinct.insert(v) && samples.len() < 3 {
                    samples.push(v.clone());
                }
            }
            out.push(AttributeProfile {
                relation: rel.name().to_owned(),
                attribute: attr.name.clone(),
                rows: rel.len(),
                nulls,
                distinct: distinct.len(),
                samples,
            });
        }
    }
    out
}

/// Render the profile as an aligned text report.
#[must_use]
pub fn render_profile(profiles: &[AttributeProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>7} {:>9} {:>5}  samples",
        "attribute", "rows", "nulls", "distinct", "key?"
    );
    for p in profiles {
        let samples = p
            .samples
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>6.0}% {:>9} {:>5}  {}",
            format!("{}.{}", p.relation, p.attribute),
            p.rows,
            p.null_fraction() * 100.0,
            p.distinct,
            if p.looks_like_key() { "yes" } else { "" },
            samples
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "201".into()])
                .row(vec!["002".into(), "201".into()])
                .row(vec!["004".into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn profiles_count_nulls_and_distincts() {
        let profiles = profile_database(&db());
        assert_eq!(profiles.len(), 2);
        let id = &profiles[0];
        assert_eq!(id.rows, 3);
        assert_eq!(id.nulls, 0);
        assert_eq!(id.distinct, 3);
        assert!(id.looks_like_key());
        let mid = &profiles[1];
        assert_eq!(mid.nulls, 1);
        assert_eq!(mid.distinct, 1);
        assert!(!mid.looks_like_key());
        assert!((mid.null_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn samples_are_first_occurrences_capped_at_three() {
        let profiles = profile_database(&db());
        assert_eq!(profiles[0].samples.len(), 3);
        assert_eq!(profiles[0].samples[0], Value::str("001"));
        assert_eq!(profiles[1].samples, vec![Value::str("201")]);
    }

    #[test]
    fn render_is_aligned_and_flags_keys() {
        let report = render_profile(&profile_database(&db()));
        assert!(report.contains("Children.ID"));
        assert!(report.contains("yes"));
        assert!(report.lines().count() >= 3);
    }

    #[test]
    fn empty_relation_profile_is_sane() {
        let mut database = Database::new();
        database
            .add_relation(
                RelationBuilder::new("Empty")
                    .attr("x", DataType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let profiles = profile_database(&database);
        assert_eq!(profiles[0].rows, 0);
        assert_eq!(profiles[0].null_fraction(), 0.0);
        assert!(!profiles[0].looks_like_key());
    }
}
