//! Schema knowledge: how relations *can* join (paper Sec 5.1).
//!
//! Clio gathers knowledge of potential join conditions "from schema and
//! constraint definitions and from mining the source data, views, stored
//! queries and metadata". Here, knowledge is seeded from declared foreign
//! keys and can be extended with mined or user-asserted join
//! specifications. The data walk operator searches this knowledge graph
//! for paths between relations.

use clio_relational::constraints::ForeignKey;
use clio_relational::database::Database;
use clio_relational::expr::Expr;

/// A potential equijoin between two relations (undirected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// First relation name.
    pub rel_a: String,
    /// Attribute pairs `(a_attr, b_attr)` equated by the join.
    pub attr_pairs: Vec<(String, String)>,
    /// Second relation name.
    pub rel_b: String,
    /// Where the knowledge came from (provenance shown to users).
    pub provenance: Provenance,
}

/// Where a join spec came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Declared foreign key.
    ForeignKey,
    /// Mined from data (e.g. inclusion dependency discovery).
    Mined,
    /// Asserted by the user (e.g. through a data chase confirmation).
    UserAsserted,
}

impl JoinSpec {
    /// A single-attribute spec.
    pub fn simple(
        rel_a: impl Into<String>,
        attr_a: impl Into<String>,
        rel_b: impl Into<String>,
        attr_b: impl Into<String>,
        provenance: Provenance,
    ) -> JoinSpec {
        JoinSpec {
            rel_a: rel_a.into(),
            attr_pairs: vec![(attr_a.into(), attr_b.into())],
            rel_b: rel_b.into(),
            provenance,
        }
    }

    /// Does this spec connect `x` and `y` (in either orientation)?
    #[must_use]
    pub fn connects(&self, x: &str, y: &str) -> bool {
        (self.rel_a == x && self.rel_b == y) || (self.rel_a == y && self.rel_b == x)
    }

    /// The relation on the other end of the spec from `rel`, if any.
    #[must_use]
    pub fn other_end(&self, rel: &str) -> Option<&str> {
        if self.rel_a == rel {
            Some(&self.rel_b)
        } else if self.rel_b == rel {
            Some(&self.rel_a)
        } else {
            None
        }
    }

    /// Instantiate the join predicate for concrete node aliases, where
    /// `alias_a` plays `rel_a` and `alias_b` plays `rel_b`.
    #[must_use]
    pub fn instantiate(&self, alias_a: &str, alias_b: &str) -> Expr {
        Expr::conjunction(
            self.attr_pairs
                .iter()
                .map(|(a, b)| Expr::col_eq(&format!("{alias_a}.{a}"), &format!("{alias_b}.{b}")))
                .collect(),
        )
    }

    /// Instantiate oriented: `from_alias` plays `from_rel`.
    #[must_use]
    pub fn instantiate_from(&self, from_rel: &str, from_alias: &str, to_alias: &str) -> Expr {
        if self.rel_a == from_rel {
            self.instantiate(from_alias, to_alias)
        } else {
            self.instantiate(to_alias, from_alias)
        }
    }
}

/// One step of a walk path: follow `spec` from `from` to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The join spec followed.
    pub spec: JoinSpec,
    /// The relation stepped from.
    pub from: String,
    /// The relation stepped to.
    pub to: String,
}

/// The schema knowledge base: a multigraph over relation names whose
/// edges are [`JoinSpec`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaKnowledge {
    specs: Vec<JoinSpec>,
}

impl SchemaKnowledge {
    /// Empty knowledge.
    #[must_use]
    pub fn new() -> SchemaKnowledge {
        SchemaKnowledge::default()
    }

    /// Seed from a database's declared foreign keys.
    #[must_use]
    pub fn from_database(db: &Database) -> SchemaKnowledge {
        let mut k = SchemaKnowledge::new();
        for fk in &db.constraints.foreign_keys {
            k.add_foreign_key(fk);
        }
        k
    }

    /// Register a foreign key as a join spec.
    pub fn add_foreign_key(&mut self, fk: &ForeignKey) {
        self.add_spec(JoinSpec {
            rel_a: fk.from_relation.clone(),
            attr_pairs: fk
                .from_attrs
                .iter()
                .cloned()
                .zip(fk.to_attrs.iter().cloned())
                .collect(),
            rel_b: fk.to_relation.clone(),
            provenance: Provenance::ForeignKey,
        });
    }

    /// Register a spec (duplicates ignored).
    pub fn add_spec(&mut self, spec: JoinSpec) {
        if !self.specs.contains(&spec) {
            self.specs.push(spec);
        }
    }

    /// All specs.
    #[must_use]
    pub fn specs(&self) -> &[JoinSpec] {
        &self.specs
    }

    /// Specs connecting `a` and `b` (either orientation). Two relations
    /// can be connected by several specs (`Children.mid → Parents.ID` and
    /// `Children.fid → Parents.ID` — the Figure 3 scenarios).
    #[must_use]
    pub fn specs_between(&self, a: &str, b: &str) -> Vec<&JoinSpec> {
        self.specs.iter().filter(|s| s.connects(a, b)).collect()
    }

    /// Relations reachable in one step from `rel`.
    #[must_use]
    pub fn neighbors(&self, rel: &str) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.specs {
            if let Some(o) = s.other_end(rel) {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// Enumerate all simple paths (no repeated relation) from `from` to
    /// `to` with at most `max_steps` steps, as sequences of [`PathStep`]s.
    /// Distinct specs between the same relation pair yield distinct paths.
    #[must_use]
    pub fn paths(&self, from: &str, to: &str, max_steps: usize) -> Vec<Vec<PathStep>> {
        let mut out = Vec::new();
        let mut current: Vec<PathStep> = Vec::new();
        let mut visited: Vec<&str> = vec![from];
        self.dfs(from, to, max_steps, &mut visited, &mut current, &mut out);
        // shortest paths first (the paper ranks by path length)
        out.sort_by_key(Vec::len);
        out
    }

    fn dfs<'a>(
        &'a self,
        at: &'a str,
        to: &str,
        remaining: usize,
        visited: &mut Vec<&'a str>,
        current: &mut Vec<PathStep>,
        out: &mut Vec<Vec<PathStep>>,
    ) {
        if at == to {
            out.push(current.clone());
            return;
        }
        if remaining == 0 {
            return;
        }
        for spec in &self.specs {
            if let Some(next) = spec.other_end(at) {
                if visited.contains(&next) {
                    continue;
                }
                visited.push(next);
                current.push(PathStep {
                    spec: spec.clone(),
                    from: at.to_owned(),
                    to: next.to_owned(),
                });
                self.dfs(next, to, remaining - 1, visited, current, out);
                current.pop();
                visited.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's knowledge: Children.mid/fid → Parents.ID,
    /// PhoneDir.ID → Parents.ID, plus a mined Children.ID = PhoneDir.ID.
    fn knowledge() -> SchemaKnowledge {
        let mut k = SchemaKnowledge::new();
        k.add_spec(JoinSpec::simple(
            "Children",
            "mid",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple(
            "Children",
            "fid",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple(
            "PhoneDir",
            "ID",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple(
            "Children",
            "ID",
            "PhoneDir",
            "ID",
            Provenance::Mined,
        ));
        k
    }

    #[test]
    fn specs_between_finds_both_parent_links() {
        let k = knowledge();
        assert_eq!(k.specs_between("Children", "Parents").len(), 2);
        assert_eq!(k.specs_between("Parents", "Children").len(), 2);
        assert_eq!(k.specs_between("Children", "SBPS").len(), 0);
    }

    #[test]
    fn neighbors_deduplicated() {
        let k = knowledge();
        assert_eq!(k.neighbors("Children"), vec!["Parents", "PhoneDir"]);
        assert_eq!(k.neighbors("SBPS"), Vec::<&str>::new());
    }

    #[test]
    fn paths_children_to_phonedir_match_figure_11() {
        let k = knowledge();
        let paths = k.paths("Children", "PhoneDir", 3);
        // direct (mined), via Parents (mid), via Parents (fid)
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 1); // sorted: direct first
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        // the two 2-step paths differ in the Children–Parents spec used
        assert_ne!(paths[1][0].spec, paths[2][0].spec);
    }

    #[test]
    fn max_steps_limits_search() {
        let k = knowledge();
        let paths = k.paths("Children", "PhoneDir", 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn paths_are_simple_no_relation_repeats() {
        let k = knowledge();
        for p in k.paths("Children", "PhoneDir", 5) {
            let mut rels: Vec<&str> = vec![&p[0].from];
            for step in &p {
                assert!(!rels.contains(&step.to.as_str()));
                rels.push(&step.to);
            }
        }
    }

    #[test]
    fn instantiate_orients_predicates() {
        let spec = JoinSpec::simple("Children", "mid", "Parents", "ID", Provenance::ForeignKey);
        assert_eq!(spec.instantiate("C", "P").to_string(), "C.mid = P.ID");
        assert_eq!(
            spec.instantiate_from("Parents", "Parents2", "Children")
                .to_string(),
            "Children.mid = Parents2.ID"
        );
    }

    #[test]
    fn from_database_uses_foreign_keys() {
        use clio_relational::constraints::ForeignKey;
        use clio_relational::relation::RelationBuilder;
        use clio_relational::value::DataType;

        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr("mid", DataType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr("ID", DataType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints
            .foreign_keys
            .push(ForeignKey::simple("Children", "mid", "Parents", "ID"));
        let k = SchemaKnowledge::from_database(&db);
        assert_eq!(k.specs().len(), 1);
        assert_eq!(k.specs()[0].provenance, Provenance::ForeignKey);
    }

    #[test]
    fn duplicate_specs_ignored() {
        let mut k = knowledge();
        let n = k.specs().len();
        k.add_spec(JoinSpec::simple(
            "Children",
            "mid",
            "Parents",
            "ID",
            Provenance::ForeignKey,
        ));
        assert_eq!(k.specs().len(), n);
    }

    #[test]
    fn unreachable_targets_give_no_paths() {
        let k = knowledge();
        assert!(k.paths("Children", "SBPS", 5).is_empty());
    }
}
