//! Mappings `M = ⟨G, V, C_S, C_T⟩` and their mapping queries (paper
//! Def 3.14).
//!
//! A mapping combines the three activities of mapping construction:
//! *data linking* (the query graph `G`), *determining correspondences*
//! (the value correspondences `V`), and *data trimming* (the source
//! filters `C_S` over the associations and target filters `C_T` over the
//! produced target tuples). The mapping query is
//!
//! ```sql
//! SELECT * FROM (
//!     SELECT v1(...) AS B1, ..., vm(...) AS Bm
//!     FROM D(G)
//!     WHERE c_s1 AND ... AND c_sk
//! ) WHERE c_t1 AND ... AND c_tl
//! ```
//!
//! evaluated here directly over the materialized full disjunction.

use std::fmt;

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::{BoundExpr, Expr};
use clio_relational::funcs::FuncRegistry;
use clio_relational::schema::{RelSchema, Scheme};
use clio_relational::table::Table;
use clio_relational::value::Value;

use crate::association::AssociationSet;
use crate::correspondence::ValueCorrespondence;
use crate::example::Example;
use crate::full_disjunction::{full_disjunction, FdAlgo};
use crate::query_graph::QueryGraph;

/// A schema mapping from a set of source relations to one target relation.
///
/// ```
/// use clio_core::prelude::*;
/// use clio_relational::prelude::*;
///
/// // source: Children(ID, mid), Parents(ID, affiliation)
/// let mut db = Database::new();
/// db.add_relation(
///     RelationBuilder::new("Children")
///         .attr_not_null("ID", DataType::Str)
///         .attr("mid", DataType::Str)
///         .row(vec!["002".into(), "203".into()])
///         .row(vec!["004".into(), Value::Null])
///         .build()
///         .unwrap(),
/// )
/// .unwrap();
/// db.add_relation(
///     RelationBuilder::new("Parents")
///         .attr_not_null("ID", DataType::Str)
///         .attr("affiliation", DataType::Str)
///         .row(vec!["203".into(), "Almaden".into()])
///         .build()
///         .unwrap(),
/// )
/// .unwrap();
///
/// // M = <G, V, C_S, C_T>
/// let mut g = QueryGraph::new();
/// let c = g.add_node(Node::new("Children")).unwrap();
/// let p = g.add_node(Node::new("Parents")).unwrap();
/// g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap()).unwrap();
/// let target = RelSchema::new(
///     "Kids",
///     vec![
///         Attribute::not_null("ID", DataType::Str),
///         Attribute::new("affiliation", DataType::Str),
///     ],
/// )
/// .unwrap();
/// let mapping = Mapping::new(g, target)
///     .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
///     .with_correspondence(ValueCorrespondence::identity("Parents.affiliation", "affiliation"))
///     .with_target_not_null_filters();
///
/// let funcs = FuncRegistry::with_builtins();
/// mapping.validate(&db, &funcs).unwrap();
/// let out = mapping.evaluate(&db, &funcs).unwrap();
/// assert_eq!(out.len(), 2); // Maya with Almaden, motherless 004 with null
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// The query graph `G` (data linking).
    pub graph: QueryGraph,
    /// The value correspondences `V`.
    pub correspondences: Vec<ValueCorrespondence>,
    /// Source filters `C_S` — predicates over the data associations.
    pub source_filters: Vec<Expr>,
    /// Target filters `C_T` — predicates over the produced target tuples.
    pub target_filters: Vec<Expr>,
    /// The target relation scheme `T(B1, …, Bm)`.
    pub target: RelSchema,
}

impl Mapping {
    /// A mapping with no correspondences and no filters.
    #[must_use]
    pub fn new(graph: QueryGraph, target: RelSchema) -> Mapping {
        Mapping {
            graph,
            correspondences: Vec::new(),
            source_filters: Vec::new(),
            target_filters: Vec::new(),
            target,
        }
    }

    /// Builder-style: add or replace the correspondence for a target
    /// attribute. (The interactive operator layer in
    /// [`operators`](crate::operators) additionally spawns alternative
    /// mappings when a second correspondence arrives for the same
    /// attribute; this method is the raw mutation.)
    #[must_use]
    pub fn with_correspondence(mut self, v: ValueCorrespondence) -> Mapping {
        self.set_correspondence(v);
        self
    }

    /// Add or replace the correspondence for `v.target_attr`.
    pub fn set_correspondence(&mut self, v: ValueCorrespondence) {
        match self
            .correspondences
            .iter_mut()
            .find(|c| c.target_attr == v.target_attr)
        {
            Some(slot) => *slot = v,
            None => self.correspondences.push(v),
        }
    }

    /// The correspondence populating `attr`, if any.
    #[must_use]
    pub fn correspondence_for(&self, attr: &str) -> Option<&ValueCorrespondence> {
        self.correspondences.iter().find(|c| c.target_attr == attr)
    }

    /// Builder-style: add a source filter.
    #[must_use]
    pub fn with_source_filter(mut self, e: Expr) -> Mapping {
        self.source_filters.push(e);
        self
    }

    /// Builder-style: add a target filter.
    #[must_use]
    pub fn with_target_filter(mut self, e: Expr) -> Mapping {
        self.target_filters.push(e);
        self
    }

    /// Add `B IS NOT NULL` target filters for every `NOT NULL` attribute
    /// of the target schema — how Clio turns target constraints into data
    /// trimming (paper Sec 2: "a target constraint may indicate that every
    /// Kid tuple must have an ID value").
    #[must_use]
    pub fn with_target_not_null_filters(mut self) -> Mapping {
        for attr in self.target.attrs() {
            if attr.not_null {
                let e = Expr::IsNull {
                    expr: Box::new(Expr::col(&format!("{}.{}", self.target.name(), attr.name))),
                    negated: true,
                };
                if !self.target_filters.contains(&e) {
                    self.target_filters.push(e);
                }
            }
        }
        self
    }

    /// The mapping `φ(M) = ⟨G, V, ∅, ∅⟩` without any filters (paper
    /// Sec 4.1) — used to compute the target tuple of *negative* examples.
    #[must_use]
    pub fn without_filters(&self) -> Mapping {
        Mapping {
            graph: self.graph.clone(),
            correspondences: self.correspondences.clone(),
            source_filters: Vec::new(),
            target_filters: Vec::new(),
            target: self.target.clone(),
        }
    }

    /// The target relation's scheme, qualified by the target name.
    #[must_use]
    pub fn target_scheme(&self) -> Scheme {
        Scheme::of_relation(&self.target, self.target.name())
    }

    /// Validate every component against the database.
    pub fn validate(&self, db: &Database, funcs: &FuncRegistry) -> Result<()> {
        self.graph.validate(db, funcs)?;
        let scheme = self.graph.scheme(db)?;
        for v in &self.correspondences {
            v.validate(&scheme, &self.target)?;
        }
        let mut seen: Vec<&str> = Vec::new();
        for v in &self.correspondences {
            if seen.contains(&v.target_attr.as_str()) {
                return Err(Error::Invalid(format!(
                    "two correspondences for target attribute `{}` within one mapping; \
                     alternative computations belong in separate mappings (paper Sec 6.2)",
                    v.target_attr
                )));
            }
            seen.push(&v.target_attr);
        }
        for e in &self.source_filters {
            e.bind(&scheme)?;
        }
        let tscheme = self.target_scheme();
        for e in &self.target_filters {
            e.bind(&tscheme)?;
        }
        Ok(())
    }

    /// Materialize the data associations `D(G)` of this mapping's graph.
    pub fn associations(
        &self,
        db: &Database,
        algo: FdAlgo,
        funcs: &FuncRegistry,
    ) -> Result<AssociationSet> {
        full_disjunction(db, &self.graph, algo, funcs)
    }

    /// Like [`Mapping::associations`], routed through an incremental
    /// cache. `None` (or a disabled cache) is exactly the uncached path.
    pub fn associations_cached(
        &self,
        db: &Database,
        algo: FdAlgo,
        funcs: &FuncRegistry,
        cache: Option<&clio_incr::EvalCache>,
    ) -> Result<AssociationSet> {
        crate::incremental::full_disjunction_cached(db, &self.graph, algo, funcs, cache)
    }

    /// Prepare an evaluator with all expressions bound.
    pub fn evaluator(&self, db: &Database, funcs: &FuncRegistry) -> Result<MappingEvaluator> {
        MappingEvaluator::new(self, db, funcs)
    }

    /// Evaluate the mapping query: the subset of the target relation this
    /// mapping produces (paper Def 3.14). Result rows are distinct.
    pub fn evaluate(&self, db: &Database, funcs: &FuncRegistry) -> Result<Table> {
        self.evaluate_cached(db, funcs, None)
    }

    /// Like [`Mapping::evaluate`], routed through an incremental cache:
    /// the result table is memoized per full mapping state, and the
    /// underlying `D(G)` per graph, so repeating an evaluation — or
    /// re-evaluating after a change that left the graph intact — skips
    /// the joins. `None` is exactly the uncached path.
    pub fn evaluate_cached(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&clio_incr::EvalCache>,
    ) -> Result<Table> {
        let _span = clio_obs::span("mapping.evaluate");
        let cache = cache.filter(|c| c.enabled());
        let fp = cache.map(|c| crate::incremental::mapping_fingerprint(self, c));
        if let (Some(c), Some(fp)) = (cache, fp) {
            if let Some(table) = c.get(fp) {
                return Ok(table);
            }
        }
        let t0 = std::time::Instant::now();
        let assocs = self.associations_cached(db, FdAlgo::Auto, funcs, cache)?;
        // Exclusive cost: the association step memoizes its own layers,
        // so this entry is charged only the projection/filter work a
        // recompute would redo when those layers are warm. Charging the
        // whole pipeline would double-count the children and hand this
        // low-reuse aggregate an inflated eviction priority.
        let inner_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let eval = self.evaluator(db, funcs)?;
        let mut out = Table::empty(self.target_scheme());
        for i in 0..assocs.len() {
            if let Some(row) = eval.target_row_if_passing(assocs.row(i), funcs)? {
                out.push_distinct(row);
            }
        }
        if let (Some(c), Some(fp)) = (cache, fp) {
            let cost_ns = u64::try_from(t0.elapsed().as_nanos())
                .unwrap_or(u64::MAX)
                .saturating_sub(inner_ns);
            c.insert_costed(
                fp,
                crate::incremental::relation_deps(&self.graph),
                &out,
                cost_ns,
            );
        }
        Ok(out)
    }

    /// Evaluate the mapping query through the planner: build a
    /// [`Plan`](crate::plan::Plan), apply its rewrites (filter pushdown
    /// past the minimum union, warmth-guided subgraph ordering), and
    /// run it. Byte-identical to [`Mapping::evaluate`] by construction;
    /// a property test in `tests/properties.rs` pins this.
    pub fn evaluate_planned(&self, db: &Database, funcs: &FuncRegistry) -> Result<Table> {
        self.evaluate_planned_cached(db, funcs, None)
    }

    /// Like [`Mapping::evaluate_planned`], with the per-subgraph `F(J)`
    /// layers and the final result served from an incremental cache.
    /// The result entry lives under a `"Q(M).plan"` fingerprint,
    /// distinct from the definitional `"Q(M)"` entry.
    pub fn evaluate_planned_cached(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&clio_incr::EvalCache>,
    ) -> Result<Table> {
        let plan = crate::plan::Plan::new(self, db, funcs, cache)?;
        plan.evaluate(db, funcs, cache)
    }

    /// Generate all examples of the mapping (paper Def 4.1): one per data
    /// association `d`, with target tuple `Q_{φ(M)}(d)` and positive flag
    /// `d ⊨ C_S ∧ t ⊨ C_T`.
    pub fn examples(&self, db: &Database, funcs: &FuncRegistry) -> Result<Vec<Example>> {
        self.examples_cached(db, funcs, None)
    }

    /// Like [`Mapping::examples`], with the `D(G)` the population is
    /// built over served from an incremental cache when available.
    pub fn examples_cached(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&clio_incr::EvalCache>,
    ) -> Result<Vec<Example>> {
        let _span = clio_obs::span("mapping.examples");
        let assocs = self.associations_cached(db, FdAlgo::Auto, funcs, cache)?;
        self.examples_for(&assocs, db, funcs)
    }

    /// Examples over a pre-computed association set.
    pub fn examples_for(
        &self,
        assocs: &AssociationSet,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<Vec<Example>> {
        let eval = self.evaluator(db, funcs)?;
        let mut out = Vec::with_capacity(assocs.len());
        for i in 0..assocs.len() {
            let row = assocs.row(i);
            let target = eval.target_row(row, funcs)?;
            let positive = eval.passes_filters(row, &target, funcs)?;
            out.push(Example {
                association: row.to_vec(),
                coverage: assocs.coverage(i),
                target,
                positive,
            });
        }
        Ok(out)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mapping -> {}", self.target.name())?;
        write!(f, "{}", self.graph)?;
        for v in &self.correspondences {
            writeln!(f, "corr {v}")?;
        }
        for e in &self.source_filters {
            writeln!(f, "where (source) {e}")?;
        }
        for e in &self.target_filters {
            writeln!(f, "where (target) {e}")?;
        }
        Ok(())
    }
}

/// A mapping with every expression bound against its schemes, ready for
/// repeated evaluation over association rows.
pub struct MappingEvaluator {
    /// one slot per target attribute: the bound correspondence, or `None`
    /// (attribute not mapped → null)
    slots: Vec<Option<BoundExpr>>,
    source_filters: Vec<BoundExpr>,
    target_filters: Vec<BoundExpr>,
}

impl MappingEvaluator {
    fn new(mapping: &Mapping, db: &Database, _funcs: &FuncRegistry) -> Result<MappingEvaluator> {
        let scheme = mapping.graph.scheme(db)?;
        let tscheme = mapping.target_scheme();
        let mut slots = Vec::with_capacity(mapping.target.arity());
        for attr in mapping.target.attrs() {
            let slot = match mapping.correspondence_for(&attr.name) {
                Some(v) => Some(v.expr.bind(&scheme)?),
                None => None,
            };
            slots.push(slot);
        }
        Ok(MappingEvaluator {
            slots,
            source_filters: mapping
                .source_filters
                .iter()
                .map(|e| e.bind(&scheme))
                .collect::<Result<_>>()?,
            target_filters: mapping
                .target_filters
                .iter()
                .map(|e| e.bind(&tscheme))
                .collect::<Result<_>>()?,
        })
    }

    /// Compute the target tuple for an association row (no filters —
    /// `Q_{φ(M)}(d)`).
    pub fn target_row(&self, assoc: &[Value], funcs: &FuncRegistry) -> Result<Vec<Value>> {
        self.slots
            .iter()
            .map(|slot| match slot {
                None => Ok(Value::Null),
                Some(b) => b.eval(assoc, funcs),
            })
            .collect()
    }

    /// Do the filters accept `(assoc, target)`?
    pub fn passes_filters(
        &self,
        assoc: &[Value],
        target: &[Value],
        funcs: &FuncRegistry,
    ) -> Result<bool> {
        for f in &self.source_filters {
            if !f.eval_truth(assoc, funcs)?.passes() {
                return Ok(false);
            }
        }
        for f in &self.target_filters {
            if !f.eval_truth(target, funcs)?.passes() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The full mapping query on one association: `Some(target_row)` when
    /// all filters pass, `None` otherwise.
    pub fn target_row_if_passing(
        &self,
        assoc: &[Value],
        funcs: &FuncRegistry,
    ) -> Result<Option<Vec<Value>>> {
        let target = self.target_row(assoc, funcs)?;
        Ok(if self.passes_filters(assoc, &target, funcs)? {
            Some(target)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::Node;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::Attribute;
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("name", DataType::Str)
                .attr("age", DataType::Int)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "Anna".into(), 6i64.into(), "201".into()])
                .row(vec!["002".into(), "Maya".into(), 4i64.into(), "202".into()])
                .row(vec!["003".into(), "Ben".into(), 9i64.into(), "201".into()])
                .row(vec!["004".into(), "Tom".into(), 5i64.into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("name", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g
    }

    fn mapping() -> Mapping {
        Mapping::new(graph(), target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_source_filter(parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn validates() {
        mapping().validate(&db(), &funcs()).unwrap();
    }

    #[test]
    fn not_null_filters_derived_from_target_schema() {
        let m = mapping();
        assert_eq!(m.target_filters.len(), 1);
        assert_eq!(m.target_filters[0].to_string(), "Kids.ID IS NOT NULL");
        // idempotent
        let m2 = m.clone().with_target_not_null_filters();
        assert_eq!(m2.target_filters.len(), 1);
    }

    #[test]
    fn evaluate_produces_target_subset() {
        let out = mapping().evaluate(&db(), &funcs()).unwrap();
        // children under 7: Anna(6), Maya(4), Tom(5, motherless).
        // Ben(9) trimmed by the source filter; parent 205 association
        // trimmed by Kids.ID IS NOT NULL.
        assert_eq!(out.len(), 3);
        let names: Vec<String> = out.rows().iter().map(|r| r[1].to_string()).collect();
        assert!(names.contains(&"Anna".to_owned()));
        assert!(names.contains(&"Maya".to_owned()));
        assert!(names.contains(&"Tom".to_owned()));
        // Tom has no mother, so his affiliation is null
        let tom = out
            .rows()
            .iter()
            .find(|r| r[1] == Value::str("Tom"))
            .unwrap();
        assert!(tom[2].is_null());
    }

    #[test]
    fn unmapped_target_attributes_are_null() {
        let m = Mapping::new(graph(), target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let out = m.evaluate(&db(), &funcs()).unwrap();
        assert!(out.rows().iter().all(|r| r[1].is_null() && r[2].is_null()));
    }

    #[test]
    fn examples_classify_positive_and_negative() {
        let examples = mapping().examples(&db(), &funcs()).unwrap();
        // 5 associations: 4 child rows (3 with mothers incl Ben, Tom alone)
        // + parent 205 alone
        assert_eq!(examples.len(), 5);
        let positives = examples.iter().filter(|e| e.positive).count();
        assert_eq!(positives, 3);
        // Ben's example is negative with a *computed* target tuple
        let ben = examples
            .iter()
            .find(|e| e.target.first() == Some(&Value::str("003")))
            .unwrap();
        assert!(!ben.positive);
        assert_eq!(ben.target[1], Value::str("Ben"));
        // parent 205's example is negative because Kids.ID is null
        let alone = examples.iter().find(|e| e.coverage == 0b10).unwrap();
        assert!(!alone.positive);
        assert!(alone.target[0].is_null());
    }

    #[test]
    fn without_filters_is_phi_of_m() {
        let phi = mapping().without_filters();
        assert!(phi.source_filters.is_empty());
        assert!(phi.target_filters.is_empty());
        let out = phi.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(out.len(), 5); // everything, including Ben and 205-alone
    }

    #[test]
    fn set_correspondence_replaces_existing() {
        let mut m = mapping();
        m.set_correspondence(ValueCorrespondence::identity("Parents.ID", "affiliation"));
        assert_eq!(m.correspondences.len(), 3);
        assert_eq!(
            m.correspondence_for("affiliation")
                .unwrap()
                .expr
                .to_string(),
            "Parents.ID"
        );
    }

    #[test]
    fn duplicate_correspondences_rejected_by_validate() {
        let mut m = mapping();
        m.correspondences
            .push(ValueCorrespondence::identity("Parents.ID", "ID"));
        assert!(m.validate(&db(), &funcs()).is_err());
    }

    #[test]
    fn validate_catches_bad_filters() {
        let m = mapping().with_source_filter(parse_expr("SBPS.time = '8:00'").unwrap());
        assert!(m.validate(&db(), &funcs()).is_err());
        let m = mapping().with_target_filter(parse_expr("Kids.BusSchedule IS NULL").unwrap());
        assert!(m.validate(&db(), &funcs()).is_err());
    }

    #[test]
    fn display_mentions_all_components() {
        let s = mapping().to_string();
        assert!(s.contains("mapping -> Kids"));
        assert!(s.contains("corr Children.ID -> ID"));
        assert!(s.contains("where (source) Children.age < 7"));
        assert!(s.contains("where (target) Kids.ID IS NOT NULL"));
    }
}
