//! Incremental evaluation: structural fingerprints for query graphs and
//! mappings, and cache-routed full disjunction.
//!
//! The paper's interactive loop (Sec 5.3, Sec 6) refines one mapping
//! state into the next — each operator changes a single edge, filter, or
//! correspondence, so most per-subgraph full data associations `F(J)`
//! and most mapping-query results survive the step unchanged. This
//! module keys those results by **structural fingerprints** and stores
//! them in a [`clio_incr::EvalCache`]:
//!
//! * `F(J)` — one entry per induced connected subgraph, keyed by the
//!   subgraph's node aliases/relations, its induced edge predicates, and
//!   a content version per base relation. Cached *unpadded*, so growing
//!   the graph reuses every old subgraph and computes only the ones
//!   touching new nodes or edges.
//! * `D(G)` — the assembled full disjunction per graph and algorithm.
//! * `Q(M)` — the evaluated mapping query per full mapping state
//!   (graph + correspondences + source filters + target filters).
//!
//! Every cached path is byte-identical to the uncached one: lookups are
//! keyed by exactly the ingredients the computation reads, assembly
//! happens in the same canonical order, and a property test in
//! `tests/properties.rs` replays random operator sequences cache-on vs.
//! cache-off. See `docs/incremental.md` for the full scheme.

use clio_incr::{EvalCache, Fingerprint, FingerprintBuilder, LookupTier};
use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::error::Result;
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::{minimum_union_all, pad_to};
use clio_relational::table::Table;

use crate::association::AssociationSet;
use crate::full_disjunction::{
    engine_subsumption, full_associations, full_disjunction, full_disjunction_outer_join, FdAlgo,
};
use crate::mapping::Mapping;
use crate::query_graph::QueryGraph;
use crate::subgraph::connected_subsets;

/// Mix a graph's full structure into a fingerprint: every node (alias,
/// stored relation, content version) in id order, every edge (endpoint
/// ids, predicate text) in insertion order, plus the cache epoch. Node
/// and edge *order* are deliberately part of the digest — join order,
/// and therefore output column and row order, depend on them.
fn hash_graph(fp: &mut FingerprintBuilder, graph: &QueryGraph, cache: &EvalCache) {
    fp.number(cache.epoch());
    for n in graph.nodes() {
        fp.text(&n.alias)
            .text(&n.relation)
            .number(cache.version(&n.relation));
    }
    for e in graph.edges() {
        fp.number(e.a as u64)
            .number(e.b as u64)
            .text(&e.predicate.to_string());
    }
}

/// Fingerprint of the full data associations `F(J)` of the induced
/// subgraph `mask`: the member nodes (with ids, so the join order is
/// captured), the induced edges, and the content versions involved.
#[must_use]
pub fn subgraph_fingerprint(graph: &QueryGraph, mask: u64, cache: &EvalCache) -> Fingerprint {
    let mut fp = FingerprintBuilder::new("F(J)");
    fp.number(cache.epoch());
    for (i, n) in graph.nodes().iter().enumerate() {
        if mask & (1 << i) != 0 {
            fp.number(i as u64)
                .text(&n.alias)
                .text(&n.relation)
                .number(cache.version(&n.relation));
        }
    }
    for e in graph.edges() {
        if mask & (1 << e.a) != 0 && mask & (1 << e.b) != 0 {
            fp.number(e.a as u64)
                .number(e.b as u64)
                .text(&e.predicate.to_string());
        }
    }
    fp.finish()
}

/// Fingerprint of the assembled `D(G)` under a given algorithm tag
/// (`"D(G).tree"` / `"D(G).naive"` — the two plans emit different row
/// orders, so they must not share entries).
#[must_use]
pub fn graph_fingerprint(graph: &QueryGraph, cache: &EvalCache, tag: &str) -> Fingerprint {
    let mut fp = FingerprintBuilder::new(tag);
    hash_graph(&mut fp, graph, cache);
    fp.finish()
}

/// Fingerprint of a full mapping query `Q(M)`: the graph plus the
/// correspondences, source filters, target filters, and target schema.
#[must_use]
pub fn mapping_fingerprint(mapping: &Mapping, cache: &EvalCache) -> Fingerprint {
    mapping_fingerprint_tagged(mapping, cache, "Q(M)")
}

/// [`mapping_fingerprint`] under a caller-chosen domain tag. The planned
/// evaluator stores its results under `"Q(M).plan"` so the two pipelines
/// never serve each other's entries even though they are byte-identical
/// by construction — a deliberate safety margin, not a semantic need.
#[must_use]
pub(crate) fn mapping_fingerprint_tagged(
    mapping: &Mapping,
    cache: &EvalCache,
    tag: &str,
) -> Fingerprint {
    let mut fp = FingerprintBuilder::new(tag);
    hash_graph(&mut fp, &mapping.graph, cache);
    for v in &mapping.correspondences {
        fp.text(&v.expr.to_string()).text(&v.target_attr);
    }
    for e in &mapping.source_filters {
        fp.text(&e.to_string());
    }
    for e in &mapping.target_filters {
        fp.text(&e.to_string());
    }
    fp.text(&mapping.target.to_string());
    fp.finish()
}

/// The base relations a graph's evaluation reads (sorted, deduplicated)
/// — the dependency set declared on cache entries.
#[must_use]
pub fn relation_deps(graph: &QueryGraph) -> Vec<String> {
    let mut deps: Vec<String> = graph.nodes().iter().map(|n| n.relation.clone()).collect();
    deps.sort_unstable();
    deps.dedup();
    deps
}

pub(crate) fn mask_deps(graph: &QueryGraph, mask: u64) -> Vec<String> {
    let mut deps: Vec<String> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, n)| n.relation.clone())
        .collect();
    deps.sort_unstable();
    deps.dedup();
    deps
}

/// Row-count fallback when no sibling cost history exists: the product
/// of the member relations' sizes (saturating), a proxy for the join
/// work `full_associations` will do on the subgraph.
pub(crate) fn heuristic_cost(db: &Database, graph: &QueryGraph, mask: u64) -> u64 {
    let mut est: u64 = 1;
    for (i, n) in graph.nodes().iter().enumerate() {
        if mask & (1 << i) != 0 {
            let rows = db.relation(&n.relation).map_or(1, |r| r.len() as u64);
            est = est.saturating_mul(rows.max(1));
        }
    }
    est
}

/// The naive `D(G)` plan with per-subgraph memoization and
/// warmth-guided scheduling. A non-promoting [`EvalCache::peek`] scan
/// first plans the fan-out: expected-warm subgraphs will be served
/// inline, expected-cold ones get a cost estimate (sibling-entry
/// history via [`EvalCache::estimate_cost`], falling back to a
/// row-count heuristic). The counted lookups then run in canonical
/// subgraph order — counter semantics identical to the unscheduled plan
/// — and the misses are dispatched to the worker pool
/// longest-estimated-first, so a straggler subgraph no longer
/// serializes the tail of the fan-out. Each computed subgraph's
/// recompute time is measured and recorded on its cache entry, feeding
/// cost-aware eviction. Assembly — padding then one n-ary minimum union
/// — runs in the same order as the uncached plan, so the output is
/// byte-identical. `fd.subgraphs` counts only the subgraphs actually
/// computed.
///
/// Returns the association set together with the summed compute time of
/// the subgraphs evaluated this call, so the caller can charge its own
/// graph-level cache entry the *exclusive* assembly cost rather than
/// double-counting work already priced on the children.
fn full_disjunction_naive_cached(
    db: &Database,
    graph: &QueryGraph,
    funcs: &FuncRegistry,
    cache: &EvalCache,
) -> Result<(AssociationSet, u64)> {
    let _span = clio_obs::span("fd.naive");
    let scheme = graph.scheme(db)?;
    let masks = connected_subsets(graph);
    let fps: Vec<Fingerprint> = masks
        .iter()
        .map(|&mask| subgraph_fingerprint(graph, mask, cache))
        .collect();
    // Warmth pre-probe: peek perturbs no recency/priority order and
    // counts nothing, so planning the dispatch cannot change which
    // entries the eviction policy keeps. Estimates are pinned here,
    // before any counted lookup warms the memory tier and shifts the
    // sibling history mid-plan.
    let estimates: Vec<u64> = masks
        .iter()
        .zip(&fps)
        .map(|(&mask, &fp)| {
            if cache.peek(fp).is_some() {
                0 // expected warm: served inline below, never dispatched
            } else {
                cache
                    .estimate_cost(&mask_deps(graph, mask))
                    .unwrap_or_else(|| heuristic_cost(db, graph, mask))
            }
        })
        .collect();
    let mut slots: Vec<Option<Table>> = fps.iter().map(|&fp| cache.get(fp)).collect();
    let missing: Vec<(usize, u64)> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(i, _)| (i, masks[i]))
        .collect();
    let mut children_ns: u64 = 0;
    if !missing.is_empty() {
        // Longest-estimated-first dispatch; results return in input
        // order, so the scheduling decision is answer-invisible.
        let mut order: Vec<usize> = (0..missing.len()).collect();
        order.sort_by_key(|&pos| (std::cmp::Reverse(estimates[missing[pos].0]), pos));
        let fresh: Vec<(Table, u64)> = clio_relational::exec::map_slice_prioritized(
            &missing,
            &order,
            "fd.naive.worker",
            |_, &(_, mask)| -> Result<(Table, u64)> {
                // Unconditional timing (unlike hist::start, which is
                // trace-gated): the cost model needs real measurements
                // even when tracing is off.
                let t0 = std::time::Instant::now();
                let table = full_associations(db, graph, mask, funcs)?;
                let cost_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                Ok((table, cost_ns))
            },
        )
        .into_iter()
        .collect::<Result<_>>()?;
        metrics::add(Counter::SubgraphsEnumerated, fresh.len() as u64);
        let tracing = clio_obs::trace::trace_enabled();
        for (&(i, mask), (table, cost_ns)) in missing.iter().zip(&fresh) {
            children_ns = children_ns.saturating_add(*cost_ns);
            cache.insert_costed(
                subgraph_fingerprint(graph, mask, cache),
                mask_deps(graph, mask),
                table,
                *cost_ns,
            );
            if tracing {
                clio_obs::hist::record("incr.fd.scheduled", *cost_ns);
            }
            slots[i] = Some(table.clone());
        }
    }
    let padded: Vec<Table> = slots
        .iter()
        .map(|t| pad_to(t.as_ref().expect("all slots filled"), &scheme))
        .collect::<Result<_>>()?;
    let refs: Vec<&Table> = padded.iter().collect();
    let table = minimum_union_all(&refs, engine_subsumption())?;
    Ok((AssociationSet::from_table(graph, table), children_ns))
}

/// Compute `D(G)` through the cache. `cache: None` (or a disabled
/// cache) takes exactly the uncached [`full_disjunction`] path. With a
/// live cache, the assembled result is memoized per graph+algorithm,
/// and the naive plan additionally memoizes per-subgraph `F(J)`s so an
/// edit to one relation recomputes only the subgraphs touching it.
pub fn full_disjunction_cached(
    db: &Database,
    graph: &QueryGraph,
    algo: FdAlgo,
    funcs: &FuncRegistry,
    cache: Option<&EvalCache>,
) -> Result<AssociationSet> {
    let Some(cache) = cache.filter(|c| c.enabled()) else {
        return full_disjunction(db, graph, algo, funcs);
    };
    let algo = match algo {
        FdAlgo::Auto if graph.is_tree() => FdAlgo::OuterJoin,
        FdAlgo::Auto => FdAlgo::Naive,
        chosen => chosen,
    };
    let _span = clio_obs::span("incr.fd");
    let tag = match algo {
        FdAlgo::OuterJoin => "D(G).tree",
        _ => "D(G).naive",
    };
    let fp = graph_fingerprint(graph, cache, tag);
    // Cache-tier timing: while tracing is on, the whole lookup — and,
    // on a miss, the recompute + insert — lands in a per-tier latency
    // histogram, the cost data the recompute-cost eviction model wants.
    let timer = clio_obs::hist::start();
    let (cached, tier) = cache.get_tiered(fp);
    if let Some(table) = cached {
        clio_obs::hist::finish(
            match tier {
                LookupTier::Memory => "incr.fd.memory_hit",
                _ => "incr.fd.disk_hit",
            },
            timer,
        );
        return Ok(AssociationSet::from_table(graph, table));
    }
    let t0 = std::time::Instant::now();
    // The naive plan memoizes its subgraphs individually, so the
    // graph-level entry is charged only the exclusive assembly cost
    // (padding + minimum union); the tree plan has no cached children
    // and carries its full compute time.
    let (set, children_ns) = match algo {
        FdAlgo::OuterJoin => (full_disjunction_outer_join(db, graph, funcs)?, 0),
        _ => full_disjunction_naive_cached(db, graph, funcs, cache)?,
    };
    let cost_ns = u64::try_from(t0.elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .saturating_sub(children_ns);
    cache.insert_costed(fp, relation_deps(graph), set.table(), cost_ns);
    clio_obs::hist::finish("incr.fd.cold", timer);
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::Node;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "201".into()])
                .row(vec!["002".into(), "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("PhoneDir")
                .attr_not_null("ID", DataType::Str)
                .attr("number", DataType::Str)
                .row(vec!["201".into(), "555-0101".into()])
                .row(vec!["202".into(), "555-0102".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn tree_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g
    }

    fn cyclic_graph() -> QueryGraph {
        let mut g = tree_graph();
        let ph = g.add_node(Node::new("PhoneDir").with_code("Ph")).unwrap();
        g.add_edge(1, ph, parse_expr("PhoneDir.ID = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(0, ph, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        g
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn cached_fd_is_byte_identical_on_trees_and_cycles() {
        for g in [tree_graph(), cyclic_graph()] {
            let cache = EvalCache::new();
            let plain = full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
            for _ in 0..2 {
                let cached =
                    full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache))
                        .unwrap();
                assert_eq!(plain.table().scheme(), cached.table().scheme());
                assert_eq!(plain.table().rows(), cached.table().rows());
            }
            assert!(cache.stats().hits >= 1, "second run must hit");
        }
    }

    #[test]
    fn version_bump_recomputes_only_affected_subgraphs() {
        let g = cyclic_graph();
        let cache = EvalCache::new();
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        let cold_misses = cache.stats().misses;
        // a PhoneDir edit keeps every Children/Parents-only subgraph
        cache.bump_version("PhoneDir");
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        let warm = cache.stats();
        let warm_misses = warm.misses - cold_misses;
        assert!(
            warm_misses < cold_misses,
            "post-edit run should reuse untouched subgraphs \
             (cold {cold_misses} vs warm {warm_misses})"
        );
        assert!(warm.hits >= 1, "untouched subgraphs must be served");
        assert!(warm.invalidations >= 1);
        // and the recomputed result is still correct
        let plain = full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
        let cached =
            full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        assert_eq!(plain.table().rows(), cached.table().rows());
    }

    #[test]
    fn cache_tiers_record_distinct_histogram_keys() {
        let _guard = crate::obs_testutil::lock();
        clio_obs::set_trace_enabled(true);
        clio_obs::clear_histograms();
        let g = tree_graph();
        let cache = EvalCache::new();
        let store = std::sync::Arc::new(clio_incr::MemStore::new());
        cache.set_store(Some(store));
        // cold: computes and spills
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        // disk hit: memory dropped, the store answers
        cache.clear();
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        // memory hit: the disk load warmed the memory tier
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        clio_obs::set_trace_enabled(false);
        let _ = clio_obs::take_spans();
        clio_obs::clear_events();
        let hists = clio_obs::snapshot_histograms();
        clio_obs::clear_histograms();
        for key in ["incr.fd.cold", "incr.fd.disk_hit", "incr.fd.memory_hit"] {
            let (_, h) = hists
                .iter()
                .find(|(n, _)| *n == key)
                .unwrap_or_else(|| panic!("missing histogram key {key}"));
            assert!(h.count >= 1, "{key} recorded nothing");
        }
        let s = cache.stats();
        assert!(s.hits >= 1, "memory tier never hit: {s:?}");
    }

    #[test]
    fn cold_runs_record_entry_costs_and_scheduled_histogram() {
        let _guard = crate::obs_testutil::lock();
        clio_obs::set_trace_enabled(true);
        clio_obs::clear_histograms();
        let g = cyclic_graph(); // non-tree: takes the scheduled naive plan
        let cache = EvalCache::new();
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        clio_obs::set_trace_enabled(false);
        let _ = clio_obs::take_spans();
        clio_obs::clear_events();
        let hists = clio_obs::snapshot_histograms();
        clio_obs::clear_histograms();
        let (_, h) = hists
            .iter()
            .find(|(n, _)| *n == "incr.fd.scheduled")
            .expect("cold naive run must record scheduled-subgraph costs");
        let n_subgraphs = connected_subsets(&g).len() as u64;
        assert_eq!(h.count, n_subgraphs, "one cost per computed subgraph");
        // the measured costs seeded the cache's cost model
        assert!(
            cache.estimate_cost(&relation_deps(&g)).is_some(),
            "subgraph entries must carry measured costs"
        );
    }

    #[test]
    fn warm_subgraphs_are_never_dispatched() {
        let _guard = crate::obs_testutil::lock();
        clio_obs::set_trace_enabled(true);
        let g = cyclic_graph();
        let cache = EvalCache::new();
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        clio_obs::clear_histograms();
        // a PhoneDir edit leaves the Children/Parents subgraphs warm:
        // only the PhoneDir-touching ones may be scheduled
        cache.bump_version("PhoneDir");
        full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        clio_obs::set_trace_enabled(false);
        let _ = clio_obs::take_spans();
        clio_obs::clear_events();
        let hists = clio_obs::snapshot_histograms();
        clio_obs::clear_histograms();
        let scheduled = hists
            .iter()
            .find(|(n, _)| *n == "incr.fd.scheduled")
            .map_or(0, |(_, h)| h.count);
        let total = connected_subsets(&g).len() as u64;
        assert!(
            scheduled > 0 && scheduled < total,
            "post-edit run must dispatch only the cold subset \
             ({scheduled} of {total})"
        );
    }

    #[test]
    fn none_and_disabled_caches_bypass_entirely() {
        let g = tree_graph();
        let plain = full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
        let none = full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), None).unwrap();
        assert_eq!(plain.table().rows(), none.table().rows());
        let cache = EvalCache::new();
        cache.set_enabled(false);
        let off = full_disjunction_cached(&db(), &g, FdAlgo::Auto, &funcs(), Some(&cache)).unwrap();
        assert_eq!(plain.table().rows(), off.table().rows());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn fingerprints_separate_structure_versions_and_algorithms() {
        let cache = EvalCache::new();
        let tree = tree_graph();
        let cyc = cyclic_graph();
        assert_ne!(
            graph_fingerprint(&tree, &cache, "D(G).tree"),
            graph_fingerprint(&cyc, &cache, "D(G).tree")
        );
        assert_ne!(
            graph_fingerprint(&tree, &cache, "D(G).tree"),
            graph_fingerprint(&tree, &cache, "D(G).naive")
        );
        let before = graph_fingerprint(&tree, &cache, "D(G).tree");
        cache.bump_version("Parents");
        assert_ne!(before, graph_fingerprint(&tree, &cache, "D(G).tree"));
        // subgraphs not touching Parents keep their fingerprint
        let mask_children = 0b001;
        let a = subgraph_fingerprint(&cyc, mask_children, &cache);
        cache.bump_version("Parents");
        assert_eq!(a, subgraph_fingerprint(&cyc, mask_children, &cache));
        cache.bump_version("Children");
        assert_ne!(a, subgraph_fingerprint(&cyc, mask_children, &cache));
    }

    #[test]
    fn mapping_fingerprint_tracks_every_component() {
        use crate::correspondence::ValueCorrespondence;
        use clio_relational::schema::{Attribute, RelSchema};
        let cache = EvalCache::new();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
            ],
        )
        .unwrap();
        let base = Mapping::new(tree_graph(), target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"));
        let fp = mapping_fingerprint(&base, &cache);
        let with_corr = base
            .clone()
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ));
        assert_ne!(fp, mapping_fingerprint(&with_corr, &cache));
        let with_source = base
            .clone()
            .with_source_filter(parse_expr("Children.mid IS NOT NULL").unwrap());
        assert_ne!(fp, mapping_fingerprint(&with_source, &cache));
        let with_target = base
            .clone()
            .with_target_filter(parse_expr("Kids.ID IS NOT NULL").unwrap());
        assert_ne!(fp, mapping_fingerprint(&with_target, &cache));
        assert_ne!(
            mapping_fingerprint(&with_source, &cache),
            mapping_fingerprint(&with_target, &cache)
        );
    }

    #[test]
    fn epoch_bump_changes_all_fingerprints() {
        let cache = EvalCache::new();
        let g = tree_graph();
        let a = graph_fingerprint(&g, &cache, "D(G).tree");
        let s = subgraph_fingerprint(&g, 0b11, &cache);
        cache.bump_epoch();
        assert_ne!(a, graph_fingerprint(&g, &cache, "D(G).tree"));
        assert_ne!(s, subgraph_fingerprint(&g, 0b11, &cache));
    }
}
