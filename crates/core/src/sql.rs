//! SQL generation: render a mapping as the view definition Clio would
//! install (paper Sec 2's `create view Kids as select … left join …`).
//!
//! The generated SQL is a *presentation* of the mapping for DBAs and for
//! export; the authoritative semantics is
//! [`Mapping::evaluate`](crate::mapping::Mapping::evaluate) over the full
//! disjunction. For tree-shaped graphs rooted at a required relation —
//! the common case the paper's example shows — the rendered
//! `LEFT JOIN` chain computes the same result: associations not involving
//! the root are exactly those the root-attribute `IS NOT NULL` target
//! filter trims, and required (inner-joined) nodes are those whose
//! attributes some target filter forces non-null.

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::simplify::simplify;
use clio_relational::value::Value;

use crate::mapping::Mapping;
use crate::query_graph::NodeId;

/// Options controlling SQL rendering.
#[derive(Debug, Clone, Default)]
pub struct SqlOptions {
    /// Root node alias for the join chain. Defaults to a node required by
    /// the target filters, else the first node.
    pub root: Option<String>,
    /// Emit `CREATE VIEW <target> AS` before the query.
    pub create_view: bool,
}

/// Which graph nodes are *required* (inner-joined): nodes referenced by
/// the correspondence of a target attribute that some target filter
/// forces non-null.
#[must_use]
pub fn required_nodes(mapping: &Mapping) -> Vec<NodeId> {
    let mut required = Vec::new();
    for filter in &mapping.target_filters {
        let Expr::IsNull {
            expr,
            negated: true,
        } = filter
        else {
            continue;
        };
        let Expr::Column(col) = expr.as_ref() else {
            continue;
        };
        if let Some(v) = mapping.correspondence_for(&col.name) {
            for q in v.source_qualifiers() {
                if let Some(id) = mapping.graph.node_by_alias(q) {
                    if !required.contains(&id) {
                        required.push(id);
                    }
                }
            }
        }
    }
    required
}

/// Render the mapping as SQL.
pub fn generate_sql(mapping: &Mapping, db: &Database, options: &SqlOptions) -> Result<String> {
    let graph = &mapping.graph;
    if graph.node_count() == 0 {
        return Err(Error::Invalid(
            "cannot render SQL for an empty graph".into(),
        ));
    }
    let required = required_nodes(mapping);
    let root = match &options.root {
        Some(alias) => graph
            .node_by_alias(alias)
            .ok_or_else(|| Error::Invalid(format!("unknown root alias `{alias}`")))?,
        None => *required.first().unwrap_or(&0),
    };
    let order = graph.connected_order(root)?;

    let mut sql = String::new();
    if options.create_view {
        sql.push_str(&format!("CREATE VIEW {} AS\n", mapping.target.name()));
    }

    // SELECT clause: one output per target attribute, in target order
    sql.push_str("SELECT ");
    let mut first = true;
    for attr in mapping.target.attrs() {
        if !first {
            sql.push_str(",\n       ");
        }
        first = false;
        match mapping.correspondence_for(&attr.name) {
            Some(v) => sql.push_str(&format!("{} AS {}", v.expr, attr.name)),
            None => sql.push_str(&format!("{} AS {}", Expr::Literal(Value::Null), attr.name)),
        }
    }
    sql.push('\n');

    // FROM clause: join chain in connected order
    let render_rel = |id: NodeId| {
        let n = &graph.nodes()[id];
        if n.alias == n.relation {
            n.relation.clone()
        } else {
            format!("{} AS {}", n.relation, n.alias)
        }
    };
    sql.push_str(&format!("FROM {}", render_rel(order[0])));
    let mut included: u64 = 1 << order[0];
    for &n in &order[1..] {
        let preds: Vec<Expr> = graph
            .edges()
            .iter()
            .filter(|e| {
                (e.a == n && included & (1 << e.b) != 0) || (e.b == n && included & (1 << e.a) != 0)
            })
            .map(|e| e.predicate.clone())
            .collect();
        let on = simplify(&Expr::conjunction(preds));
        let kind = if required.contains(&n) {
            "JOIN"
        } else {
            "LEFT JOIN"
        };
        sql.push_str(&format!("\n  {kind} {} ON {on}", render_rel(n)));
        included |= 1 << n;
    }
    sql.push('\n');

    // WHERE: source filters
    if !mapping.source_filters.is_empty() {
        let w = simplify(&Expr::conjunction(mapping.source_filters.clone()));
        sql.push_str(&format!("WHERE {w}\n"));
    }

    // target filters that are not already realized structurally: the
    // root's / required nodes' IS NOT NULL filters are absorbed by the
    // join chain; everything else wraps the query (Def 3.14's outer
    // SELECT)
    let residual: Vec<&Expr> = mapping
        .target_filters
        .iter()
        .filter(|f| !absorbed_by_joins(f, mapping, db, &required, root))
        .collect();
    if !residual.is_empty() {
        let inner = sql;
        let conj = simplify(&Expr::conjunction(residual.into_iter().cloned().collect()));
        let mut out = String::new();
        if options.create_view {
            // keep the CREATE VIEW header outermost
            let body = inner
                .strip_prefix(&format!("CREATE VIEW {} AS\n", mapping.target.name()))
                .unwrap_or(&inner)
                .to_owned();
            out.push_str(&format!("CREATE VIEW {} AS\n", mapping.target.name()));
            out.push_str(&format!(
                "SELECT * FROM (\n{}\n) AS {}\nWHERE {}\n",
                indent(body.trim_end()),
                mapping.target.name(),
                conj
            ));
        } else {
            out.push_str(&format!(
                "SELECT * FROM (\n{}\n) AS {}\nWHERE {}\n",
                indent(inner.trim_end()),
                mapping.target.name(),
                conj
            ));
        }
        sql = out;
    }

    // sanity: every alias used in the SQL binds against the database
    mapping.validate(db, &clio_relational::funcs::FuncRegistry::with_builtins())?;
    Ok(sql)
}

/// Is this target filter realized structurally by the join chain? True
/// for `T.B IS NOT NULL` when `B`'s correspondence only references the
/// root or inner-joined nodes (those rows always have the node present).
fn absorbed_by_joins(
    filter: &Expr,
    mapping: &Mapping,
    db: &Database,
    required: &[NodeId],
    root: NodeId,
) -> bool {
    let Expr::IsNull {
        expr,
        negated: true,
    } = filter
    else {
        return false;
    };
    let Expr::Column(col) = expr.as_ref() else {
        return false;
    };
    let Some(v) = mapping.correspondence_for(&col.name) else {
        return false;
    };
    // only a bare column correspondence guarantees non-null from presence
    let Expr::Column(src) = &v.expr else {
        return false;
    };
    let Some(q) = &src.qualifier else {
        return false;
    };
    let Some(id) = mapping.graph.node_by_alias(q) else {
        return false;
    };
    if id != root && !required.contains(&id) {
        return false;
    }
    // presence guarantees non-null only if the source attribute itself is
    // declared NOT NULL
    let node = &mapping.graph.nodes()[id];
    match db.relation(&node.relation) {
        Ok(rel) => rel
            .schema()
            .attr(&src.name)
            .map(|a| a.not_null)
            .unwrap_or(false),
        Err(_) => false,
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, attrs) in [
            ("Children", vec!["ID", "name", "mid", "fid"]),
            ("Parents", vec!["ID", "affiliation", "address"]),
            ("PhoneDir", vec!["ID", "number"]),
            ("SBPS", vec!["ID", "time"]),
        ] {
            let mut b = RelationBuilder::new(name);
            for a in attrs {
                let not_null = (a == "ID" && name != "SBPS") || (name == "SBPS" && a == "time");
                b = if not_null {
                    b.attr_not_null(a, DataType::Str)
                } else {
                    b.attr(a, DataType::Str)
                };
            }
            db.add_relation(b.build().unwrap()).unwrap();
        }
        db
    }

    /// The final Section-2 mapping: Children left-joined to Parents (fid),
    /// Parents2 (mid), PhoneDir and SBPS.
    fn section2_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        let p2 = g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        let d = g.add_node(Node::new("PhoneDir").with_code("Ph")).unwrap();
        let s = g.add_node(Node::new("SBPS").with_code("S")).unwrap();
        g.add_edge(c, p, parse_expr("Children.fid = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(c, p2, parse_expr("Children.mid = Parents2.ID").unwrap())
            .unwrap();
        g.add_edge(p2, d, parse_expr("PhoneDir.ID = Parents2.ID").unwrap())
            .unwrap();
        g.add_edge(c, s, parse_expr("Children.ID = SBPS.ID").unwrap())
            .unwrap();

        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("name", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
                Attribute::new("BusSchedule", DataType::Str),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity("Children.name", "name"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_correspondence(ValueCorrespondence::identity(
                "PhoneDir.number",
                "contactPh",
            ))
            .with_correspondence(ValueCorrespondence::identity("SBPS.time", "BusSchedule"))
            .with_target_not_null_filters()
    }

    #[test]
    fn section_2_sql_shape() {
        let sql = generate_sql(
            &section2_mapping(),
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: true,
            },
        )
        .unwrap();
        assert!(sql.starts_with("CREATE VIEW Kids AS"));
        assert!(sql.contains("Children.ID AS ID"));
        assert!(sql.contains("Children.name AS name"));
        assert!(sql.contains("PhoneDir.number AS contactPh"));
        assert!(sql.contains("SBPS.time AS BusSchedule"));
        assert!(sql.contains("FROM Children"));
        // four left joins, as in the paper's query
        assert_eq!(sql.matches("LEFT JOIN").count(), 4);
        assert!(sql.contains("LEFT JOIN Parents AS Parents2 ON Children.mid = Parents2.ID"));
        assert!(sql.contains("LEFT JOIN SBPS ON Children.ID = SBPS.ID"));
        // the Kids.ID IS NOT NULL filter is absorbed by rooting at Children
        assert!(!sql.contains("Kids.ID IS NOT NULL"));
    }

    #[test]
    fn requiring_bus_schedule_turns_left_join_inner() {
        // the paper: "Clio would then change this left outer join to an
        // inner join"
        let m =
            crate::operators::trim::require_target_attribute(&section2_mapping(), "BusSchedule");
        let sql = generate_sql(
            &m,
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: false,
            },
        )
        .unwrap();
        assert!(sql.contains("\n  JOIN SBPS ON Children.ID = SBPS.ID"));
        assert_eq!(sql.matches("LEFT JOIN").count(), 3);
    }

    #[test]
    fn source_filters_render_in_where() {
        let m =
            section2_mapping().with_source_filter(parse_expr("Children.name IS NOT NULL").unwrap());
        let sql = generate_sql(
            &m,
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: false,
            },
        )
        .unwrap();
        assert!(sql.contains("WHERE Children.name IS NOT NULL"));
    }

    #[test]
    fn residual_target_filters_wrap_the_query() {
        let m = section2_mapping().with_target_filter(parse_expr("Kids.name IS NOT NULL").unwrap());
        let sql = generate_sql(
            &m,
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: false,
            },
        )
        .unwrap();
        // name is nullable in the source, so the filter is not absorbed
        assert!(sql.contains("SELECT * FROM ("));
        assert!(sql.contains("WHERE Kids.name IS NOT NULL"));
    }

    #[test]
    fn unmapped_attributes_render_as_null() {
        let mut m = section2_mapping();
        m.correspondences.retain(|c| c.target_attr != "BusSchedule");
        let sql = generate_sql(
            &m,
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: false,
            },
        )
        .unwrap();
        assert!(sql.contains("NULL AS BusSchedule"));
    }

    #[test]
    fn default_root_is_a_required_node() {
        let m = section2_mapping();
        let sql = generate_sql(&m, &db(), &SqlOptions::default()).unwrap();
        assert!(sql.contains("FROM Children"));
        assert_eq!(required_nodes(&m), vec![0]);
    }

    #[test]
    fn unknown_root_alias_errors() {
        let m = section2_mapping();
        let opts = SqlOptions {
            root: Some("Nope".into()),
            create_view: false,
        };
        assert!(generate_sql(&m, &db(), &opts).is_err());
    }

    #[test]
    fn create_view_wraps_residual_filter_correctly() {
        let m = section2_mapping().with_target_filter(parse_expr("Kids.name IS NOT NULL").unwrap());
        let sql = generate_sql(
            &m,
            &db(),
            &SqlOptions {
                root: Some("Children".into()),
                create_view: true,
            },
        )
        .unwrap();
        assert!(sql.starts_with("CREATE VIEW Kids AS\nSELECT * FROM ("));
        assert_eq!(sql.matches("CREATE VIEW").count(), 1);
    }
}
