//! Concurrent session service: many independent [`Session`]s over one
//! `Arc`-shared immutable source snapshot.
//!
//! The paper's Sec 6 machinery assumes a single user exploring mapping
//! alternatives; a [`SessionPool`] serves *N* such users at once. The
//! pool derives the expensive shared state — the source [`Database`],
//! the [`ValueIndex`], and the foreign-key-seeded [`SchemaKnowledge`] —
//! exactly once, then spawns sessions in O(1) by handing each one `Arc`
//! clones ([`Session::from_parts`]). Per-session state (function
//! registry, workspaces, [`clio_incr::EvalCache`]) stays private, and a
//! session that edits its database copies first
//! ([`Session::replace_relation`] is copy-on-write), so sessions can
//! never observe each other's edits.
//!
//! [`SessionPool::run`] fans jobs out on the `exec` worker pool with an
//! **explicit** width (the CLI's `--sessions`), independent of the
//! engine thread setting (`--threads`): each worker thread inherits the
//! caller's engine-thread override, installs the job's observability
//! session label, and wraps the job in a `session.<i>` span. Results
//! come back in input order and a panicking job propagates to the
//! caller — the same deterministic-merge and first-error-by-index
//! discipline as `exec::map_slice` (see `docs/concurrency.md`).

use std::sync::Arc;

use clio_relational::database::Database;
use clio_relational::exec;
use clio_relational::index::ValueIndex;
use clio_relational::schema::RelSchema;

use crate::knowledge::SchemaKnowledge;
use crate::session::Session;

/// Static span names for the first pooled sessions; higher indices share
/// a single overflow name (span names must be `&'static str`).
const SESSION_SPAN_NAMES: [&str; 16] = [
    "session.0",
    "session.1",
    "session.2",
    "session.3",
    "session.4",
    "session.5",
    "session.6",
    "session.7",
    "session.8",
    "session.9",
    "session.10",
    "session.11",
    "session.12",
    "session.13",
    "session.14",
    "session.15",
];

fn session_span_name(index: usize) -> &'static str {
    SESSION_SPAN_NAMES
        .get(index)
        .copied()
        .unwrap_or("session.overflow")
}

/// A factory and scheduler for concurrent [`Session`]s sharing one
/// immutable source snapshot. See the module docs for the sharing and
/// determinism model.
#[derive(Debug, Clone)]
pub struct SessionPool {
    db: Arc<Database>,
    index: Arc<ValueIndex>,
    knowledge: SchemaKnowledge,
    target: RelSchema,
    width: usize,
    cache_enabled: bool,
    cache_policy: clio_incr::EvictionPolicy,
    plan_enabled: bool,
    store: Option<Arc<dyn clio_incr::CacheStore>>,
}

impl SessionPool {
    /// Build a pool over a source database and target schema, deriving
    /// the shared snapshot state (value index, seed knowledge) once.
    /// The default width is 1 (serial); see [`SessionPool::with_width`].
    #[must_use]
    pub fn new(db: Database, target: RelSchema) -> SessionPool {
        SessionPool::from_shared(Arc::new(db), target)
    }

    /// Build a pool over an already-shared snapshot without copying it.
    #[must_use]
    pub fn from_shared(db: Arc<Database>, target: RelSchema) -> SessionPool {
        let knowledge = SchemaKnowledge::from_database(&db);
        let index = Arc::new(ValueIndex::build(&db));
        SessionPool {
            db,
            index,
            knowledge,
            target,
            width: 1,
            cache_enabled: true,
            cache_policy: clio_incr::EvictionPolicy::default(),
            plan_enabled: false,
            store: None,
        }
    }

    /// Set how many sessions [`SessionPool::run`] executes concurrently
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_width(mut self, width: usize) -> SessionPool {
        self.width = width.max(1);
        self
    }

    /// The configured concurrent-session width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether sessions spawned from this pool start with their
    /// incremental cache enabled (on by default).
    pub fn set_cache_enabled(&mut self, on: bool) {
        self.cache_enabled = on;
    }

    /// The eviction policy sessions spawned from this pool start with
    /// (the CLI's `--cache-policy`; cost-aware by default).
    pub fn set_cache_policy(&mut self, policy: clio_incr::EvictionPolicy) {
        self.cache_policy = policy;
    }

    /// Whether sessions spawned from this pool route mapping evaluation
    /// through the planner (the CLI's `--plan`; off by default).
    pub fn set_plan_enabled(&mut self, on: bool) {
        self.plan_enabled = on;
    }

    /// Attach one shared persistent cache backend: every session the
    /// pool spawns spills to — and is warmed from — the same store, so
    /// a table computed by any session in a batch (or by an earlier
    /// process over the same source) is a disk hit for all the others.
    #[must_use]
    pub fn with_store(mut self, store: Arc<dyn clio_incr::CacheStore>) -> SessionPool {
        self.store = Some(store);
        self
    }

    /// The shared persistent store, if one is attached.
    #[must_use]
    pub fn store(&self) -> Option<Arc<dyn clio_incr::CacheStore>> {
        self.store.clone()
    }

    /// The shared source snapshot.
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Spawn one session sharing the pool's snapshot. O(1) in the size
    /// of the database: only `Arc` clones plus the (small) schema
    /// knowledge copy.
    #[must_use]
    pub fn session(&self) -> Session {
        let mut s = Session::from_parts(
            Arc::clone(&self.db),
            Arc::clone(&self.index),
            self.knowledge.clone(),
            self.target.clone(),
        );
        s.set_cache_enabled(self.cache_enabled);
        s.set_cache_policy(self.cache_policy);
        s.set_plan_enabled(self.plan_enabled);
        if let Some(store) = &self.store {
            s.attach_store(Arc::clone(store));
        }
        s
    }

    /// Run `jobs` independent sessions, up to [`SessionPool::width`] at
    /// a time, returning each job's result **in input order**.
    ///
    /// Each job `i` receives a fresh session from [`SessionPool::session`]
    /// and runs with observability session label `i` installed and a
    /// `session.<i>` span open, so counters and spans aggregate per
    /// session. Engine parallelism *inside* a job is divided fairly:
    /// each job sees an engine thread budget of `threads() / width`
    /// (at least 1). A panicking job propagates to the caller.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Session) -> R + Sync,
    {
        let indices: Vec<usize> = (0..jobs).collect();
        let workers = self.width.min(jobs.max(1));
        let inner_threads = (exec::threads() / workers).max(1);
        exec::map_slice_with(workers, &indices, "session.pool.worker", |_, &i| {
            clio_obs::metrics::with_session(Some(i as u64), || {
                clio_obs::metrics::touch_session(i as u64);
                exec::with_threads(inner_threads, || {
                    let _span = clio_obs::span(session_span_name(i));
                    f(i, self.session())
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::constraints::ForeignKey;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::Attribute;
    use clio_relational::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("name", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "Anna".into(), "201".into()])
                .row(vec!["002".into(), "Maya".into(), "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints
            .foreign_keys
            .push(ForeignKey::simple("Children", "mid", "Parents", "ID"));
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn preview_rows(mut s: Session) -> usize {
        s.add_correspondence("Children.ID", "ID").unwrap();
        let ids = s
            .add_correspondence("Parents.affiliation", "affiliation")
            .unwrap();
        s.confirm(ids[0]).unwrap();
        s.target_preview().unwrap().len()
    }

    #[test]
    fn sessions_share_the_snapshot() {
        let pool = SessionPool::new(db(), target());
        let a = pool.session();
        let b = pool.session();
        assert!(Arc::ptr_eq(&a.shared_database(), pool.database()));
        assert!(Arc::ptr_eq(&b.shared_database(), pool.database()));
    }

    #[test]
    fn run_returns_results_in_input_order_at_any_width() {
        for width in [1, 4] {
            let pool = SessionPool::new(db(), target()).with_width(width);
            let out = pool.run(6, |i, s| (i, preview_rows(s)));
            assert_eq!(
                out,
                (0..6).map(|i| (i, 2)).collect::<Vec<_>>(),
                "width {width}"
            );
        }
    }

    #[test]
    fn concurrent_edits_stay_isolated() {
        let pool = SessionPool::new(db(), target()).with_width(4);
        let rows = pool.run(4, |i, mut s| {
            if i % 2 == 0 {
                // even sessions add a child; odd sessions must not see it
                let mut rel = s.database().relation("Children").unwrap().clone();
                rel.insert(vec![
                    Value::str(format!("00{i}x")),
                    "Zoe".into(),
                    "201".into(),
                ])
                .unwrap();
                s.replace_relation(rel).unwrap();
            }
            s.database().relation("Children").unwrap().len()
        });
        assert_eq!(rows, vec![3, 2, 3, 2]);
        assert_eq!(pool.database().relation("Children").unwrap().len(), 2);
    }

    #[test]
    fn pool_cache_setting_propagates() {
        let mut pool = SessionPool::new(db(), target());
        assert!(pool.session().cache().enabled());
        pool.set_cache_enabled(false);
        assert!(!pool.session().cache().enabled());
    }

    #[test]
    fn pool_plan_setting_propagates() {
        let mut pool = SessionPool::new(db(), target());
        assert!(!pool.session().plan_enabled());
        pool.set_plan_enabled(true);
        assert!(pool.session().plan_enabled());
        // planned sessions preview the same bytes
        assert_eq!(preview_rows(pool.session()), 2);
    }

    #[test]
    fn pool_cache_policy_propagates() {
        use clio_incr::EvictionPolicy;
        let mut pool = SessionPool::new(db(), target());
        assert_eq!(pool.session().cache().policy(), EvictionPolicy::CostAware);
        pool.set_cache_policy(EvictionPolicy::Lru);
        assert_eq!(pool.session().cache().policy(), EvictionPolicy::Lru);
    }

    #[test]
    fn shared_store_warms_sessions_across_the_pool() {
        use clio_incr::CacheStore as _;
        let store = Arc::new(clio_incr::MemStore::new());
        let pool = SessionPool::new(db(), target()).with_store(store.clone());
        assert!(pool.store().is_some());
        // first session computes and spills
        assert_eq!(preview_rows(pool.session()), 2);
        let spilled = store.stats().spills;
        assert!(spilled > 0, "pooled session should spill");
        // a later session is warmed from the shared store: identical
        // output, at least one lookup answered by the store
        assert_eq!(preview_rows(pool.session()), 2);
        assert!(store.stats().hits > 0, "second session should be warmed");
    }

    #[test]
    fn store_warming_keeps_batch_results_identical() {
        let store = Arc::new(clio_incr::MemStore::new());
        let cold = SessionPool::new(db(), target()).with_width(4);
        let warm = SessionPool::new(db(), target())
            .with_width(4)
            .with_store(store);
        assert_eq!(
            cold.run(4, |_, s| preview_rows(s)),
            warm.run(4, |_, s| preview_rows(s))
        );
    }

    #[test]
    fn pooled_jobs_mirror_histograms_per_session() {
        let _guard = crate::obs_testutil::lock();
        clio_obs::set_trace_enabled(true);
        clio_obs::clear_histograms();
        let pool = SessionPool::new(db(), target()).with_width(2);
        let _ = pool.run(2, |_, s| preview_rows(s));
        clio_obs::set_trace_enabled(false);
        let _ = clio_obs::take_spans();
        clio_obs::clear_events();
        let sessions = clio_obs::hist::session_histograms();
        clio_obs::clear_histograms();
        let labels: Vec<u64> = sessions.iter().map(|(l, _)| *l).collect();
        assert!(
            labels.contains(&0) && labels.contains(&1),
            "both jobs must mirror histograms: {labels:?}"
        );
        for (label, entries) in &sessions {
            if *label > 1 {
                continue; // spans leaked from concurrently-running tests
            }
            assert!(
                entries.iter().any(|(n, _)| n.starts_with("session.")),
                "session {label} missing its own span histogram: {entries:?}"
            );
        }
    }

    #[test]
    fn job_panics_propagate() {
        let pool = SessionPool::new(db(), target()).with_width(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, |i, _s| {
                assert!(i != 2, "job died");
                i
            })
        }));
        assert!(result.is_err());
    }
}
