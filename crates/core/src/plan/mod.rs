//! Plan-based mapping evaluation: a typed relational-algebra IR over
//! mapping queries, two rewrites, and an executor that is byte-identical
//! to the definitional pipeline.
//!
//! [`Plan::new`] lowers a [`Mapping`] into a [`RelExpr`] tree describing
//! exactly the work [`Mapping::evaluate`] performs — per-subgraph `F(J)`
//! join chains (or the left-deep outer-join chain on trees), the minimum
//! union, source/target filters, and the projection onto the target
//! schema. Two rewrites then improve the tree:
//!
//! 1. **Filter pushdown.** A source filter that is *strong* (not true on
//!    an all-null row, [`Expr::is_strong`]) and *extension-stable* (once
//!    true, still true on any row refining its nulls,
//!    [`is_extension_stable`]) commutes with the subsumption pass of the
//!    minimum union: a row's subsumers are exactly its extensions, so
//!    the filter can never keep a row while dropping the subsumer that
//!    would have replaced it, and exact duplicates filter identically.
//!    Such a filter is therefore pushed below the union into every
//!    subgraph branch that binds all of its aliases, and any branch
//!    sharing *no* alias with it is **pruned** outright — every row the
//!    branch contributes is all-null on the filter's columns after
//!    padding, so a strong filter rejects them all. Branches binding
//!    only some aliases stay unfiltered; the authoritative top-level
//!    filters run regardless, so the rewrite only shrinks intermediate
//!    results and can never change the answer.
//! 2. **Warmth-guided subgraph ordering.** With a cache at hand, each
//!    surviving subgraph is classified warm/cold via a non-promoting
//!    [`EvalCache::peek`] and priced via [`EvalCache::estimate_cost`]
//!    (sibling cost history, falling back to a row-count heuristic).
//!    The executor dispatches cold subgraphs longest-estimated-first so
//!    a straggler cannot serialize the tail; assembly stays in canonical
//!    subgraph order, keeping the output byte-identical.
//!
//! The executor reuses the per-subgraph `F(J)` cache entries of the
//! incremental layer — entries hold *unfiltered* tables, pushed filters
//! are applied after retrieval — and memoizes the final result under a
//! `"Q(M).plan"` fingerprint, distinct from the definitional `"Q(M)"`
//! entry. A property test in `tests/properties.rs` replays random
//! graphs × random filters planned vs. definitional and asserts byte
//! equality; `scripts/verify.sh` pins the same end-to-end through the
//! CLI. See `docs/planner.md`.

pub mod explain;
pub mod ir;

pub use ir::{is_extension_stable, FilterScope, RelExpr};

use std::cmp::Reverse;

use clio_incr::{EvalCache, Fingerprint};
use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::error::Result;
use clio_relational::expr::{BoundExpr, Expr};
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::{minimum_union_all, pad_to};
use clio_relational::table::Table;

use crate::association::AssociationSet;
use crate::full_disjunction::{engine_subsumption, full_associations, FdAlgo};
use crate::incremental::{
    full_disjunction_cached, heuristic_cost, mapping_fingerprint_tagged, mask_deps,
    subgraph_fingerprint,
};
use crate::mapping::Mapping;
use crate::query_graph::{NodeId, QueryGraph};
use crate::subgraph::connected_subsets;

/// The full-disjunction strategy a plan commits to — the resolution of
/// [`FdAlgo::Auto`] made explicit at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAlgo {
    /// Tree graph: left-deep full outer joins, no subgraph enumeration.
    OuterJoin,
    /// Cyclic graph: minimum union over all induced connected subgraphs.
    Naive,
}

/// Scheduling annotation for one surviving subgraph branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// The branch's node mask.
    pub mask: u64,
    /// Estimated recompute cost (`0` for expected-warm branches).
    pub estimate: u64,
    /// Whether the cache held the branch's `F(J)` at plan time.
    pub warm: bool,
}

/// An executable plan for one mapping query.
///
/// Built by [`Plan::new`]; run with [`Plan::evaluate`] (byte-identical
/// to [`Mapping::evaluate_cached`]); rendered with [`Plan::explain`].
#[derive(Debug, Clone)]
pub struct Plan {
    mapping: Mapping,
    root: RelExpr,
    algo: PlanAlgo,
    /// Surviving subgraph masks in canonical order (empty on trees),
    /// parallel to the `Union` node's branches.
    masks: Vec<u64>,
    branches: Vec<BranchInfo>,
    pruned: usize,
    pushed: Vec<Expr>,
    /// Alias masks parallel to `pushed`.
    pushed_masks: Vec<u64>,
    /// Positions into `masks`, longest-estimated-first dispatch order.
    dispatch: Vec<usize>,
}

impl Plan {
    /// Build and rewrite the plan for `mapping`. The cache, when given,
    /// only informs the scheduling annotations — plan *structure* is a
    /// pure function of the mapping and database, so the same mapping
    /// always produces the same algebra.
    pub fn new(
        mapping: &Mapping,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&EvalCache>,
    ) -> Result<Plan> {
        let _span = clio_obs::span("plan.build");
        let graph = &mapping.graph;
        let scheme = graph.scheme(db)?;
        // mirror FdAlgo::Auto exactly: the plan must describe the same
        // computation the definitional evaluator would run
        let algo = if graph.is_tree() {
            PlanAlgo::OuterJoin
        } else {
            PlanAlgo::Naive
        };

        let mut masks: Vec<u64> = Vec::new();
        let mut pushed: Vec<Expr> = Vec::new();
        let mut pushed_masks: Vec<u64> = Vec::new();
        let mut pruned = 0usize;
        if algo == PlanAlgo::Naive {
            masks = connected_subsets(graph);
            for f in &mapping.source_filters {
                let Some(amask) = alias_mask(graph, f) else {
                    continue; // bare or foreign qualifiers: not pushable
                };
                if amask != 0 && is_extension_stable(f) && f.is_strong(&scheme, funcs)? {
                    pushed.push(f.clone());
                    pushed_masks.push(amask);
                }
            }
            if !pushed.is_empty() {
                let before = masks.len();
                // a branch sharing no alias with some pushed (strong)
                // filter is all-null on that filter's columns: drop it
                masks.retain(|&mask| pushed_masks.iter().all(|&pm| pm & mask != 0));
                pruned = before - masks.len();
            }
        }

        let fd = match algo {
            PlanAlgo::OuterJoin => tree_ir(graph)?,
            PlanAlgo::Naive => RelExpr::Union {
                inputs: masks
                    .iter()
                    .map(|&mask| {
                        let mut branch = subgraph_ir(graph, mask);
                        for (f, &pm) in pushed.iter().zip(&pushed_masks) {
                            if pm & mask == pm {
                                branch = RelExpr::Filter {
                                    input: Box::new(branch),
                                    predicate: f.clone(),
                                    scope: FilterScope::Source,
                                    pushed: true,
                                };
                            }
                        }
                        branch
                    })
                    .collect(),
                pad: scheme.clone(),
            },
        };
        let mut root = fd;
        for f in &mapping.source_filters {
            root = RelExpr::Filter {
                input: Box::new(root),
                predicate: f.clone(),
                scope: FilterScope::Source,
                pushed: false,
            };
        }
        root = RelExpr::Project {
            input: Box::new(root),
            correspondences: mapping.correspondences.clone(),
            target: mapping.target.clone(),
        };
        for f in &mapping.target_filters {
            root = RelExpr::Filter {
                input: Box::new(root),
                predicate: f.clone(),
                scope: FilterScope::Target,
                pushed: false,
            };
        }
        root.check()?;

        // warmth/estimate annotations + dispatch order (the second
        // rewrite): answer-invisible, so a missing or cold cache only
        // means heuristic estimates
        let live = cache.filter(|c| c.enabled());
        let branches: Vec<BranchInfo> = masks
            .iter()
            .map(|&mask| match live {
                Some(c) => {
                    let fp = subgraph_fingerprint(graph, mask, c);
                    if c.peek(fp).is_some() {
                        BranchInfo {
                            mask,
                            estimate: 0,
                            warm: true,
                        }
                    } else {
                        BranchInfo {
                            mask,
                            estimate: c
                                .estimate_cost(&mask_deps(graph, mask))
                                .unwrap_or_else(|| heuristic_cost(db, graph, mask)),
                            warm: false,
                        }
                    }
                }
                None => BranchInfo {
                    mask,
                    estimate: heuristic_cost(db, graph, mask),
                    warm: false,
                },
            })
            .collect();
        let mut dispatch: Vec<usize> = (0..masks.len()).collect();
        dispatch.sort_by_key(|&p| (Reverse(branches[p].estimate), p));

        metrics::incr(Counter::PlanBuilt);
        metrics::add(Counter::PlanPushedFilters, pushed.len() as u64);
        metrics::add(Counter::PlanPrunedSubgraphs, pruned as u64);
        Ok(Plan {
            mapping: mapping.clone(),
            root,
            algo,
            masks,
            branches,
            pruned,
            pushed,
            pushed_masks,
            dispatch,
        })
    }

    /// The rewritten algebra tree.
    #[must_use]
    pub fn root(&self) -> &RelExpr {
        &self.root
    }

    /// The committed full-disjunction strategy.
    #[must_use]
    pub fn algo(&self) -> PlanAlgo {
        self.algo
    }

    /// The source filters pushed below the minimum union.
    #[must_use]
    pub fn pushed_filters(&self) -> &[Expr] {
        &self.pushed
    }

    /// How many subgraph branches the pushdown rewrite pruned.
    #[must_use]
    pub fn pruned_subgraphs(&self) -> usize {
        self.pruned
    }

    /// Scheduling annotations for the surviving subgraph branches.
    #[must_use]
    pub fn branches(&self) -> &[BranchInfo] {
        &self.branches
    }

    /// Render the plan as an indented tree (the `explain` output).
    #[must_use]
    pub fn explain(&self) -> String {
        explain::render(self)
    }

    /// The data associations this plan's full-disjunction stage yields.
    ///
    /// Without pushed filters (or on trees) this *is* the definitional
    /// cached path, graph-level memoization included. With pushed
    /// filters the graph-level `D(G)` entry no longer matches what is
    /// assembled, so the executor goes straight to the per-subgraph
    /// entries, filters each retrieved `F(J)` with the pushed predicates
    /// that bind on it, and unions the padded survivors in canonical
    /// order.
    pub fn associations(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&EvalCache>,
    ) -> Result<AssociationSet> {
        if self.algo == PlanAlgo::OuterJoin || self.pushed.is_empty() {
            return full_disjunction_cached(db, &self.mapping.graph, FdAlgo::Auto, funcs, cache);
        }
        self.associations_pushed(db, funcs, cache)
    }

    fn associations_pushed(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&EvalCache>,
    ) -> Result<AssociationSet> {
        let _span = clio_obs::span("plan.fd");
        let graph = &self.mapping.graph;
        let scheme = graph.scheme(db)?;
        let cache = cache.filter(|c| c.enabled());
        let tables: Vec<Table> = match cache {
            None => {
                let fresh: Vec<Table> = clio_relational::exec::map_slice(
                    &self.masks,
                    "plan.fd.worker",
                    |_, &mask| -> Result<Table> { full_associations(db, graph, mask, funcs) },
                )
                .into_iter()
                .collect::<Result<_>>()?;
                metrics::add(Counter::SubgraphsEnumerated, fresh.len() as u64);
                fresh
            }
            Some(cache) => {
                let fps: Vec<Fingerprint> = self
                    .masks
                    .iter()
                    .map(|&mask| subgraph_fingerprint(graph, mask, cache))
                    .collect();
                let mut slots: Vec<Option<Table>> = fps.iter().map(|&fp| cache.get(fp)).collect();
                let missing: Vec<(usize, u64)> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| slot.is_none())
                    .map(|(i, _)| (i, self.masks[i]))
                    .collect();
                if !missing.is_empty() {
                    // dispatch in the plan's estimate order; results
                    // return in input order, so scheduling stays
                    // answer-invisible
                    let mut rank = vec![0usize; self.masks.len()];
                    for (r, &p) in self.dispatch.iter().enumerate() {
                        rank[p] = r;
                    }
                    let mut order: Vec<usize> = (0..missing.len()).collect();
                    order.sort_by_key(|&p| rank[missing[p].0]);
                    let fresh: Vec<(Table, u64)> = clio_relational::exec::map_slice_prioritized(
                        &missing,
                        &order,
                        "plan.fd.worker",
                        |_, &(_, mask)| -> Result<(Table, u64)> {
                            let t0 = std::time::Instant::now();
                            let table = full_associations(db, graph, mask, funcs)?;
                            let cost_ns =
                                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            Ok((table, cost_ns))
                        },
                    )
                    .into_iter()
                    .collect::<Result<_>>()?;
                    metrics::add(Counter::SubgraphsEnumerated, fresh.len() as u64);
                    for (&(i, mask), (table, cost_ns)) in missing.iter().zip(&fresh) {
                        // entries stay unfiltered so the definitional
                        // pipeline (and other plans) can share them
                        cache.insert_costed(fps[i], mask_deps(graph, mask), table, *cost_ns);
                        slots[i] = Some(table.clone());
                    }
                }
                slots
                    .into_iter()
                    .map(|t| t.expect("all slots filled"))
                    .collect()
            }
        };
        let padded: Vec<Table> = tables
            .iter()
            .zip(&self.masks)
            .map(|(table, &mask)| {
                let applicable: Vec<&Expr> = self
                    .pushed
                    .iter()
                    .zip(&self.pushed_masks)
                    .filter(|&(_, &pm)| pm & mask == pm)
                    .map(|(f, _)| f)
                    .collect();
                if applicable.is_empty() {
                    pad_to(table, &scheme)
                } else {
                    pad_to(&filter_rows(table, &applicable, funcs)?, &scheme)
                }
            })
            .collect::<Result<_>>()?;
        let refs: Vec<&Table> = padded.iter().collect();
        let table = minimum_union_all(&refs, engine_subsumption())?;
        Ok(AssociationSet::from_table(graph, table))
    }

    /// Run the plan: the full mapping query, byte-identical to
    /// [`Mapping::evaluate_cached`]. The result is memoized under a
    /// `"Q(M).plan"` fingerprint when a cache is live.
    pub fn evaluate(
        &self,
        db: &Database,
        funcs: &FuncRegistry,
        cache: Option<&EvalCache>,
    ) -> Result<Table> {
        let _span = clio_obs::span("mapping.evaluate.plan");
        metrics::incr(Counter::PlanEvals);
        let cache = cache.filter(|c| c.enabled());
        let fp = cache.map(|c| mapping_fingerprint_tagged(&self.mapping, c, "Q(M).plan"));
        if let (Some(c), Some(fp)) = (cache, fp) {
            if let Some(table) = c.get(fp) {
                return Ok(table);
            }
        }
        let t0 = std::time::Instant::now();
        let assocs = self.associations(db, funcs, cache)?;
        let inner_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // the top-level filters run on every association — re-checking
        // the pushed ones is free in correctness terms (they already
        // hold) and keeps this loop identical to the definitional one
        let eval = self.mapping.evaluator(db, funcs)?;
        let mut out = Table::empty(self.mapping.target_scheme());
        for i in 0..assocs.len() {
            if let Some(row) = eval.target_row_if_passing(assocs.row(i), funcs)? {
                out.push_distinct(row);
            }
        }
        if let (Some(c), Some(fp)) = (cache, fp) {
            let cost_ns = u64::try_from(t0.elapsed().as_nanos())
                .unwrap_or(u64::MAX)
                .saturating_sub(inner_ns);
            c.insert_costed(
                fp,
                crate::incremental::relation_deps(&self.mapping.graph),
                &out,
                cost_ns,
            );
        }
        Ok(out)
    }
}

/// The qualifier bitmask of an expression over graph aliases, or `None`
/// if any column is bare or references a non-graph qualifier.
fn alias_mask(graph: &QueryGraph, e: &Expr) -> Option<u64> {
    let mut mask = 0u64;
    for c in e.columns() {
        let q = c.qualifier.as_deref()?;
        let (i, _) = graph
            .nodes()
            .iter()
            .enumerate()
            .find(|(_, n)| n.alias == q)?;
        mask |= 1 << i;
    }
    Some(mask)
}

/// Keep the rows passing every filter, preserving order; the filters
/// must bind against the table's scheme.
fn filter_rows(table: &Table, filters: &[&Expr], funcs: &FuncRegistry) -> Result<Table> {
    let bound: Vec<BoundExpr> = filters
        .iter()
        .map(|f| f.bind(table.scheme()))
        .collect::<Result<_>>()?;
    let mut out = Table::empty(table.scheme().clone());
    'rows: for row in table.rows() {
        for b in &bound {
            if !b.eval_truth(row, funcs)?.passes() {
                continue 'rows;
            }
        }
        out.push(row.clone());
    }
    Ok(out)
}

fn scan_of(graph: &QueryGraph, n: NodeId) -> RelExpr {
    let node = &graph.nodes()[n];
    RelExpr::Scan {
        alias: node.alias.clone(),
        relation: node.relation.clone(),
    }
}

/// The left-deep outer-join chain of the tree plan, in the same
/// connected elimination order (and same edge choice) as
/// [`full_disjunction_outer_join`](crate::full_disjunction::full_disjunction_outer_join).
fn tree_ir(graph: &QueryGraph) -> Result<RelExpr> {
    let order = graph.connected_order(0)?;
    let mut acc = scan_of(graph, order[0]);
    let mut included = 1u64 << order[0];
    for &n in &order[1..] {
        let edge = graph
            .edges()
            .iter()
            .find(|e| {
                (e.a == n && included & (1 << e.b) != 0) || (e.b == n && included & (1 << e.a) != 0)
            })
            .expect("tree + connected order guarantee exactly one edge");
        acc = RelExpr::Join {
            left: Box::new(acc),
            right: Box::new(scan_of(graph, n)),
            predicate: edge.predicate.clone(),
            outer: true,
        };
        included |= 1 << n;
    }
    Ok(acc)
}

/// The inner-join chain computing `F(J)` for `mask`, in the same
/// order-from-lowest-bit and edge-conjunction grouping as
/// [`full_associations`].
fn subgraph_ir(graph: &QueryGraph, mask: u64) -> RelExpr {
    let start = mask.trailing_zeros() as usize;
    let mut order: Vec<NodeId> = vec![start];
    let mut seen = 1u64 << start;
    let mut i = 0;
    while i < order.len() {
        for m in graph.neighbors(order[i]) {
            let bit = 1u64 << m;
            if mask & bit != 0 && seen & bit == 0 {
                seen |= bit;
                order.push(m);
            }
        }
        i += 1;
    }
    let mut acc = scan_of(graph, order[0]);
    let mut included = 1u64 << order[0];
    for &n in &order[1..] {
        let preds: Vec<Expr> = graph
            .edges()
            .iter()
            .filter(|e| {
                (e.a == n && included & (1 << e.b) != 0) || (e.b == n && included & (1 << e.a) != 0)
            })
            .map(|e| e.predicate.clone())
            .collect();
        acc = RelExpr::Join {
            left: Box::new(acc),
            right: Box::new(scan_of(graph, n)),
            predicate: Expr::conjunction(preds),
            outer: false,
        };
        included |= 1 << n;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::Node;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("age", DataType::Int)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), 6i64.into(), "201".into()])
                .row(vec!["002".into(), 9i64.into(), "202".into()])
                .row(vec!["003".into(), 4i64.into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("PhoneDir")
                .attr_not_null("ID", DataType::Str)
                .attr("number", DataType::Str)
                .row(vec!["201".into(), "555-0101".into()])
                .row(vec!["202".into(), "555-0102".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
                Attribute::new("number", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn tree_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_source_filter(parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    fn cyclic_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir").with_code("Ph")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(p, ph, parse_expr("PhoneDir.ID = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(c, ph, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "Parents.affiliation",
                "affiliation",
            ))
            .with_correspondence(ValueCorrespondence::identity("PhoneDir.number", "number"))
            .with_source_filter(parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    fn assert_same(m: &Mapping, cache: Option<&EvalCache>) {
        let legacy = m.evaluate(&db(), &funcs()).unwrap();
        let planned = Plan::new(m, &db(), &funcs(), cache)
            .unwrap()
            .evaluate(&db(), &funcs(), cache)
            .unwrap();
        assert_eq!(legacy.scheme(), planned.scheme());
        assert_eq!(legacy.rows(), planned.rows());
    }

    #[test]
    fn plans_are_well_formed_and_typed() {
        for m in [tree_mapping(), cyclic_mapping()] {
            let plan = Plan::new(&m, &db(), &funcs(), None).unwrap();
            plan.root().check().unwrap();
            let scheme = plan.root().scheme(&db()).unwrap();
            assert_eq!(scheme, m.target_scheme());
        }
    }

    #[test]
    fn tree_mappings_take_the_outer_join_plan_unchanged() {
        let m = tree_mapping();
        let plan = Plan::new(&m, &db(), &funcs(), None).unwrap();
        assert_eq!(plan.algo(), PlanAlgo::OuterJoin);
        assert!(plan.pushed_filters().is_empty());
        assert_eq!(plan.pruned_subgraphs(), 0);
        assert_same(&m, None);
    }

    #[test]
    fn cyclic_mappings_push_strong_filters_and_prune() {
        let m = cyclic_mapping();
        let plan = Plan::new(&m, &db(), &funcs(), None).unwrap();
        assert_eq!(plan.algo(), PlanAlgo::Naive);
        assert_eq!(plan.pushed_filters().len(), 1);
        // subgraphs not containing Children ({P}, {Ph}, {P,Ph}) are
        // pruned by the strong Children.age filter
        assert_eq!(plan.pruned_subgraphs(), 3);
        assert_same(&m, None);
    }

    #[test]
    fn non_pushable_filters_leave_the_plan_definitional() {
        // coalesce is non-strict: true on a null-filled row can decay
        let mut m = cyclic_mapping();
        m.source_filters = vec![parse_expr("coalesce(Children.age, 99) < 7").unwrap()];
        let plan = Plan::new(&m, &db(), &funcs(), None).unwrap();
        assert!(plan.pushed_filters().is_empty());
        assert_eq!(plan.pruned_subgraphs(), 0);
        assert_same(&m, None);
    }

    #[test]
    fn partially_bound_filters_prune_only_disjoint_branches() {
        // references Children and PhoneDir: {Parents} alone is disjoint
        // with neither... it shares no alias with the filter, so it is
        // pruned; {Children,Parents} binds the filter only partially and
        // must stay unfiltered
        let mut m = cyclic_mapping();
        m.source_filters =
            vec![parse_expr("Children.age < 7 AND PhoneDir.number LIKE '555%'").unwrap()];
        let plan = Plan::new(&m, &db(), &funcs(), None).unwrap();
        assert_eq!(plan.pushed_filters().len(), 1);
        assert!(plan.pruned_subgraphs() >= 1);
        assert_same(&m, None);
    }

    #[test]
    fn disjunctive_filters_across_aliases_stay_identical() {
        let mut m = cyclic_mapping();
        m.source_filters =
            vec![parse_expr("Children.age < 7 OR PhoneDir.number = '555-0102'").unwrap()];
        assert_same(&m, None);
    }

    #[test]
    fn planned_evaluation_is_cached_and_identical_under_a_cache() {
        let m = cyclic_mapping();
        let cache = EvalCache::new();
        assert_same(&m, Some(&cache));
        let hits_before = cache.stats().hits;
        let plan = Plan::new(&m, &db(), &funcs(), Some(&cache)).unwrap();
        let again = plan.evaluate(&db(), &funcs(), Some(&cache)).unwrap();
        assert_eq!(again.rows(), m.evaluate(&db(), &funcs()).unwrap().rows());
        assert!(
            cache.stats().hits > hits_before,
            "repeat must hit Q(M).plan"
        );
        // warm branches are annotated as such on a rebuild
        let rebuilt = Plan::new(&m, &db(), &funcs(), Some(&cache)).unwrap();
        assert!(rebuilt.branches().iter().any(|b| b.warm));
    }

    #[test]
    fn plan_and_definitional_caches_never_share_result_entries() {
        let m = cyclic_mapping();
        let cache = EvalCache::new();
        let planned = Plan::new(&m, &db(), &funcs(), Some(&cache))
            .unwrap()
            .evaluate(&db(), &funcs(), Some(&cache))
            .unwrap();
        let legacy = m.evaluate_cached(&db(), &funcs(), Some(&cache)).unwrap();
        assert_eq!(planned.rows(), legacy.rows());
        let fp_plan = mapping_fingerprint_tagged(&m, &cache, "Q(M).plan");
        let fp_legacy = crate::incremental::mapping_fingerprint(&m, &cache);
        assert_ne!(fp_plan, fp_legacy);
        assert!(cache.peek(fp_plan).is_some());
        assert!(cache.peek(fp_legacy).is_some());
    }

    #[test]
    fn evaluate_planned_entry_points_delegate() {
        let m = cyclic_mapping();
        let legacy = m.evaluate(&db(), &funcs()).unwrap();
        assert_eq!(
            legacy.rows(),
            m.evaluate_planned(&db(), &funcs()).unwrap().rows()
        );
        let cache = EvalCache::new();
        assert_eq!(
            legacy.rows(),
            m.evaluate_planned_cached(&db(), &funcs(), Some(&cache))
                .unwrap()
                .rows()
        );
    }
}
