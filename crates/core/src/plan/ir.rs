//! The planner's relational-algebra IR.
//!
//! A [`RelExpr`] tree describes a mapping query `Q(M)` as algebra over
//! the source relations: scans joined into per-subgraph `F(J)` chains
//! (or a left-deep outer-join chain on trees), a minimum union, filters,
//! and a final projection onto the target schema. The tree is *typed*:
//! [`RelExpr::scheme`] infers each node's output scheme from the
//! database, [`RelExpr::bound_vars`] / [`RelExpr::free_vars`] track
//! which relation aliases a subtree binds versus references, and
//! [`RelExpr::check`] rejects trees that reference an alias below the
//! point where it is bound — the invariant the filter-pushdown rewrite
//! must preserve.

use std::collections::BTreeSet;

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::schema::{RelSchema, Scheme};

use crate::correspondence::ValueCorrespondence;

/// Which predicate class a [`RelExpr::Filter`] node carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterScope {
    /// A source filter `C_S`, evaluated over data associations.
    Source,
    /// A target filter `C_T`, evaluated over produced target tuples.
    Target,
}

/// A node of the planner's algebra.
///
/// The variants mirror exactly the operations the engine's evaluation
/// pipeline performs, so a plan is an honest description of the work:
/// execution follows the tree's structure (which subgraphs, which
/// filters where, which join order) even where it delegates the inner
/// loops to the tuned kernels in
/// [`full_disjunction`](crate::full_disjunction).
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// A base-relation scan, qualified by its node alias.
    Scan {
        /// Alias binding the scan (the query-graph node alias).
        alias: String,
        /// The stored relation scanned.
        relation: String,
    },
    /// A join of two subtrees under a predicate.
    Join {
        /// Left input.
        left: Box<RelExpr>,
        /// Right input.
        right: Box<RelExpr>,
        /// Join predicate (conjunction of the query-graph edges closed
        /// by this step).
        predicate: Expr,
        /// `true` for the tree plan's full outer joins, `false` for the
        /// inner joins inside an `F(J)`.
        outer: bool,
    },
    /// A predicate filter over its input's rows.
    Filter {
        /// Input.
        input: Box<RelExpr>,
        /// The predicate.
        predicate: Expr,
        /// Source- or target-side predicate.
        scope: FilterScope,
        /// `true` when this node is a pushed-down copy inside a union
        /// branch (the authoritative top-level filter remains in place;
        /// pushed copies are semantically redundant but shrink the
        /// intermediate results).
        pushed: bool,
    },
    /// Minimum (subsuming) union: inputs are padded to `pad` and unioned,
    /// then subsumed and duplicate rows are removed, keeping first
    /// occurrences — `F(J₁) ⊕ … ⊕ F(Jₖ)` of the naive full disjunction.
    Union {
        /// One branch per induced connected subgraph, canonical order.
        inputs: Vec<RelExpr>,
        /// The full graph scheme every branch is padded to.
        pad: Scheme,
    },
    /// Projection onto the target schema through value correspondences;
    /// unmapped target attributes become null. Output rows are distinct.
    Project {
        /// Input.
        input: Box<RelExpr>,
        /// The value correspondences `V`.
        correspondences: Vec<ValueCorrespondence>,
        /// The target relation schema.
        target: RelSchema,
    },
}

impl RelExpr {
    /// The aliases whose columns this node's *output* provides — the
    /// variables a parent's predicate may reference.
    ///
    /// A [`RelExpr::Union`] binds every qualifier of its pad scheme
    /// (branches missing an alias contribute nulls after padding), and a
    /// [`RelExpr::Project`] rebinds everything to the target relation's
    /// name.
    #[must_use]
    pub fn bound_vars(&self) -> BTreeSet<String> {
        match self {
            RelExpr::Scan { alias, .. } => std::iter::once(alias.clone()).collect(),
            RelExpr::Join { left, right, .. } => {
                let mut s = left.bound_vars();
                s.extend(right.bound_vars());
                s
            }
            RelExpr::Filter { input, .. } => input.bound_vars(),
            RelExpr::Union { pad, .. } => pad.qualifiers().into_iter().map(str::to_owned).collect(),
            RelExpr::Project { target, .. } => std::iter::once(target.name().to_owned()).collect(),
        }
    }

    /// The aliases referenced by predicates or correspondences in this
    /// subtree that the referencing node's inputs do **not** bind. A
    /// well-formed plan has no free variables; the pushdown rewrite may
    /// only move a filter to a place where its references stay bound.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut free);
        free
    }

    fn collect_free(&self, free: &mut BTreeSet<String>) {
        match self {
            RelExpr::Scan { .. } => {}
            RelExpr::Join {
                left,
                right,
                predicate,
                ..
            } => {
                left.collect_free(free);
                right.collect_free(free);
                let mut bound = left.bound_vars();
                bound.extend(right.bound_vars());
                for q in predicate.qualifiers() {
                    if !bound.contains(q) {
                        free.insert(q.to_owned());
                    }
                }
            }
            RelExpr::Filter {
                input, predicate, ..
            } => {
                input.collect_free(free);
                let bound = input.bound_vars();
                for q in predicate.qualifiers() {
                    if !bound.contains(q) {
                        free.insert(q.to_owned());
                    }
                }
            }
            RelExpr::Union { inputs, .. } => {
                for i in inputs {
                    i.collect_free(free);
                }
            }
            RelExpr::Project {
                input,
                correspondences,
                ..
            } => {
                input.collect_free(free);
                let bound = input.bound_vars();
                for v in correspondences {
                    for q in v.expr.qualifiers() {
                        if !bound.contains(q) {
                            free.insert(q.to_owned());
                        }
                    }
                }
            }
        }
    }

    /// Validate the tree's variable discipline: every predicate and
    /// correspondence must reference only aliases bound by its inputs.
    pub fn check(&self) -> Result<()> {
        let free = self.free_vars();
        match free.into_iter().next() {
            None => Ok(()),
            Some(a) => Err(Error::Invalid(format!(
                "plan references unbound alias `{a}`"
            ))),
        }
    }

    /// Infer this node's output scheme against a database.
    pub fn scheme(&self, db: &Database) -> Result<Scheme> {
        match self {
            RelExpr::Scan { alias, relation } => {
                Ok(Scheme::of_relation(db.relation(relation)?.schema(), alias))
            }
            RelExpr::Join { left, right, .. } => left.scheme(db)?.concat(&right.scheme(db)?),
            RelExpr::Filter { input, .. } => input.scheme(db),
            RelExpr::Union { pad, .. } => Ok(pad.clone()),
            RelExpr::Project { target, .. } => Ok(Scheme::of_relation(target, target.name())),
        }
    }
}

/// Is `e` *extension-stable*: once true on a row, still true on any row
/// that fills some of that row's nulls with values?
///
/// This is the semantic property that lets the planner push a source
/// filter below the minimum union: a row's subsumers are exactly its
/// extensions, so a stable-true filter can never accept a row while
/// rejecting the subsumer that would have replaced it.
///
/// The analysis is polarity-aware. A comparison over **strict** scalars
/// (null in → null out) has fixed true/false outcomes — filling nulls
/// only resolves unknowns — so it is stable in both directions.
/// `IS NOT NULL` is stable-*true* only (false on a null can flip to
/// true when the null fills), `IS NULL` stable-*false* only, and `NOT`
/// swaps the directions. Non-strict scalars — functions (`coalesce`
/// maps null to a value) and `CASE` — disqualify any atom over them.
///
/// Together with strongness ([`Expr::is_strong`]) this is the licence
/// for the pushdown rewrite — see [`Plan`](super::Plan) for the full
/// argument.
#[must_use]
pub fn is_extension_stable(e: &Expr) -> bool {
    stable(e, true)
}

/// `positive`: does a true result survive refinement? Otherwise: does a
/// false result survive refinement?
fn stable(e: &Expr, positive: bool) -> bool {
    match e {
        // boolean-typed leaves are value-strict: their outcome is fixed
        // once non-null, and null is neither true nor false
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Not(x) => stable(x, !positive),
        // a negated atom over strict scalars is itself strict, so
        // `NOT IN` / `NOT BETWEEN` need no polarity flip
        Expr::InList { expr, list, .. } => {
            is_strict_scalar(expr) && list.iter().all(is_strict_scalar)
        }
        Expr::Between {
            expr, low, high, ..
        } => is_strict_scalar(expr) && is_strict_scalar(low) && is_strict_scalar(high),
        Expr::IsNull { expr, negated } => {
            // IS NOT NULL: true is pinned to a non-null value; IS NULL:
            // false is. The opposite direction can flip as nulls fill.
            is_strict_scalar(expr) && *negated == positive
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            is_strict_scalar(left) && is_strict_scalar(right)
        }
        Expr::Binary { op, left, right } => match op {
            clio_relational::expr::BinOp::And | clio_relational::expr::BinOp::Or => {
                stable(left, positive) && stable(right, positive)
            }
            _ => false, // arithmetic in boolean position: not a predicate
        },
        Expr::Neg(_) | Expr::Func { .. } | Expr::Case { .. } => false,
    }
}

/// Null-strict scalar: evaluates to null whenever any referenced column
/// is null, and to a value determined solely by its non-null inputs
/// otherwise. Division is excluded — it is strict, but pushing it would
/// let a by-zero error surface on rows the subsumption pass would have
/// removed before the top-level filters ran.
fn is_strict_scalar(e: &Expr) -> bool {
    match e {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Neg(x) => is_strict_scalar(x),
        Expr::Binary { op, left, right } => {
            !matches!(op, clio_relational::expr::BinOp::Div)
                && is_strict_scalar(left)
                && is_strict_scalar(right)
        }
        Expr::Not(_)
        | Expr::IsNull { .. }
        | Expr::Func { .. }
        | Expr::Case { .. }
        | Expr::InList { .. }
        | Expr::Between { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::parser::parse_expr;

    fn scan(alias: &str, relation: &str) -> RelExpr {
        RelExpr::Scan {
            alias: alias.into(),
            relation: relation.into(),
        }
    }

    #[test]
    fn bound_and_free_vars_track_aliases() {
        let join = RelExpr::Join {
            left: Box::new(scan("C", "Children")),
            right: Box::new(scan("P", "Parents")),
            predicate: parse_expr("C.mid = P.ID").unwrap(),
            outer: false,
        };
        assert_eq!(
            join.bound_vars().into_iter().collect::<Vec<_>>(),
            vec!["C".to_owned(), "P".to_owned()]
        );
        assert!(join.free_vars().is_empty());
        assert!(join.check().is_ok());

        let dangling = RelExpr::Filter {
            input: Box::new(scan("C", "Children")),
            predicate: parse_expr("P.ID = 1").unwrap(),
            scope: FilterScope::Source,
            pushed: false,
        };
        assert_eq!(
            dangling.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["P".to_owned()]
        );
        let err = dangling.check().unwrap_err();
        assert!(err.to_string().contains("unbound alias `P`"));
    }

    #[test]
    fn join_predicates_referencing_outside_inputs_are_free() {
        let join = RelExpr::Join {
            left: Box::new(scan("C", "Children")),
            right: Box::new(scan("P", "Parents")),
            predicate: parse_expr("C.mid = Ph.ID").unwrap(),
            outer: false,
        };
        assert!(join.free_vars().contains("Ph"));
    }

    #[test]
    fn extension_stability_excludes_non_strict_constructs() {
        for ok in [
            "C.age < 7",
            "C.a = 1 AND NOT (P.b = 2)",
            "C.a IN (1, 2) OR C.b BETWEEN 1 AND 3",
            "C.name LIKE 'A%'",
            "C.a IS NOT NULL",
            "NOT (C.a IS NULL)",
        ] {
            assert!(is_extension_stable(&parse_expr(ok).unwrap()), "{ok}");
        }
        for bad in [
            "C.a IS NULL",
            "NOT (C.a IS NOT NULL)",
            "coalesce(C.a, 'x') = 'z'",
            "C.a = 1 AND CASE WHEN C.b = 2 THEN TRUE ELSE FALSE END",
            "C.a / 2 = 1",
        ] {
            assert!(!is_extension_stable(&parse_expr(bad).unwrap()), "{bad}");
        }
    }
}
