//! The `explain` tree renderer.
//!
//! Renders a [`Plan`] as an indented tree using box-drawing connectors,
//! one operator per line, with the pushdown and scheduling decisions
//! annotated in place: pushed filter copies are marked `pushed`, the
//! minimum-union line reports how many subgraph branches the rewrite
//! pruned, and each branch line carries its node set plus the plan-time
//! warmth/cost estimate that orders the dispatch.

use clio_relational::schema::format_ident;

use super::ir::{FilterScope, RelExpr};
use super::{Plan, PlanAlgo};

/// Render `plan` as the multi-line `explain` tree.
#[must_use]
pub(super) fn render(plan: &Plan) -> String {
    let mut out = String::new();
    let algo = match plan.algo {
        PlanAlgo::OuterJoin => "outer-join (tree)",
        PlanAlgo::Naive => "minimum-union (cyclic)",
    };
    out.push_str(&format!(
        "plan for {} — {algo}",
        format_ident(plan.mapping.target.name())
    ));
    if !plan.pushed.is_empty() {
        out.push_str(&format!(
            ", {} filter(s) pushed, {} subgraph(s) pruned",
            plan.pushed.len(),
            plan.pruned
        ));
    }
    out.push('\n');
    node(plan, &plan.root, "", "", &mut out);
    out
}

fn label(plan: &Plan, e: &RelExpr) -> String {
    match e {
        RelExpr::Scan { alias, relation } if alias == relation => {
            format!("Scan {}", format_ident(relation))
        }
        RelExpr::Scan { alias, relation } => {
            format!("Scan {} AS {}", format_ident(relation), format_ident(alias))
        }
        RelExpr::Join {
            predicate, outer, ..
        } => {
            let kind = if *outer { "FullOuterJoin" } else { "Join" };
            format!("{kind} ON {predicate}")
        }
        RelExpr::Filter {
            predicate,
            scope,
            pushed,
            ..
        } => {
            let scope = match scope {
                FilterScope::Source => "source",
                FilterScope::Target => "target",
            };
            let pushed = if *pushed { ", pushed" } else { "" };
            format!("Filter ({scope}{pushed}) {predicate}")
        }
        RelExpr::Union { inputs, .. } => {
            let mut s = format!("MinUnion of {} subgraph(s)", inputs.len());
            if plan.pruned > 0 {
                s.push_str(&format!(" ({} pruned by pushed filters)", plan.pruned));
            }
            s
        }
        RelExpr::Project {
            correspondences,
            target,
            ..
        } => {
            let attrs: Vec<String> = target
                .attrs()
                .iter()
                .map(|a| format_ident(&a.name))
                .collect();
            format!(
                "Project {}({}) via {} correspondence(s)",
                format_ident(target.name()),
                attrs.join(", "),
                correspondences.len()
            )
        }
    }
}

/// One line for `e` under `head` (connector of this line) / `tail`
/// (prefix for its children), then recurse.
fn node(plan: &Plan, e: &RelExpr, head: &str, tail: &str, out: &mut String) {
    out.push_str(head);
    out.push_str(&label(plan, e));
    out.push('\n');
    let children: Vec<&RelExpr> = match e {
        RelExpr::Scan { .. } => Vec::new(),
        RelExpr::Join { left, right, .. } => vec![left, right],
        RelExpr::Filter { input, .. } => vec![input],
        RelExpr::Union { inputs, .. } => inputs.iter().collect(),
        RelExpr::Project { input, .. } => vec![input],
    };
    let is_union = matches!(e, RelExpr::Union { .. });
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let head = format!("{tail}{branch}");
        let tail = format!("{tail}{cont}");
        if is_union {
            // annotate the branch with its subgraph and schedule info
            let b = plan.branches[i];
            let members: Vec<String> = plan
                .mapping
                .graph
                .nodes()
                .iter()
                .enumerate()
                .filter(|(j, _)| b.mask & (1 << j) != 0)
                .map(|(_, n)| n.code.clone())
                .collect();
            let sched = if b.warm {
                "warm".to_owned()
            } else {
                format!("est {}", b.estimate)
            };
            out.push_str(&format!("{head}F({{{}}}) [{sched}]\n", members.join(",")));
            node(
                plan,
                child,
                &format!("{tail}└─ "),
                &format!("{tail}   "),
                out,
            );
        } else {
            node(plan, child, &head, &tail, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::correspondence::ValueCorrespondence;
    use crate::mapping::Mapping;
    use crate::plan::Plan;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::database::Database;
    use clio_relational::funcs::FuncRegistry;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("age", DataType::Int)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), 6i64.into(), "201".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["201".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn target() -> RelSchema {
        RelSchema::new("Kids", vec![Attribute::not_null("ID", DataType::Str)]).unwrap()
    }

    #[test]
    fn tree_plans_render_outer_join_chains() {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        let m = Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_target_not_null_filters();
        let plan = Plan::new(&m, &db(), &FuncRegistry::with_builtins(), None).unwrap();
        let text = plan.explain();
        assert!(text.contains("outer-join (tree)"), "{text}");
        assert!(
            text.contains("Filter (target) Kids.ID IS NOT NULL"),
            "{text}"
        );
        assert!(
            text.contains("Project Kids(ID) via 1 correspondence(s)"),
            "{text}"
        );
        assert!(
            text.contains("FullOuterJoin ON Children.mid = Parents.ID"),
            "{text}"
        );
        assert!(text.contains("└─ Scan Parents"), "{text}");
    }

    #[test]
    fn cyclic_plans_render_branches_with_annotations() {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        let p2 = g.add_node(Node::copy_of("P2", "Parents")).unwrap();
        g.add_edge(c, p2, parse_expr("Children.mid = P2.ID").unwrap())
            .unwrap();
        g.add_edge(p, p2, parse_expr("Parents.ID = P2.ID").unwrap())
            .unwrap();
        let m = Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_source_filter(parse_expr("Children.age < 7").unwrap());
        let plan = Plan::new(&m, &db(), &FuncRegistry::with_builtins(), None).unwrap();
        let text = plan.explain();
        assert!(text.contains("minimum-union (cyclic)"), "{text}");
        assert!(text.contains("1 filter(s) pushed"), "{text}");
        assert!(text.contains("pruned by pushed filters"), "{text}");
        assert!(
            text.contains("Filter (source, pushed) Children.age < 7"),
            "{text}"
        );
        assert!(text.contains("[est "), "{text}");
        assert!(text.contains("F({"), "{text}");
    }
}
