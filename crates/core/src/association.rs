//! Data associations and their coverage (paper Defs 3.5–3.7, 3.11).
//!
//! A *data association* of a query graph `G` is a tuple over the combined
//! scheme of all of `G`'s nodes; its **coverage** is the set of nodes it
//! involves (non-null). An [`AssociationSet`] is the materialized `D(G)`:
//! a wide table plus the coverage mask of each row.

use clio_relational::error::Result;
use clio_relational::schema::Scheme;
use clio_relational::table::Table;
use clio_relational::value::Value;

use crate::query_graph::QueryGraph;

/// Compute the coverage mask of a row over a graph's wide scheme: node `i`
/// is covered iff any of its columns is non-null. (Stored relations reject
/// all-null tuples, so this is exact.)
#[must_use]
pub fn row_coverage(graph: &QueryGraph, scheme: &Scheme, row: &[Value]) -> u64 {
    let mut mask = 0u64;
    for (i, node) in graph.nodes().iter().enumerate() {
        let any_non_null = scheme
            .indexes_of_qualifier(&node.alias)
            .iter()
            .any(|&k| !row[k].is_null());
        if any_non_null {
            mask |= 1 << i;
        }
    }
    mask
}

/// The materialized set of data associations `D(G)` of a mapping's query
/// graph: a table over the graph's wide scheme, with per-row coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationSet {
    table: Table,
    coverages: Vec<u64>,
}

impl AssociationSet {
    /// Wrap a table of associations, computing each row's coverage.
    #[must_use]
    pub fn from_table(graph: &QueryGraph, table: Table) -> AssociationSet {
        let coverages = table
            .rows()
            .iter()
            .map(|r| row_coverage(graph, table.scheme(), r))
            .collect();
        AssociationSet { table, coverages }
    }

    /// The underlying wide table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The scheme of the associations.
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        self.table.scheme()
    }

    /// Row data of association `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.table.rows()[i]
    }

    /// Coverage mask of association `i`.
    #[must_use]
    pub fn coverage(&self, i: usize) -> u64 {
        self.coverages[i]
    }

    /// Number of associations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the set empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The distinct coverage masks present, ascending by (popcount, mask).
    /// These are the paper's non-empty *categories* of `D(G)` (Sec 4.2).
    #[must_use]
    pub fn categories(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for &c in &self.coverages {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out.sort_by_key(|&m| (m.count_ones(), m));
        out
    }

    /// Indexes of associations with the given coverage.
    #[must_use]
    pub fn in_category(&self, coverage: u64) -> Vec<usize> {
        self.coverages
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == coverage)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sort rows canonically (value order), keeping coverage tags aligned.
    /// Used for deterministic figure rendering and golden tests.
    pub fn sort_canonical(&mut self, graph: &QueryGraph) {
        let mut rows = std::mem::take(self.table.rows_mut());
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        *self.table.rows_mut() = rows;
        self.coverages = self
            .table
            .rows()
            .iter()
            .map(|r| row_coverage(graph, self.table.scheme(), r))
            .collect();
    }

    /// Render as the paper's Figure-8 style table: rows tagged with their
    /// coverage (`CPPh`, `PPh`, …).
    #[must_use]
    pub fn render(&self, graph: &QueryGraph) -> String {
        let tags: Vec<String> = self
            .coverages
            .iter()
            .map(|&c| graph.coverage_tag(c))
            .collect();
        clio_relational::display::render_table(self.table.scheme(), self.table.rows(), &tags)
    }

    /// Pad a row over a sub-scheme into a full-width association row —
    /// Def 3.6's "padded with nulls on all attributes in `N − N_J`".
    pub fn pad_row(full: &Scheme, sub: &Scheme, row: &[Value]) -> Result<Vec<Value>> {
        let positions = full.positions_of(sub)?;
        let mut out = vec![Value::Null; full.arity()];
        for (src, &dst) in positions.iter().enumerate() {
            out[dst] = row[src].clone();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::Node;
    use clio_relational::expr::Expr;
    use clio_relational::schema::Column;
    use clio_relational::value::DataType;

    fn graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("C")).unwrap();
        g.add_node(Node::new("P")).unwrap();
        g.add_edge(0, 1, Expr::col_eq("C.mid", "P.ID")).unwrap();
        g
    }

    fn scheme() -> Scheme {
        Scheme::new(vec![
            Column::new("C", "ID", DataType::Str),
            Column::new("C", "mid", DataType::Str),
            Column::new("P", "ID", DataType::Str),
        ])
    }

    #[test]
    fn coverage_from_non_null_columns() {
        let g = graph();
        let s = scheme();
        assert_eq!(
            row_coverage(&g, &s, &["002".into(), "202".into(), "202".into()]),
            0b11
        );
        assert_eq!(
            row_coverage(&g, &s, &["002".into(), Value::Null, Value::Null]),
            0b01
        );
        assert_eq!(
            row_coverage(&g, &s, &[Value::Null, Value::Null, "205".into()]),
            0b10
        );
    }

    #[test]
    fn association_set_categories() {
        let g = graph();
        let t = Table::new(
            scheme(),
            vec![
                vec!["002".into(), "202".into(), "202".into()],
                vec!["004".into(), Value::Null, Value::Null],
                vec![Value::Null, Value::Null, "205".into()],
                vec!["001".into(), "201".into(), "201".into()],
            ],
        );
        let a = AssociationSet::from_table(&g, t);
        assert_eq!(a.len(), 4);
        assert_eq!(a.categories(), vec![0b01, 0b10, 0b11]);
        assert_eq!(a.in_category(0b11), vec![0, 3]);
        assert_eq!(a.coverage(1), 0b01);
    }

    #[test]
    fn pad_row_places_values() {
        let full = scheme();
        let sub = Scheme::new(vec![Column::new("P", "ID", DataType::Str)]);
        let padded = AssociationSet::pad_row(&full, &sub, &["205".into()]).unwrap();
        assert_eq!(padded, vec![Value::Null, Value::Null, Value::str("205")]);
    }

    #[test]
    fn render_tags_each_row() {
        let g = graph();
        let t = Table::new(
            scheme(),
            vec![vec!["002".into(), "202".into(), "202".into()]],
        );
        let a = AssociationSet::from_table(&g, t);
        let s = a.render(&g);
        assert!(s.contains("CP"));
        assert!(s.contains("002"));
    }

    #[test]
    fn sort_canonical_keeps_tags_aligned() {
        let g = graph();
        let t = Table::new(
            scheme(),
            vec![
                vec![Value::Null, Value::Null, "205".into()],
                vec!["001".into(), "201".into(), "201".into()],
            ],
        );
        let mut a = AssociationSet::from_table(&g, t);
        a.sort_canonical(&g);
        assert_eq!(a.coverage(0), 0b10); // null-first row sorts first
        assert_eq!(a.coverage(1), 0b11);
    }
}
