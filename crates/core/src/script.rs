//! Mapping scripts: a line-oriented text format for saving and loading
//! mappings.
//!
//! Clio sessions build mappings incrementally over hours of exploration
//! (paper Sec 6); persisting them is essential for real use. The format
//! is deliberately human-readable and diff-friendly:
//!
//! ```text
//! # a Clio mapping script
//! target Kids (ID str not null, name str, affiliation str)
//! node Children
//! node Parents2 = Parents code P2
//! edge Children -- Parents2 : Children.mid = Parents2.ID
//! corr Children.ID -> ID
//! corr concat(PhoneDir.type, ',', PhoneDir.number) -> contactPh
//! where source Children.age < 7
//! where target Kids.ID IS NOT NULL
//! ```
//!
//! Everything round-trips: `parse_mapping(&write_mapping(&m)) == m`.
//! Identifiers that carry whitespace or punctuation (or collide with an
//! expression keyword) are written double-quoted with `""` escapes —
//! `node "My Rel"` — matching the expression lexer's quoting rules, so
//! such names survive the round trip too. Parse errors from embedded
//! expressions are reported with the script line number and the column
//! within that line.

use clio_relational::error::{Error, Result};
use clio_relational::parser::parse_expr;
use clio_relational::schema::{format_ident, Attribute, RelSchema};
use clio_relational::value::DataType;

use crate::correspondence::ValueCorrespondence;
use crate::mapping::Mapping;
use crate::query_graph::{Node, QueryGraph};

/// Serialize a mapping to script text.
#[must_use]
pub fn write_mapping(m: &Mapping) -> String {
    let mut out = String::new();
    // target schema
    out.push_str(&format!("target {} (", format_ident(m.target.name())));
    for (i, a) in m.target.attrs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", format_ident(&a.name), a.ty));
        if a.not_null {
            out.push_str(" not null");
        }
    }
    out.push_str(")\n");
    // nodes
    for n in m.graph.nodes() {
        out.push_str("node ");
        out.push_str(&format_ident(&n.alias));
        if n.alias != n.relation {
            out.push_str(&format!(" = {}", format_ident(&n.relation)));
        }
        let default_node = if n.alias == n.relation {
            Node::new(n.alias.clone())
        } else {
            Node::copy_of(n.alias.clone(), n.relation.clone())
        };
        if n.code != default_node.code {
            out.push_str(&format!(" code {}", format_ident(&n.code)));
        }
        out.push('\n');
    }
    // edges
    for e in m.graph.edges() {
        out.push_str(&format!(
            "edge {} -- {} : {}\n",
            format_ident(&m.graph.nodes()[e.a].alias),
            format_ident(&m.graph.nodes()[e.b].alias),
            e.predicate
        ));
    }
    // correspondences
    for v in &m.correspondences {
        out.push_str(&format!(
            "corr {} -> {}\n",
            v.expr,
            format_ident(&v.target_attr)
        ));
    }
    // filters
    for f in &m.source_filters {
        out.push_str(&format!("where source {f}\n"));
    }
    for f in &m.target_filters {
        out.push_str(&format!("where target {f}\n"));
    }
    out
}

fn parse_data_type(s: &str) -> Result<DataType> {
    match s {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        "bool" => Ok(DataType::Bool),
        other => Err(Error::Invalid(format!(
            "unknown type `{other}` in mapping script"
        ))),
    }
}

/// One whitespace-separated word of a script line; `quoted` is true when
/// it was written `"..."` (so it never acts as punctuation like `=`).
#[derive(Debug, Clone, PartialEq)]
struct Word {
    text: String,
    quoted: bool,
}

/// Split a script-line fragment into words, where a `"..."`-quoted word
/// may contain whitespace and `""` escapes an embedded quote.
fn split_words(s: &str) -> Result<Vec<Word>> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_whitespace() {
            i += 1;
        } else if chars[i] == '"' {
            let mut text = String::new();
            i += 1;
            loop {
                match chars.get(i) {
                    None => return Err(Error::Invalid("unterminated quoted identifier".into())),
                    Some('"') if chars.get(i + 1) == Some(&'"') => {
                        text.push('"');
                        i += 2;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(c) => {
                        text.push(*c);
                        i += 1;
                    }
                }
            }
            out.push(Word { text, quoted: true });
        } else {
            let start = i;
            while i < chars.len() && !chars[i].is_whitespace() && chars[i] != '"' {
                i += 1;
            }
            out.push(Word {
                text: chars[start..i].iter().collect(),
                quoted: false,
            });
        }
    }
    Ok(out)
}

/// Parse one identifier fragment: a `"..."`-quoted name (nothing may
/// follow it), or the fragment trimmed verbatim.
fn parse_ident_fragment(s: &str) -> Result<String> {
    let s = s.trim();
    if !s.starts_with('"') {
        return Ok(s.to_string());
    }
    let words = split_words(s)?;
    match words.as_slice() {
        [w] if w.quoted => Ok(w.text.clone()),
        _ => Err(Error::Invalid(format!(
            "expected a single identifier, got `{s}`"
        ))),
    }
}

/// Byte positions of `pat` in `s` that lie outside both `'...'` string
/// literals and `"..."` quoted identifiers.
fn find_unquoted(s: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut in_sq = false;
    let mut in_dq = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_dq => in_sq = !in_sq,
            '"' if !in_sq => in_dq = !in_dq,
            _ => {}
        }
        // check *before* this position flips state for the next char:
        // a separator starting at a quote char is never a match anyway
        if !in_sq && !in_dq && s[i..].starts_with(pat) {
            out.push(i);
        }
    }
    out
}

/// Parse a target-schema declaration of the form
/// `Name (attr type [not null], ...)` — the same syntax as the script's
/// `target` line. Public so front-ends (the CLI's `--target` flag) can
/// reuse it. `Name` and attribute names may be `"..."`-quoted.
pub fn parse_target_schema(rest: &str) -> Result<RelSchema> {
    let rest = rest.trim();
    // the relation name: quoted (may contain `(`), or everything before
    // the first `(` verbatim
    let (name, attrs_part) = if rest.starts_with('"') {
        let chars: Vec<char> = rest.chars().collect();
        let mut i = 1usize;
        let mut name = String::new();
        loop {
            match chars.get(i) {
                None => return Err(Error::Invalid("unterminated quoted identifier".into())),
                Some('"') if chars.get(i + 1) == Some(&'"') => {
                    name.push('"');
                    i += 2;
                }
                Some('"') => {
                    i += 1;
                    break;
                }
                Some(c) => {
                    name.push(*c);
                    i += 1;
                }
            }
        }
        let tail: String = chars[i..].iter().collect();
        let tail = tail.trim_start().to_string();
        let attrs = tail
            .strip_prefix('(')
            .ok_or_else(|| Error::Invalid("target line needs `(attrs)`".into()))?
            .to_string();
        (name, attrs)
    } else {
        let (name, attrs) = rest
            .split_once('(')
            .ok_or_else(|| Error::Invalid("target line needs `(attrs)`".into()))?;
        (name.trim().to_string(), attrs.to_string())
    };
    let attrs_part = attrs_part
        .strip_suffix(')')
        .ok_or_else(|| Error::Invalid("target line missing closing `)`".into()))?;
    let mut attrs = Vec::new();
    for start in comma_splits(attrs_part) {
        let spec = start.trim();
        if spec.is_empty() {
            continue;
        }
        let words = split_words(spec)?;
        let mut words = words.iter();
        let attr_name = words
            .next()
            .ok_or_else(|| Error::Invalid("empty attribute spec".into()))?;
        let ty = parse_data_type(
            &words
                .next()
                .ok_or_else(|| {
                    Error::Invalid(format!("attribute `{}` missing type", attr_name.text))
                })?
                .text,
        )?;
        let rest: Vec<&str> = words.map(|w| w.text.as_str()).collect();
        let not_null = match rest.as_slice() {
            [] => false,
            ["not", "null"] => true,
            other => {
                return Err(Error::Invalid(format!(
                    "unexpected attribute modifier `{}`",
                    other.join(" ")
                )))
            }
        };
        attrs.push(if not_null {
            Attribute::not_null(&attr_name.text, ty)
        } else {
            Attribute::new(&attr_name.text, ty)
        });
    }
    RelSchema::new(name, attrs)
}

/// Split on commas that lie outside quotes.
fn comma_splits(s: &str) -> Vec<&str> {
    let cuts = find_unquoted(s, ",");
    let mut out = Vec::new();
    let mut start = 0usize;
    for cut in cuts {
        out.push(&s[start..cut]);
        start = cut + 1;
    }
    out.push(&s[start..]);
    out
}

/// Parse a mapping script.
pub fn parse_mapping(text: &str) -> Result<Mapping> {
    let mut target: Option<RelSchema> = None;
    let mut graph = QueryGraph::new();
    let mut correspondences: Vec<ValueCorrespondence> = Vec::new();
    let mut source_filters = Vec::new();
    let mut target_filters = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| Error::Invalid(format!("line {}: {msg}", lineno + 1));
        // relocate an expression parse error onto this script line: the
        // fragment is a subslice of `raw`, so its char offset within the
        // line shifts the error's column
        let expr_err = |e: Error, fragment: &str| -> Error {
            match e {
                Error::Parse {
                    column,
                    token,
                    message,
                    ..
                } => {
                    let off = (fragment.as_ptr() as usize).wrapping_sub(raw.as_ptr() as usize);
                    let col = if off <= raw.len() {
                        raw[..off].chars().count() + column
                    } else {
                        column
                    };
                    let near = if token.is_empty() {
                        String::new()
                    } else {
                        format!(" (near `{token}`)")
                    };
                    Error::Invalid(format!(
                        "line {}, column {col}: {message}{near}",
                        lineno + 1
                    ))
                }
                other => other,
            }
        };
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "target" => {
                if target.is_some() {
                    return Err(err("duplicate target line".into()));
                }
                target = Some(parse_target_schema(rest.trim())?);
            }
            "node" => {
                // node ALIAS [= RELATION] [code CODE]
                let words = split_words(rest).map_err(|e| err(e.to_string()))?;
                let mut words = words.into_iter();
                let alias = words
                    .next()
                    .ok_or_else(|| err("node line needs an alias".into()))?
                    .text;
                let mut relation = alias.clone();
                let mut code: Option<String> = None;
                while let Some(w) = words.next() {
                    match (w.text.as_str(), w.quoted) {
                        ("=", false) => {
                            relation = words
                                .next()
                                .ok_or_else(|| err("`=` needs a relation name".into()))?
                                .text;
                        }
                        ("code", false) => {
                            code = Some(
                                words
                                    .next()
                                    .ok_or_else(|| err("`code` needs a value".into()))?
                                    .text,
                            );
                        }
                        (other, _) => return Err(err(format!("unexpected token `{other}`"))),
                    }
                }
                let mut node = if alias == relation {
                    Node::new(alias)
                } else {
                    Node::copy_of(alias, relation)
                };
                if let Some(c) = code {
                    node = node.with_code(c);
                }
                graph.add_node(node)?;
            }
            "edge" => {
                // edge A -- B : predicate (separators outside any quotes)
                let colon = find_unquoted(rest, ":")
                    .first()
                    .copied()
                    .ok_or_else(|| err("edge line needs `: predicate`".into()))?;
                let (endpoints, predicate) = (&rest[..colon], &rest[colon + 1..]);
                let dashes = find_unquoted(endpoints, "--")
                    .first()
                    .copied()
                    .ok_or_else(|| err("edge line needs `A -- B`".into()))?;
                let a_name =
                    parse_ident_fragment(&endpoints[..dashes]).map_err(|e| err(e.to_string()))?;
                let b_name = parse_ident_fragment(&endpoints[dashes + 2..])
                    .map_err(|e| err(e.to_string()))?;
                let a = graph
                    .node_by_alias(&a_name)
                    .ok_or_else(|| err(format!("unknown node `{a_name}`")))?;
                let b = graph
                    .node_by_alias(&b_name)
                    .ok_or_else(|| err(format!("unknown node `{b_name}`")))?;
                let pred_text = predicate.trim();
                let pred = parse_expr(pred_text).map_err(|e| expr_err(e, pred_text))?;
                graph.add_edge(a, b, pred)?;
            }
            "corr" => {
                // corr EXPR -> ATTR  (split on the LAST unquoted ` -> `)
                let idx = find_unquoted(rest, " -> ")
                    .last()
                    .copied()
                    .ok_or_else(|| err("corr line needs ` -> target_attr`".into()))?;
                let expr_text = rest[..idx].trim();
                let expr = parse_expr(expr_text).map_err(|e| expr_err(e, expr_text))?;
                let attr =
                    parse_ident_fragment(&rest[idx + 4..]).map_err(|e| err(e.to_string()))?;
                if attr.is_empty() {
                    return Err(err("corr line has an empty target attribute".into()));
                }
                correspondences.push(ValueCorrespondence::new(expr, attr));
            }
            "where" => {
                let (kind, pred) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("where line needs `source|target predicate`".into()))?;
                let pred_text = pred.trim();
                let e = parse_expr(pred_text).map_err(|e| expr_err(e, pred_text))?;
                match kind {
                    "source" => source_filters.push(e),
                    "target" => target_filters.push(e),
                    other => return Err(err(format!("unknown filter kind `{other}`"))),
                }
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    let target =
        target.ok_or_else(|| Error::Invalid("mapping script has no target line".into()))?;
    let mut m = Mapping::new(graph, target);
    m.correspondences = correspondences;
    m.source_filters = source_filters;
    m.target_filters = target_filters;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::expr::Expr;
    use clio_relational::schema::Attribute;
    use clio_relational::value::DataType;

    fn sample_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p2 = g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, p2, Expr::col_eq("Children.mid", "Parents2.ID"))
            .unwrap();
        g.add_edge(p2, ph, Expr::col_eq("PhoneDir.ID", "Parents2.ID"))
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
                Attribute::new("FamilyIncome", DataType::Int),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(
                ValueCorrespondence::parse(
                    "concat(PhoneDir.type, ',', PhoneDir.number)",
                    "contactPh",
                )
                .unwrap(),
            )
            .with_source_filter(clio_relational::parser::parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    #[test]
    fn round_trip_sample() {
        let m = sample_mapping();
        let text = write_mapping(&m);
        let parsed = parse_mapping(&text).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn script_text_is_readable() {
        let text = write_mapping(&sample_mapping());
        assert!(text.contains("target Kids (ID str not null, contactPh str, FamilyIncome int)"));
        assert!(text.contains("node Parents2 = Parents"));
        assert!(text.contains("edge Children -- Parents2 : Children.mid = Parents2.ID"));
        assert!(text.contains("corr Children.ID -> ID"));
        assert!(text.contains("where source Children.age < 7"));
        assert!(text.contains("where target Kids.ID IS NOT NULL"));
    }

    #[test]
    fn round_trip_paper_mappings() {
        // exercised again at integration level; kept here for fast feedback
        let m = sample_mapping().without_filters();
        let parsed = parse_mapping(&write_mapping(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\ntarget T (a int)\n\nnode R\n";
        let m = parse_mapping(text).unwrap();
        assert_eq!(m.target.name(), "T");
        assert_eq!(m.graph.node_count(), 1);
    }

    #[test]
    fn custom_code_round_trips() {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("PhoneDir").with_code("D")).unwrap();
        let m = Mapping::new(
            g,
            RelSchema::new("T", vec![Attribute::new("a", DataType::Int)]).unwrap(),
        );
        let text = write_mapping(&m);
        assert!(text.contains("node PhoneDir code D"));
        assert_eq!(parse_mapping(&text).unwrap(), m);
    }

    #[test]
    fn parse_errors_are_located() {
        for (text, needle) in [
            ("node R", "no target line"),
            ("target T (a int)\nfrobnicate x", "unknown directive"),
            ("target T (a int)\nedge A -- B : x = y", "unknown node"),
            ("target T (a int)\nnode R\nedge R : x", "edge line needs"),
            ("target T (a int)\ncorr a + b", "corr line needs"),
            (
                "target T (a int)\nwhere sideways a = 1",
                "unknown filter kind",
            ),
            ("target T (a frobs)", "unknown type"),
            ("target T (a int)\ntarget T (b int)", "duplicate target"),
            ("target T (a int zesty)", "unexpected attribute modifier"),
        ] {
            let err = parse_mapping(text).unwrap_err().to_string();
            assert!(err.contains(needle), "for {text:?}: got {err}");
        }
    }

    #[test]
    fn expr_errors_carry_script_line_and_column() {
        let text = "target T (a int)\nnode R\nwhere source R.x = )";
        let err = parse_mapping(text).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("column 20"), "{err}");
        assert!(err.contains("near `)`"), "{err}");
        // end-of-input errors locate past the line's last character
        let text = "target T (a int)\nnode R\nedge R -- R : R.x =";
        let err = parse_mapping(text).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("end of input"), "{err}");
    }

    #[test]
    fn quoted_identifiers_round_trip() {
        use clio_relational::parser::parse_expr;
        let mut g = QueryGraph::new();
        let a = g.add_node(Node::copy_of("My Rel", "weird rel")).unwrap();
        let b = g.add_node(Node::new("Other").with_code("x y")).unwrap();
        g.add_edge(a, b, parse_expr("\"My Rel\".\"a b\" = Other.z").unwrap())
            .unwrap();
        let target = RelSchema::new(
            "Tar get",
            vec![
                Attribute::not_null("id col", DataType::Str),
                Attribute::new("and", DataType::Int),
            ],
        )
        .unwrap();
        let m = Mapping::new(g, target)
            .with_correspondence(
                ValueCorrespondence::parse("\"My Rel\".\"a b\"", "id col").unwrap(),
            )
            .with_source_filter(parse_expr("\"My Rel\".\"a b\" IS NOT NULL").unwrap());
        let text = write_mapping(&m);
        assert!(
            text.contains("node \"My Rel\" = \"weird rel\""),
            "unexpected script:\n{text}"
        );
        assert!(text.contains("target \"Tar get\" (\"id col\" str not null, \"and\" int)"));
        let parsed = parse_mapping(&text).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn corr_splits_on_last_arrow() {
        // an expression containing `>` plus the arrow separator
        let text = "target T (a int)\nnode R\ncorr CASE WHEN R.x > 1 THEN R.x ELSE 0 END -> a\n";
        let m = parse_mapping(text).unwrap();
        assert_eq!(m.correspondences.len(), 1);
        assert_eq!(m.correspondences[0].target_attr, "a");
    }
}
