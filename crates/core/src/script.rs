//! Mapping scripts: a line-oriented text format for saving and loading
//! mappings.
//!
//! Clio sessions build mappings incrementally over hours of exploration
//! (paper Sec 6); persisting them is essential for real use. The format
//! is deliberately human-readable and diff-friendly:
//!
//! ```text
//! # a Clio mapping script
//! target Kids (ID str not null, name str, affiliation str)
//! node Children
//! node Parents2 = Parents code P2
//! edge Children -- Parents2 : Children.mid = Parents2.ID
//! corr Children.ID -> ID
//! corr concat(PhoneDir.type, ',', PhoneDir.number) -> contactPh
//! where source Children.age < 7
//! where target Kids.ID IS NOT NULL
//! ```
//!
//! Everything round-trips: `parse_mapping(&write_mapping(&m)) == m`.

use clio_relational::error::{Error, Result};
use clio_relational::parser::parse_expr;
use clio_relational::schema::{Attribute, RelSchema};
use clio_relational::value::DataType;

use crate::correspondence::ValueCorrespondence;
use crate::mapping::Mapping;
use crate::query_graph::{Node, QueryGraph};

/// Serialize a mapping to script text.
#[must_use]
pub fn write_mapping(m: &Mapping) -> String {
    let mut out = String::new();
    // target schema
    out.push_str(&format!("target {} (", m.target.name()));
    for (i, a) in m.target.attrs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", a.name, a.ty));
        if a.not_null {
            out.push_str(" not null");
        }
    }
    out.push_str(")\n");
    // nodes
    for n in m.graph.nodes() {
        out.push_str("node ");
        out.push_str(&n.alias);
        if n.alias != n.relation {
            out.push_str(&format!(" = {}", n.relation));
        }
        let default_node = if n.alias == n.relation {
            Node::new(n.alias.clone())
        } else {
            Node::copy_of(n.alias.clone(), n.relation.clone())
        };
        if n.code != default_node.code {
            out.push_str(&format!(" code {}", n.code));
        }
        out.push('\n');
    }
    // edges
    for e in m.graph.edges() {
        out.push_str(&format!(
            "edge {} -- {} : {}\n",
            m.graph.nodes()[e.a].alias,
            m.graph.nodes()[e.b].alias,
            e.predicate
        ));
    }
    // correspondences
    for v in &m.correspondences {
        out.push_str(&format!("corr {} -> {}\n", v.expr, v.target_attr));
    }
    // filters
    for f in &m.source_filters {
        out.push_str(&format!("where source {f}\n"));
    }
    for f in &m.target_filters {
        out.push_str(&format!("where target {f}\n"));
    }
    out
}

fn parse_data_type(s: &str) -> Result<DataType> {
    match s {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        "bool" => Ok(DataType::Bool),
        other => Err(Error::Invalid(format!(
            "unknown type `{other}` in mapping script"
        ))),
    }
}

/// Parse a target-schema declaration of the form
/// `Name (attr type [not null], ...)` — the same syntax as the script's
/// `target` line. Public so front-ends (the CLI's `--target` flag) can
/// reuse it.
pub fn parse_target_schema(rest: &str) -> Result<RelSchema> {
    let (name, attrs_part) = rest
        .split_once('(')
        .ok_or_else(|| Error::Invalid("target line needs `(attrs)`".into()))?;
    let name = name.trim();
    let attrs_part = attrs_part
        .strip_suffix(')')
        .ok_or_else(|| Error::Invalid("target line missing closing `)`".into()))?;
    let mut attrs = Vec::new();
    for spec in attrs_part.split(',') {
        let spec = spec.trim();
        if spec.is_empty() {
            continue;
        }
        let mut words = spec.split_whitespace();
        let attr_name = words
            .next()
            .ok_or_else(|| Error::Invalid("empty attribute spec".into()))?;
        let ty = parse_data_type(
            words
                .next()
                .ok_or_else(|| Error::Invalid(format!("attribute `{attr_name}` missing type")))?,
        )?;
        let rest: Vec<&str> = words.collect();
        let not_null = match rest.as_slice() {
            [] => false,
            ["not", "null"] => true,
            other => {
                return Err(Error::Invalid(format!(
                    "unexpected attribute modifier `{}`",
                    other.join(" ")
                )))
            }
        };
        attrs.push(if not_null {
            Attribute::not_null(attr_name, ty)
        } else {
            Attribute::new(attr_name, ty)
        });
    }
    RelSchema::new(name, attrs)
}

/// Parse a mapping script.
pub fn parse_mapping(text: &str) -> Result<Mapping> {
    let mut target: Option<RelSchema> = None;
    let mut graph = QueryGraph::new();
    let mut correspondences: Vec<ValueCorrespondence> = Vec::new();
    let mut source_filters = Vec::new();
    let mut target_filters = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| Error::Invalid(format!("line {}: {msg}", lineno + 1));
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "target" => {
                if target.is_some() {
                    return Err(err("duplicate target line".into()));
                }
                target = Some(parse_target_schema(rest.trim())?);
            }
            "node" => {
                // node ALIAS [= RELATION] [code CODE]
                let mut words = rest.split_whitespace().peekable();
                let alias = words
                    .next()
                    .ok_or_else(|| err("node line needs an alias".into()))?
                    .to_owned();
                let mut relation = alias.clone();
                let mut code: Option<String> = None;
                while let Some(w) = words.next() {
                    match w {
                        "=" => {
                            relation = words
                                .next()
                                .ok_or_else(|| err("`=` needs a relation name".into()))?
                                .to_owned();
                        }
                        "code" => {
                            code = Some(
                                words
                                    .next()
                                    .ok_or_else(|| err("`code` needs a value".into()))?
                                    .to_owned(),
                            );
                        }
                        other => return Err(err(format!("unexpected token `{other}`"))),
                    }
                }
                let mut node = if alias == relation {
                    Node::new(alias)
                } else {
                    Node::copy_of(alias, relation)
                };
                if let Some(c) = code {
                    node = node.with_code(c);
                }
                graph.add_node(node)?;
            }
            "edge" => {
                // edge A -- B : predicate
                let (endpoints, predicate) = rest
                    .split_once(':')
                    .ok_or_else(|| err("edge line needs `: predicate`".into()))?;
                let (a, b) = endpoints
                    .split_once("--")
                    .ok_or_else(|| err("edge line needs `A -- B`".into()))?;
                let a = graph
                    .node_by_alias(a.trim())
                    .ok_or_else(|| err(format!("unknown node `{}`", a.trim())))?;
                let b = graph
                    .node_by_alias(b.trim())
                    .ok_or_else(|| err(format!("unknown node `{}`", b.trim())))?;
                graph.add_edge(a, b, parse_expr(predicate.trim())?)?;
            }
            "corr" => {
                // corr EXPR -> ATTR  (split on the LAST ` -> `)
                let idx = rest
                    .rfind(" -> ")
                    .ok_or_else(|| err("corr line needs ` -> target_attr`".into()))?;
                let expr = parse_expr(rest[..idx].trim())?;
                let attr = rest[idx + 4..].trim();
                if attr.is_empty() {
                    return Err(err("corr line has an empty target attribute".into()));
                }
                correspondences.push(ValueCorrespondence::new(expr, attr));
            }
            "where" => {
                let (kind, pred) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("where line needs `source|target predicate`".into()))?;
                let e = parse_expr(pred.trim())?;
                match kind {
                    "source" => source_filters.push(e),
                    "target" => target_filters.push(e),
                    other => return Err(err(format!("unknown filter kind `{other}`"))),
                }
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    let target =
        target.ok_or_else(|| Error::Invalid("mapping script has no target line".into()))?;
    let mut m = Mapping::new(graph, target);
    m.correspondences = correspondences;
    m.source_filters = source_filters;
    m.target_filters = target_filters;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::expr::Expr;
    use clio_relational::schema::Attribute;
    use clio_relational::value::DataType;

    fn sample_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p2 = g.add_node(Node::copy_of("Parents2", "Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, p2, Expr::col_eq("Children.mid", "Parents2.ID"))
            .unwrap();
        g.add_edge(p2, ph, Expr::col_eq("PhoneDir.ID", "Parents2.ID"))
            .unwrap();
        let target = RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
                Attribute::new("FamilyIncome", DataType::Int),
            ],
        )
        .unwrap();
        Mapping::new(g, target)
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(
                ValueCorrespondence::parse(
                    "concat(PhoneDir.type, ',', PhoneDir.number)",
                    "contactPh",
                )
                .unwrap(),
            )
            .with_source_filter(clio_relational::parser::parse_expr("Children.age < 7").unwrap())
            .with_target_not_null_filters()
    }

    #[test]
    fn round_trip_sample() {
        let m = sample_mapping();
        let text = write_mapping(&m);
        let parsed = parse_mapping(&text).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn script_text_is_readable() {
        let text = write_mapping(&sample_mapping());
        assert!(text.contains("target Kids (ID str not null, contactPh str, FamilyIncome int)"));
        assert!(text.contains("node Parents2 = Parents"));
        assert!(text.contains("edge Children -- Parents2 : Children.mid = Parents2.ID"));
        assert!(text.contains("corr Children.ID -> ID"));
        assert!(text.contains("where source Children.age < 7"));
        assert!(text.contains("where target Kids.ID IS NOT NULL"));
    }

    #[test]
    fn round_trip_paper_mappings() {
        // exercised again at integration level; kept here for fast feedback
        let m = sample_mapping().without_filters();
        let parsed = parse_mapping(&write_mapping(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\ntarget T (a int)\n\nnode R\n";
        let m = parse_mapping(text).unwrap();
        assert_eq!(m.target.name(), "T");
        assert_eq!(m.graph.node_count(), 1);
    }

    #[test]
    fn custom_code_round_trips() {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("PhoneDir").with_code("D")).unwrap();
        let m = Mapping::new(
            g,
            RelSchema::new("T", vec![Attribute::new("a", DataType::Int)]).unwrap(),
        );
        let text = write_mapping(&m);
        assert!(text.contains("node PhoneDir code D"));
        assert_eq!(parse_mapping(&text).unwrap(), m);
    }

    #[test]
    fn parse_errors_are_located() {
        for (text, needle) in [
            ("node R", "no target line"),
            ("target T (a int)\nfrobnicate x", "unknown directive"),
            ("target T (a int)\nedge A -- B : x = y", "unknown node"),
            ("target T (a int)\nnode R\nedge R : x", "edge line needs"),
            ("target T (a int)\ncorr a + b", "corr line needs"),
            (
                "target T (a int)\nwhere sideways a = 1",
                "unknown filter kind",
            ),
            ("target T (a frobs)", "unknown type"),
            ("target T (a int)\ntarget T (b int)", "duplicate target"),
            ("target T (a int zesty)", "unexpected attribute modifier"),
        ] {
            let err = parse_mapping(text).unwrap_err().to_string();
            assert!(err.contains(needle), "for {text:?}: got {err}");
        }
    }

    #[test]
    fn corr_splits_on_last_arrow() {
        // an expression containing `>` plus the arrow separator
        let text = "target T (a int)\nnode R\ncorr CASE WHEN R.x > 1 THEN R.x ELSE 0 END -> a\n";
        let m = parse_mapping(text).unwrap();
        assert_eq!(m.correspondences.len(), 1);
        assert_eq!(m.correspondences[0].target_attr, "a");
    }
}
