//! Ranking of alternative mappings (paper Sec 6.1: "Clio tries to order
//! them from most likely to least likely, using simple heuristics related
//! to path length, least perturbation to the current active mapping,
//! etc.").
//!
//! Beyond the two structural heuristics the paper names, this module adds
//! a *data-driven* signal in the paper's spirit: **join support**, the
//! number of full data associations the extended graph produces. An
//! extension whose joins actually connect data ranks above one that is
//! structurally plausible but joins nothing (e.g. a chase edge through a
//! coincidental value).

use clio_relational::database::Database;
use clio_relational::error::Result;
use clio_relational::funcs::FuncRegistry;

use crate::full_disjunction::full_associations;
use crate::mapping::Mapping;
use crate::operators::walk::WalkAlternative;

/// The ranking signals for one alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct RankScore {
    /// Walk path length (shorter = more likely).
    pub path_len: usize,
    /// Number of nodes added (less perturbation = more likely).
    pub new_nodes: usize,
    /// Number of full data associations spanning *all* graph nodes
    /// (higher = the linkage is supported by actual data).
    pub join_support: usize,
}

/// Compute the join support of a mapping: `|F(N)|`, the count of full
/// associations covering every node of the graph.
pub fn join_support(mapping: &Mapping, db: &Database, funcs: &FuncRegistry) -> Result<usize> {
    let n = mapping.graph.node_count();
    if n == 0 {
        return Ok(0);
    }
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    Ok(full_associations(db, &mapping.graph, mask, funcs)?.len())
}

/// Rank walk alternatives: primary structural order (path length, then
/// perturbation), ties broken by descending join support. Returns the
/// alternatives paired with their scores, best first.
pub fn rank_walk_alternatives(
    alternatives: Vec<WalkAlternative>,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<Vec<(WalkAlternative, RankScore)>> {
    let mut scored: Vec<(WalkAlternative, RankScore)> = alternatives
        .into_iter()
        .map(|alt| {
            let support = join_support(&alt.mapping, db, funcs)?;
            let score = RankScore {
                path_len: alt.path_len,
                new_nodes: alt.new_nodes.len(),
                join_support: support,
            };
            Ok((alt, score))
        })
        .collect::<Result<_>>()?;
    scored.sort_by(|(_, a), (_, b)| {
        (a.path_len, a.new_nodes, std::cmp::Reverse(a.join_support)).cmp(&(
            b.path_len,
            b.new_nodes,
            std::cmp::Reverse(b.join_support),
        ))
    });
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::knowledge::{JoinSpec, Provenance, SchemaKnowledge};
    use crate::operators::walk::data_walk;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    /// A source where the `good` link joins data and the `bad` link joins
    /// nothing (same path length, same perturbation).
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("A")
                .attr("id", DataType::Str)
                .attr("good", DataType::Str)
                .attr("bad", DataType::Str)
                .row(vec!["a1".into(), "b1".into(), "zzz".into()])
                .row(vec!["a2".into(), "b2".into(), "yyy".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("B")
                .attr("id", DataType::Str)
                .attr("payload", DataType::Str)
                .row(vec!["b1".into(), "x".into()])
                .row(vec!["b2".into(), "y".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn mapping() -> Mapping {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("A")).unwrap();
        let target = RelSchema::new("T", vec![Attribute::new("x", DataType::Str)]).unwrap();
        Mapping::new(g, target).with_correspondence(ValueCorrespondence::identity("A.id", "x"))
    }

    fn knowledge() -> SchemaKnowledge {
        let mut k = SchemaKnowledge::new();
        k.add_spec(JoinSpec::simple(
            "A",
            "good",
            "B",
            "id",
            Provenance::ForeignKey,
        ));
        k.add_spec(JoinSpec::simple("A", "bad", "B", "id", Provenance::Mined));
        k
    }

    #[test]
    fn join_support_counts_full_associations() {
        let funcs = FuncRegistry::with_builtins();
        let m = mapping();
        assert_eq!(join_support(&m, &db(), &funcs).unwrap(), 2); // A alone
    }

    #[test]
    fn data_support_breaks_structural_ties() {
        let funcs = FuncRegistry::with_builtins();
        let database = db();
        let alts = data_walk(&mapping(), &database, &knowledge(), "A", "B", 2, &funcs).unwrap();
        assert_eq!(alts.len(), 2); // good-link and bad-link walks
        let ranked = rank_walk_alternatives(alts, &database, &funcs).unwrap();
        // the good link joins 2 pairs; the bad link joins none
        assert_eq!(ranked[0].1.join_support, 2);
        assert_eq!(ranked[1].1.join_support, 0);
        let edge = ranked[0].0.mapping.graph.edges()[0].predicate.to_string();
        assert!(
            edge.contains("good"),
            "best alternative should use the good link: {edge}"
        );
    }

    #[test]
    fn structural_order_still_dominates() {
        // a 1-step walk beats a 2-step walk regardless of support
        let funcs = FuncRegistry::with_builtins();
        let database = db();
        let mut k = knowledge();
        // add an indirect path A -> B via C (needs relation C)
        let mut db2 = database.clone();
        db2.add_relation(
            RelationBuilder::new("C")
                .attr("id", DataType::Str)
                .attr("b", DataType::Str)
                .row(vec!["a1".into(), "b1".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        k.add_spec(JoinSpec::simple("A", "id", "C", "id", Provenance::Mined));
        k.add_spec(JoinSpec::simple("C", "b", "B", "id", Provenance::Mined));
        let alts = data_walk(&mapping(), &db2, &k, "A", "B", 3, &funcs).unwrap();
        let ranked = rank_walk_alternatives(alts, &db2, &funcs).unwrap();
        assert_eq!(ranked[0].1.path_len, 1);
        assert!(ranked.last().unwrap().1.path_len >= ranked[0].1.path_len);
    }
}
