//! `clio-core` — schema mappings, examples, illustrations and operators.
#![warn(missing_docs)]

pub mod association;
pub mod correspondence;
pub mod evolution;
pub mod example;
pub mod focus;
pub mod full_disjunction;
pub mod illustration;
pub mod incremental;
pub mod knowledge;
pub mod mapping;
pub mod mining;
pub mod operators;
pub mod plan;
pub mod profile;
pub mod query_graph;
pub mod ranking;
pub mod script;
pub mod session;
pub mod session_pool;
pub mod sql;
pub mod subgraph;
pub mod target_mapping;
pub mod verify;

/// Convenient re-exports of the crate's main types.
pub mod prelude {
    pub use crate::association::AssociationSet;
    pub use crate::correspondence::ValueCorrespondence;
    pub use crate::evolution::{
        continuity_holds, evolve_illustration, evolve_illustration_cached, Evolution,
    };
    pub use crate::example::Example;
    pub use crate::focus::{focused_examples, is_focused, Focus};
    pub use crate::full_disjunction::{
        engine_subsumption, full_associations, full_disjunction, full_disjunction_naive,
        full_disjunction_outer_join, FdAlgo,
    };
    pub use crate::illustration::{
        is_sufficient, requirements, select_exact, select_greedy, Illustration, Requirement,
        SufficiencyScope,
    };
    pub use crate::incremental::{
        full_disjunction_cached, graph_fingerprint, mapping_fingerprint, relation_deps,
        subgraph_fingerprint,
    };
    pub use crate::knowledge::{JoinSpec, PathStep, Provenance, SchemaKnowledge};
    pub use crate::mapping::{Mapping, MappingEvaluator};
    pub use crate::mining::{
        enrich_knowledge, mine_inclusion_dependencies, MinedDependency, MiningConfig,
    };
    pub use crate::operators::{
        add_correspondence, data_chase, data_walk, require_target_attribute, trim_effect,
        AddOutcome, ChaseAlternative, TrimEffect, WalkAlternative,
    };
    pub use crate::plan::{is_extension_stable, BranchInfo, FilterScope, Plan, PlanAlgo, RelExpr};
    pub use crate::profile::{profile_database, render_profile, AttributeProfile};
    pub use crate::query_graph::{Edge, Node, NodeId, QueryGraph};
    pub use crate::ranking::{join_support, rank_walk_alternatives, RankScore};
    pub use crate::script::{parse_mapping, write_mapping};
    pub use crate::session::{Session, Workspace};
    pub use crate::session_pool::SessionPool;
    pub use crate::sql::{generate_sql, SqlOptions};
    pub use crate::subgraph::{connected_subsets, connected_subsets_exhaustive};
    pub use crate::target_mapping::{Contribution, TargetMapping};
    pub use crate::verify::{verify_mapping, Finding};
    pub use clio_incr::{CacheStats, EvalCache, Fingerprint, FingerprintBuilder};
}

#[cfg(test)]
pub(crate) mod obs_testutil {
    //! Serializes tests that toggle the process-global obs state
    //! (tracing, histograms, the event ring) within this test binary.
    pub static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    pub fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
