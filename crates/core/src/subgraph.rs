//! Enumeration of induced connected subgraphs (paper Def 3.6).
//!
//! The possible data associations of a query graph `G` are the full data
//! associations of its induced, *connected* subgraphs, padded with nulls.
//! Subsets are represented as `u64` masks over node ids.
//!
//! Two enumeration strategies:
//!
//! * [`connected_subsets_exhaustive`] — test all `2^n − 1` subsets;
//! * [`connected_subsets`] — grow connected sets from each anchor node,
//!   only ever extending by neighbours, so work is proportional to the
//!   number of connected subsets rather than `2^n` (sparse graphs have far
//!   fewer).

use crate::query_graph::QueryGraph;

/// All non-empty connected node subsets, exhaustively. Ordered by
/// ascending popcount, then ascending mask value (deterministic).
#[must_use]
pub fn connected_subsets_exhaustive(g: &QueryGraph) -> Vec<u64> {
    let n = g.node_count();
    assert!(n <= 63, "exhaustive enumeration limited to 63 nodes");
    let mut out: Vec<u64> = (1u64..(1u64 << n))
        .filter(|&mask| g.is_subset_connected(mask))
        .collect();
    sort_masks(&mut out);
    out
}

/// All non-empty connected node subsets, by anchored growth: subsets are
/// generated once each by only allowing extensions with nodes greater than
/// the anchor (smallest node of the subset), taken from the neighbourhood.
#[must_use]
pub fn connected_subsets(g: &QueryGraph) -> Vec<u64> {
    let n = g.node_count();
    let mut out = Vec::new();
    for anchor in 0..n {
        // forbidden: nodes < anchor (they would change the anchor)
        let forbidden: u64 = (1u64 << anchor) - 1;
        let start = 1u64 << anchor;
        grow(
            g,
            start,
            neighbourhood(g, start) & !forbidden & !start,
            forbidden,
            &mut out,
        );
    }
    sort_masks(&mut out);
    out
}

fn neighbourhood(g: &QueryGraph, mask: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..g.node_count() {
        if mask & (1 << i) != 0 {
            for m in g.neighbors(i) {
                out |= 1 << m;
            }
        }
    }
    out & !mask
}

/// Recursive growth: emit `current`, then extend by each allowed frontier
/// node. The classic trick to avoid duplicates: when we branch on frontier
/// node `v`, subsequent branches at this level forbid `v` (it becomes part
/// of `forbidden`), so each subset is generated along exactly one path.
fn grow(g: &QueryGraph, current: u64, frontier: u64, forbidden: u64, out: &mut Vec<u64>) {
    out.push(current);
    let mut remaining = frontier;
    let mut newly_forbidden = forbidden;
    while remaining != 0 {
        let v = remaining.trailing_zeros() as u64;
        let vbit = 1u64 << v;
        remaining &= !vbit;
        let next = current | vbit;
        let next_frontier =
            (frontier | (neighbourhood(g, vbit) & !next)) & !vbit & !newly_forbidden;
        grow(g, next, next_frontier, newly_forbidden | vbit, out);
        newly_forbidden |= vbit;
    }
}

fn sort_masks(masks: &mut [u64]) {
    masks.sort_by_key(|&m| (m.count_ones(), m));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::expr::Expr;

    fn graph(n: usize, edges: &[(usize, usize)]) -> QueryGraph {
        let mut g = QueryGraph::new();
        for i in 0..n {
            g.add_node(Node::new(format!("R{i}"))).unwrap();
        }
        for &(a, b) in edges {
            g.add_edge(a, b, Expr::col_eq(&format!("R{a}.x"), &format!("R{b}.x")))
                .unwrap();
        }
        g
    }

    #[test]
    fn example_3_12_path_graph_subsets() {
        // Children — Parents — PhoneDir: the induced connected subgraphs
        // are {C}, {P}, {Ph}, {CP}, {PPh}, {CPPh} — six, and NOT {C,Ph}.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let subs = connected_subsets_exhaustive(&g);
        assert_eq!(subs, vec![0b001, 0b010, 0b100, 0b011, 0b110, 0b111]);
        assert!(!subs.contains(&0b101));
    }

    #[test]
    fn anchored_agrees_with_exhaustive_on_small_graphs() {
        for (n, edges) in [
            (1usize, vec![]),
            (2, vec![(0, 1)]),
            (3, vec![(0, 1), (1, 2)]),
            (4, vec![(0, 1), (0, 2), (0, 3)]),         // star
            (4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]), // cycle
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]), // path
            (5, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]), // lollipop
        ] {
            let g = graph(n, &edges);
            assert_eq!(
                connected_subsets(&g),
                connected_subsets_exhaustive(&g),
                "n={n} edges={edges:?}"
            );
        }
    }

    #[test]
    fn complete_graph_has_all_subsets() {
        let g = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(connected_subsets(&g).len(), 15);
    }

    #[test]
    fn path_count_is_quadratic_not_exponential() {
        // a path of n nodes has n(n+1)/2 connected subsets
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = graph(10, &edges);
        assert_eq!(connected_subsets(&g).len(), 55);
    }

    #[test]
    fn star_counts() {
        // star with center 0 and k leaves: k singletons + 1 center-singleton
        // + every subset containing the center: 2^k; total 2^k + k
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(connected_subsets(&g).len(), 16 + 4);
    }

    #[test]
    fn singletons_always_present() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let subs = connected_subsets(&g);
        for i in 0..3u64 {
            assert!(subs.contains(&(1 << i)));
        }
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let subs = connected_subsets(&g);
        let mut sorted = subs.clone();
        sorted.sort_by_key(|&m| (m.count_ones(), m));
        sorted.dedup();
        assert_eq!(subs, sorted);
    }
}
