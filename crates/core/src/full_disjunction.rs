//! Full disjunction `D(G)` — the complete set of data associations of a
//! query graph (paper Def 3.11; Galindo-Legaria \[4\]).
//!
//! Two algorithms:
//!
//! * [`full_disjunction_naive`] — the definitional computation:
//!   `D(G) = F(J₁) ⊕ … ⊕ F(Jₖ)` over **all** induced connected subgraphs
//!   `Jᵢ`, combined by one n-ary minimum union. The number of subgraphs is
//!   exponential in dense graphs, so this serves as the reference.
//! * [`full_disjunction_outer_join`] — for **tree** query graphs: a
//!   left-deep sequence of full outer joins following a connected
//!   elimination order computes the full disjunction directly
//!   (Galindo-Legaria's outerjoins-as-disjunctions result), with no
//!   subgraph enumeration and no subsumption pass.
//!
//! The paper claims Clio "make\[s\] use of evaluation and optimization
//! techniques for the minimal union operator to efficiently compute D(G)";
//! benchmark **B1** (`cargo bench -p clio-bench --bench full_disjunction`)
//! quantifies the gap between the two algorithms, and a property test in
//! `tests/properties.rs` checks they agree on random tree graphs.

use clio_obs::metrics::{self, Counter};
use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::{join, minimum_union_all, pad_to, select, JoinKind, SubsumptionAlgo};
use clio_relational::table::Table;

use crate::association::AssociationSet;
use crate::query_graph::{NodeId, QueryGraph};
use crate::subgraph::connected_subsets;

/// Algorithm selector for computing `D(G)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FdAlgo {
    /// Definitional: enumerate subgraphs, minimum-union their `F(J)`s.
    Naive,
    /// Full-outer-join plan; only valid for tree graphs.
    OuterJoin,
    /// Outer-join plan when the graph is a tree, naive otherwise.
    #[default]
    Auto,
}

/// Compute the **full data associations** `F(J)` of the induced connected
/// subgraph given by `mask` (paper Def 3.5): the inner join of the
/// subgraph's relations under the conjunction of its edge predicates.
///
/// Nodes are joined in a connected order; each new node joins on the
/// conjunction of all its edges into the already-joined set, so cyclic
/// subgraphs are handled (the cycle-closing predicates become part of the
/// join condition).
pub fn full_associations(
    db: &Database,
    graph: &QueryGraph,
    mask: u64,
    funcs: &FuncRegistry,
) -> Result<Table> {
    if mask == 0 {
        return Err(Error::Invalid(
            "empty node set has no full associations".into(),
        ));
    }
    if !graph.is_subset_connected(mask) {
        return Err(Error::Invalid(
            "full associations are only defined for connected subgraphs".into(),
        ));
    }

    // connected order within the mask, starting from its lowest node
    let start = mask.trailing_zeros() as usize;
    let mut order: Vec<NodeId> = vec![start];
    let mut seen = 1u64 << start;
    let mut i = 0;
    while i < order.len() {
        for m in graph.neighbors(order[i]) {
            let bit = 1u64 << m;
            if mask & bit != 0 && seen & bit == 0 {
                seen |= bit;
                order.push(m);
            }
        }
        i += 1;
    }
    debug_assert_eq!(seen, mask);

    let mut acc = graph.node_table(db, order[0])?;
    let mut included = 1u64 << order[0];
    for &n in &order[1..] {
        // all edges from n into the included set form the join condition
        let preds: Vec<Expr> = graph
            .edges()
            .iter()
            .filter(|e| {
                (e.a == n && included & (1 << e.b) != 0) || (e.b == n && included & (1 << e.a) != 0)
            })
            .map(|e| e.predicate.clone())
            .collect();
        debug_assert!(!preds.is_empty(), "connected order guarantees an edge");
        let pred = Expr::conjunction(preds);
        acc = join(
            &acc,
            &graph.node_table(db, n)?,
            &pred,
            JoinKind::Inner,
            funcs,
        )?;
        included |= 1 << n;
    }
    Ok(acc)
}

/// Definitional `D(G)`: minimum union of the padded `F(J)` over every
/// induced connected subgraph `J` (paper Def 3.11 / Example 3.12).
///
/// The per-subgraph `F(J)` + padding evaluations are independent, so
/// they run on the [`clio_relational::exec`] worker pool (sized by
/// `--threads` / `CLIO_THREADS` / the hardware): each worker opens an
/// `fd.naive.worker` span, and results come back in canonical subgraph
/// order, so the minimum union — and therefore the output table, row
/// order included — is byte-identical to a serial run. A property test
/// in `tests/properties.rs` pins this.
pub fn full_disjunction_naive(
    db: &Database,
    graph: &QueryGraph,
    funcs: &FuncRegistry,
    subsumption: SubsumptionAlgo,
) -> Result<AssociationSet> {
    let _span = clio_obs::span("fd.naive");
    let scheme = graph.scheme(db)?;
    let masks = connected_subsets(graph);
    let padded: Vec<Table> =
        clio_relational::exec::map_slice(&masks, "fd.naive.worker", |_, &mask| -> Result<Table> {
            let f = full_associations(db, graph, mask, funcs)?;
            pad_to(&f, &scheme)
        })
        .into_iter()
        .collect::<Result<_>>()?;
    metrics::add(Counter::SubgraphsEnumerated, padded.len() as u64);
    let refs: Vec<&Table> = padded.iter().collect();
    let table = minimum_union_all(&refs, subsumption)?;
    Ok(AssociationSet::from_table(graph, table))
}

/// Optimized `D(G)` for tree query graphs: left-deep full outer joins in a
/// connected elimination order. Errors when the graph is not a tree.
pub fn full_disjunction_outer_join(
    db: &Database,
    graph: &QueryGraph,
    funcs: &FuncRegistry,
) -> Result<AssociationSet> {
    let _span = clio_obs::span("fd.outer_join");
    if !graph.is_tree() {
        return Err(Error::Invalid(
            "outer-join full disjunction requires a tree query graph".into(),
        ));
    }
    let order = graph.connected_order(0)?;
    let mut acc = graph.node_table(db, order[0])?;
    let mut included = 1u64 << order[0];
    for &n in &order[1..] {
        let edge = graph
            .edges()
            .iter()
            .find(|e| {
                (e.a == n && included & (1 << e.b) != 0) || (e.b == n && included & (1 << e.a) != 0)
            })
            .expect("tree + connected order guarantee exactly one edge");
        acc = join(
            &acc,
            &graph.node_table(db, n)?,
            &edge.predicate,
            JoinKind::FullOuter,
            funcs,
        )?;
        metrics::incr(Counter::OuterJoinSteps);
        included |= 1 << n;
    }
    // reorder columns into the canonical graph scheme
    let scheme = graph.scheme(db)?;
    let table = pad_to(&acc, &scheme)?;
    Ok(AssociationSet::from_table(graph, table))
}

/// The subsumption algorithm the engine uses wherever a caller does not
/// choose one explicitly — the single place the default is decided.
#[must_use]
pub fn engine_subsumption() -> SubsumptionAlgo {
    SubsumptionAlgo::default() // Adaptive
}

/// Compute `D(G)` with the selected algorithm. `Auto` resolves to the
/// outer-join plan on trees and the naive plan otherwise; the naive
/// plan's subsumption pass uses [`engine_subsumption`] (adaptive).
pub fn full_disjunction(
    db: &Database,
    graph: &QueryGraph,
    algo: FdAlgo,
    funcs: &FuncRegistry,
) -> Result<AssociationSet> {
    let algo = match algo {
        FdAlgo::Auto if graph.is_tree() => FdAlgo::OuterJoin,
        FdAlgo::Auto => FdAlgo::Naive,
        chosen => chosen,
    };
    match algo {
        FdAlgo::Naive | FdAlgo::Auto => {
            full_disjunction_naive(db, graph, funcs, engine_subsumption())
        }
        FdAlgo::OuterJoin => full_disjunction_outer_join(db, graph, funcs),
    }
}

/// Apply the paper's Def 3.5 `σ_P(R₁ × … × Rₙ)` literally for the *whole*
/// graph — selection over a cartesian product. Exponential and only used
/// in tests as an extra cross-check of [`full_associations`].
pub fn full_associations_definitional(
    db: &Database,
    graph: &QueryGraph,
    funcs: &FuncRegistry,
) -> Result<Table> {
    let mut acc: Option<Table> = None;
    for i in 0..graph.node_count() {
        let t = graph.node_table(db, i)?;
        acc = Some(match acc {
            None => t,
            Some(a) => clio_relational::ops::cartesian_product(&a, &t)?,
        });
    }
    let acc = acc.ok_or_else(|| Error::Invalid("empty graph".into()))?;
    let pred = Expr::conjunction(graph.edges().iter().map(|e| e.predicate.clone()).collect());
    select(&acc, &pred, funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::Node;
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::value::{DataType, Value};

    /// A miniature of the paper's Figure 1: two children with mothers, one
    /// childless parent with a phone, one parent without a phone.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "201".into()])
                .row(vec!["002".into(), "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()]) // childless
                .row(vec!["207".into(), "Acme".into()]) // childless, no phone
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("PhoneDir")
                .attr_not_null("ID", DataType::Str)
                .attr("number", DataType::Str)
                .row(vec!["201".into(), "555-0101".into()])
                .row(vec!["202".into(), "555-0102".into()])
                .row(vec!["205".into(), "555-0105".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn path_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        let ph = g.add_node(Node::new("PhoneDir").with_code("Ph")).unwrap();
        g.add_edge(c, p, parse_expr("Children.mid = Parents.ID").unwrap())
            .unwrap();
        g.add_edge(p, ph, parse_expr("PhoneDir.ID = Parents.ID").unwrap())
            .unwrap();
        g
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn full_associations_of_edge_subgraph() {
        let g = path_graph();
        let f = full_associations(&db(), &g, 0b011, &funcs()).unwrap();
        assert_eq!(f.len(), 2); // both children have mothers
        let f = full_associations(&db(), &g, 0b110, &funcs()).unwrap();
        assert_eq!(f.len(), 3); // three parents have phones
        let f = full_associations(&db(), &g, 0b111, &funcs()).unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn full_associations_rejects_disconnected_mask() {
        let g = path_graph();
        assert!(full_associations(&db(), &g, 0b101, &funcs()).is_err());
        assert!(full_associations(&db(), &g, 0, &funcs()).is_err());
    }

    #[test]
    fn full_associations_matches_definitional() {
        let g = path_graph();
        let a = full_associations(&db(), &g, 0b111, &funcs()).unwrap();
        let mut b = full_associations_definitional(&db(), &g, &funcs()).unwrap();
        // reorder columns of a to graph scheme first
        let scheme = g.scheme(&db()).unwrap();
        let mut a = pad_to(&a, &scheme).unwrap();
        a.sort_canonical();
        b.sort_canonical();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn naive_fd_contents() {
        let g = path_graph();
        let d = full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Partitioned).unwrap();
        // expected associations:
        //  2 × CPPh (children + mother + phone)
        //  1 × PPh (205 + phone)    [201/202's PPh are subsumed]
        //  1 × P   (207, no child, no phone)
        assert_eq!(d.len(), 4);
        assert_eq!(d.categories(), vec![0b010, 0b110, 0b111]);
        assert_eq!(d.in_category(0b111).len(), 2);
        assert_eq!(d.in_category(0b110).len(), 1);
        assert_eq!(d.in_category(0b010).len(), 1);
    }

    #[test]
    fn outer_join_fd_agrees_with_naive_on_tree() {
        let g = path_graph();
        let mut a = full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Naive).unwrap();
        let mut b = full_disjunction_outer_join(&db(), &g, &funcs()).unwrap();
        a.sort_canonical(&g);
        b.sort_canonical(&g);
        assert_eq!(a.table().rows(), b.table().rows());
    }

    #[test]
    fn outer_join_rejects_cycles() {
        let mut g = path_graph();
        g.add_edge(0, 2, parse_expr("Children.ID = PhoneDir.ID").unwrap())
            .unwrap();
        assert!(full_disjunction_outer_join(&db(), &g, &funcs()).is_err());
        // but auto dispatch falls back to naive
        full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
    }

    #[test]
    fn auto_uses_outer_join_on_trees() {
        let g = path_graph();
        let mut a = full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
        let mut b = full_disjunction(&db(), &g, FdAlgo::Naive, &funcs()).unwrap();
        a.sort_canonical(&g);
        b.sort_canonical(&g);
        assert_eq!(a.table().rows(), b.table().rows());
    }

    #[test]
    fn single_node_graph_fd_is_the_relation() {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Parents")).unwrap();
        let d = full_disjunction(&db(), &g, FdAlgo::Auto, &funcs()).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.categories() == vec![0b1]);
    }

    #[test]
    fn cyclic_graph_naive_fd() {
        // triangle: Children-Parents (mid), Parents-PhoneDir (ID),
        // Children-PhoneDir (mid = PhoneDir.ID) — consistent cycle
        let mut g = path_graph();
        g.add_edge(0, 2, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        let d = full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Partitioned).unwrap();
        // full CPPh coverage still has both children; the CP and CPh pairs
        // are subsumed; PPh for 205, P for 207 survive
        assert_eq!(d.in_category(0b111).len(), 2);
        assert!(d.categories().contains(&0b010));
    }

    #[test]
    fn parallel_naive_fd_is_byte_identical_to_serial() {
        // cyclic graph forces the naive path; compare WITHOUT sorting so
        // row order is part of the contract
        let mut g = path_graph();
        g.add_edge(0, 2, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        let serial = clio_relational::exec::with_threads(1, || {
            full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Adaptive).unwrap()
        });
        let parallel = clio_relational::exec::with_threads(4, || {
            full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Adaptive).unwrap()
        });
        assert_eq!(serial.table().rows(), parallel.table().rows());
        assert_eq!(serial.table().scheme(), parallel.table().scheme());
    }

    #[test]
    fn parallel_naive_fd_emits_worker_spans() {
        let _guard = crate::obs_testutil::lock();
        let mut g = path_graph();
        g.add_edge(0, 2, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        clio_obs::set_trace_enabled(true);
        clio_relational::exec::with_threads(4, || {
            full_disjunction_naive(&db(), &g, &funcs(), SubsumptionAlgo::Adaptive).unwrap()
        });
        clio_obs::set_trace_enabled(false);
        let spans = clio_obs::take_spans();
        let workers = spans.iter().filter(|s| s.name == "fd.naive.worker").count();
        // one span per worker thread that participated; the pool spawns
        // min(threads, items) workers, and a triangle has 7 connected
        // subgraphs, so at least one worker span must exist
        assert!(workers >= 1, "no fd.naive.worker spans in {spans:?}");
        assert!(spans.iter().any(|s| s.name == "fd.naive"), "{spans:?}");
    }

    #[test]
    fn fd_with_no_matching_joins_keeps_singletons() {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("A")
                .attr("x", DataType::Str)
                .row(vec!["1".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("B")
                .attr("x", DataType::Str)
                .row(vec!["2".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut g = QueryGraph::new();
        g.add_node(Node::new("A")).unwrap();
        g.add_node(Node::new("B")).unwrap();
        g.add_edge(0, 1, parse_expr("A.x = B.x").unwrap()).unwrap();
        let d = full_disjunction(&db, &g, FdAlgo::Auto, &funcs()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.categories(), vec![0b01, 0b10]);
        // every association is half-null
        assert!(d
            .table()
            .rows()
            .iter()
            .all(|r| r.iter().any(Value::is_null)));
    }
}
