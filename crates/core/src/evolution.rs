//! Continuous evolution of illustrations (paper Sec 5.3).
//!
//! As a mapping evolves (a walk or chase extends its query graph), its
//! illustration must evolve too — but "the data in the old illustration,
//! which is familiar to the user, should be retained as much as possible".
//! The **continuity requirement**: instead of selecting a completely new
//! set of examples, each old example is *extended* — the new illustration
//! contains, for every old example, the new examples whose associations
//! extend the old association (equal on all of its non-null attributes).
//! Sufficiency is then repaired by *adding* examples, never by mutating or
//! dropping the extended ones.

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::subsumes;
use clio_relational::schema::Scheme;
use clio_relational::value::Value;

use crate::illustration::{requirements, satisfies, Illustration, SufficiencyScope};
use crate::mapping::Mapping;

/// The outcome of evolving an illustration across a mapping change.
#[derive(Debug, Clone, PartialEq)]
pub struct Evolution {
    /// The evolved illustration (extensions first, then repairs).
    pub illustration: Illustration,
    /// How many of the new examples extend an old one (familiar data).
    pub extended_count: usize,
    /// How many examples were added purely to restore sufficiency.
    pub repair_count: usize,
}

/// Does `new_assoc` (a row over `new_scheme`) extend `old_assoc` (a row
/// over `old_scheme`)? True when its projection onto the old scheme
/// subsumes the old association — the old data is still visible, possibly
/// with nulls filled in.
pub fn extends(
    old_scheme: &Scheme,
    old_assoc: &[Value],
    new_scheme: &Scheme,
    new_assoc: &[Value],
) -> Result<bool> {
    let positions = new_scheme.positions_of(old_scheme)?;
    let projected: Vec<Value> = positions.iter().map(|&i| new_assoc[i].clone()).collect();
    Ok(subsumes(&projected, old_assoc))
}

/// Evolve `old_illustration` from `old_mapping` to `new_mapping` (whose
/// graph must extend the old graph). Returns the evolved illustration and
/// bookkeeping counts.
pub fn evolve_illustration(
    old_illustration: &Illustration,
    old_mapping: &Mapping,
    new_mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<Evolution> {
    evolve_illustration_cached(old_illustration, old_mapping, new_mapping, db, funcs, None)
}

/// Like [`evolve_illustration`], with the new mapping's example
/// population built over cached data associations: continuity is then
/// effectively checked against the *delta* of `D(G)` — the subgraphs an
/// operator did not touch are served from the cache, only the new ones
/// are joined. `None` is exactly the uncached path.
pub fn evolve_illustration_cached(
    old_illustration: &Illustration,
    old_mapping: &Mapping,
    new_mapping: &Mapping,
    db: &Database,
    funcs: &FuncRegistry,
    cache: Option<&clio_incr::EvalCache>,
) -> Result<Evolution> {
    let _span = clio_obs::span("evolution.evolve");
    let old_scheme = old_mapping.graph.scheme(db)?;
    let new_scheme = new_mapping.graph.scheme(db)?;
    if !new_scheme.contains_scheme(&old_scheme) {
        return Err(Error::Invalid(
            "continuous evolution requires the new graph to extend the old one".into(),
        ));
    }

    let population = new_mapping.examples_cached(db, funcs, cache)?;
    let mut chosen: Vec<usize> = Vec::new();

    // 1. extend every old example
    for old in &old_illustration.examples {
        for (i, candidate) in population.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            if extends(
                &old_scheme,
                &old.association,
                &new_scheme,
                &candidate.association,
            )? {
                chosen.push(i);
            }
        }
    }
    let extended_count = chosen.len();

    // 2. repair sufficiency by greedily adding examples for uncovered
    //    requirements (never removing the extensions)
    let target_arity = new_mapping.target.arity();
    let scope = SufficiencyScope::mapping();
    let reqs = requirements(&population, target_arity, scope);
    let mut covered: Vec<bool> = reqs
        .iter()
        .map(|r| chosen.iter().any(|&i| satisfies(&population[i], r)))
        .collect();
    loop {
        clio_obs::metrics::incr(clio_obs::metrics::Counter::GreedyIterations);
        let mut best: Option<(usize, usize)> = None;
        for (i, e) in population.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = reqs
                .iter()
                .zip(&covered)
                .filter(|(r, &c)| !c && satisfies(e, r))
                .count();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        match best {
            None => break,
            Some((i, _)) => {
                for (k, r) in reqs.iter().enumerate() {
                    if satisfies(&population[i], r) {
                        covered[k] = true;
                    }
                }
                chosen.push(i);
            }
        }
    }
    let repair_count = chosen.len() - extended_count;

    Ok(Evolution {
        illustration: Illustration::from_indexes(&population, &chosen),
        extended_count,
        repair_count,
    })
}

/// Check the continuity property: every old example has at least one
/// extension in the new illustration.
pub fn continuity_holds(
    old_illustration: &Illustration,
    new_illustration: &Illustration,
    old_scheme: &Scheme,
    new_scheme: &Scheme,
) -> Result<bool> {
    for old in &old_illustration.examples {
        let mut found = false;
        for new in &new_illustration.examples {
            if extends(old_scheme, &old.association, new_scheme, &new.association)? {
                found = true;
                break;
            }
        }
        if !found {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::illustration::is_sufficient;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::expr::Expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::{Attribute, RelSchema};
    use clio_relational::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .row(vec!["001".into(), "201".into()])
                .row(vec!["002".into(), "202".into()])
                .row(vec!["004".into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .attr("affiliation", DataType::Str)
                .row(vec!["201".into(), "IBM".into()])
                .row(vec!["202".into(), "UofT".into()])
                .row(vec!["205".into(), "MIT".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("affiliation", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn old_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_target_not_null_filters()
    }

    fn new_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let p = g.add_node(Node::new("Parents")).unwrap();
        g.add_edge(c, p, Expr::col_eq("Children.mid", "Parents.ID"))
            .unwrap();
        let mut m = old_mapping();
        m.graph = g;
        m.set_correspondence(ValueCorrespondence::identity(
            "Parents.affiliation",
            "affiliation",
        ));
        m
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn extends_checks_projection_subsumption() {
        let database = db();
        let old_scheme = old_mapping().graph.scheme(&database).unwrap();
        let new_scheme = new_mapping().graph.scheme(&database).unwrap();
        // Maya's old association: ["002", "202"]
        let old = vec![Value::str("002"), Value::str("202")];
        // extension with parent columns filled in
        let good = vec!["002".into(), "202".into(), "202".into(), "UofT".into()];
        assert!(extends(&old_scheme, &old, &new_scheme, &good).unwrap());
        // a different child's association is not an extension
        let bad = vec!["001".into(), "201".into(), "201".into(), "IBM".into()];
        assert!(!extends(&old_scheme, &old, &new_scheme, &bad).unwrap());
        // old nulls may be filled in
        let old_null = vec![Value::str("004"), Value::Null];
        let filled = vec!["004".into(), Value::Null, Value::Null, Value::Null];
        assert!(extends(&old_scheme, &old_null, &new_scheme, &filled).unwrap());
    }

    #[test]
    fn evolution_preserves_continuity() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let old_pop = old_m.examples(&database, &funcs()).unwrap();
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());
        assert!(!old_ill.is_empty());

        let evo = evolve_illustration(&old_ill, &old_m, &new_m, &database, &funcs()).unwrap();
        let old_scheme = old_m.graph.scheme(&database).unwrap();
        let new_scheme = new_m.graph.scheme(&database).unwrap();
        assert!(continuity_holds(&old_ill, &evo.illustration, &old_scheme, &new_scheme).unwrap());
        assert!(evo.extended_count >= old_ill.len());
    }

    #[test]
    fn evolution_result_is_sufficient() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let old_pop = old_m.examples(&database, &funcs()).unwrap();
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());
        let evo = evolve_illustration(&old_ill, &old_m, &new_m, &database, &funcs()).unwrap();

        let population = new_m.examples(&database, &funcs()).unwrap();
        assert!(is_sufficient(
            &evo.illustration.examples,
            &population,
            new_m.target.arity(),
            SufficiencyScope::mapping(),
        ));
        // the lone-parent (205) category only exists in the new graph, so
        // at least one repair example must have been added
        assert!(evo.repair_count >= 1);
    }

    #[test]
    fn evolution_rejects_shrinking_graphs() {
        let database = db();
        let old_m = new_mapping(); // bigger
        let new_m = old_mapping(); // smaller
        let ill = Illustration::empty();
        assert!(evolve_illustration(&ill, &old_m, &new_m, &database, &funcs()).is_err());
    }

    #[test]
    fn empty_old_illustration_still_repairs_to_sufficiency() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let evo = evolve_illustration(&Illustration::empty(), &old_m, &new_m, &database, &funcs())
            .unwrap();
        assert_eq!(evo.extended_count, 0);
        assert!(evo.repair_count > 0);
        let population = new_m.examples(&database, &funcs()).unwrap();
        assert!(is_sufficient(
            &evo.illustration.examples,
            &population,
            new_m.target.arity(),
            SufficiencyScope::mapping(),
        ));
    }

    #[test]
    fn extends_errors_when_old_scheme_is_not_contained() {
        let database = db();
        let small = old_mapping().graph.scheme(&database).unwrap();
        let big = new_mapping().graph.scheme(&database).unwrap();
        // asking whether a *small* row extends a *big* one is ill-posed:
        // the big scheme is not contained in the small one
        let old = vec![
            Value::str("002"),
            Value::str("202"),
            Value::str("202"),
            Value::str("UofT"),
        ];
        let new = vec![Value::str("002"), Value::str("202")];
        assert!(extends(&big, &old, &small, &new).is_err());
    }

    #[test]
    fn extends_on_identical_schemes_is_subsumption() {
        let database = db();
        let scheme = old_mapping().graph.scheme(&database).unwrap();
        let sparse = vec![Value::str("002"), Value::Null];
        let filled = vec![Value::str("002"), Value::str("202")];
        // same scheme: extension = the new row subsumes the old one
        assert!(extends(&scheme, &sparse, &scheme, &filled).unwrap());
        assert!(extends(&scheme, &filled, &scheme, &filled).unwrap());
        assert!(!extends(&scheme, &filled, &scheme, &sparse).unwrap());
    }

    #[test]
    fn continuity_fails_on_nonempty_illustration_missing_one_old_example() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let old_pop = old_m.examples(&database, &funcs()).unwrap();
        assert!(old_pop.len() >= 2);
        let old_ill = Illustration {
            examples: old_pop.clone(),
        };
        let new_pop = new_m.examples(&database, &funcs()).unwrap();
        let old_scheme = old_m.graph.scheme(&database).unwrap();
        let new_scheme = new_m.graph.scheme(&database).unwrap();
        // keep only the extensions of the FIRST old example: a non-empty
        // new illustration that still violates continuity, because the
        // other old examples have no extension in it
        let partial = Illustration {
            examples: new_pop
                .iter()
                .filter(|e| {
                    extends(
                        &old_scheme,
                        &old_pop[0].association,
                        &new_scheme,
                        &e.association,
                    )
                    .unwrap()
                })
                .cloned()
                .collect(),
        };
        assert!(!partial.is_empty());
        assert!(!continuity_holds(&old_ill, &partial, &old_scheme, &new_scheme).unwrap());
        // the full new population, by contrast, is continuous
        let full = Illustration { examples: new_pop };
        assert!(continuity_holds(&old_ill, &full, &old_scheme, &new_scheme).unwrap());
    }

    #[test]
    fn cached_evolution_matches_uncached() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let old_pop = old_m.examples(&database, &funcs()).unwrap();
        let old_ill = Illustration::minimal_sufficient(&old_pop, old_m.target.arity());
        let plain = evolve_illustration(&old_ill, &old_m, &new_m, &database, &funcs()).unwrap();
        let cache = clio_incr::EvalCache::new();
        for _ in 0..2 {
            let cached = evolve_illustration_cached(
                &old_ill,
                &old_m,
                &new_m,
                &database,
                &funcs(),
                Some(&cache),
            )
            .unwrap();
            assert_eq!(plain, cached);
        }
        assert!(cache.stats().hits >= 1, "second evolution must hit");
    }

    #[test]
    fn continuity_detects_dropped_examples() {
        let database = db();
        let old_m = old_mapping();
        let new_m = new_mapping();
        let old_pop = old_m.examples(&database, &funcs()).unwrap();
        let old_ill = Illustration {
            examples: old_pop.clone(),
        };
        let old_scheme = old_m.graph.scheme(&database).unwrap();
        let new_scheme = new_m.graph.scheme(&database).unwrap();
        // an empty new illustration violates continuity
        assert!(
            !continuity_holds(&old_ill, &Illustration::empty(), &old_scheme, &new_scheme).unwrap()
        );
    }
}
