//! Target mappings: the set of accepted mappings that together populate
//! one target relation (paper Sec 6.2: "Since each mapping produces a
//! subset of the tuples of a single target \[relation\], many mappings may
//! need to be created to map an entire target schema").
//!
//! Two combination semantics are provided:
//!
//! * [`TargetMapping::evaluate_union`] — plain set union of the mapping
//!   results (SQL `UNION`);
//! * [`TargetMapping::evaluate_merged`] — **minimum union**: tuples
//!   strictly subsumed by a more complete tuple from another mapping are
//!   merged away. This is the data-merging semantics the paper builds its
//!   machinery around — a kid contributed as `(002, null)` by one mapping
//!   and `(002, 555-0103)` by another appears once, complete.

use clio_relational::database::Database;
use clio_relational::error::{Error, Result};
use clio_relational::funcs::FuncRegistry;
use clio_relational::ops::remove_subsumed;
use clio_relational::schema::{RelSchema, Scheme};
use clio_relational::table::Table;

use crate::mapping::Mapping;

/// The mappings accepted for one target relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetMapping {
    /// The target relation scheme.
    pub target: RelSchema,
    mappings: Vec<Mapping>,
}

/// Per-mapping contribution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Index of the mapping within the target mapping.
    pub mapping_index: usize,
    /// Tuples this mapping produces.
    pub produced: usize,
    /// Of those, tuples no other mapping produces.
    pub exclusive: usize,
}

impl TargetMapping {
    /// An empty target mapping.
    #[must_use]
    pub fn new(target: RelSchema) -> TargetMapping {
        TargetMapping {
            target,
            mappings: Vec::new(),
        }
    }

    /// Accept a mapping; its target schema must match.
    pub fn accept(&mut self, mapping: Mapping) -> Result<()> {
        if mapping.target != self.target {
            return Err(Error::Invalid(format!(
                "mapping targets `{}`, expected `{}`",
                mapping.target.name(),
                self.target.name()
            )));
        }
        self.mappings.push(mapping);
        Ok(())
    }

    /// The accepted mappings.
    #[must_use]
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    fn target_scheme(&self) -> Scheme {
        Scheme::of_relation(&self.target, self.target.name())
    }

    /// Plain set union of all mapping results.
    pub fn evaluate_union(&self, db: &Database, funcs: &FuncRegistry) -> Result<Table> {
        let mut out = Table::empty(self.target_scheme());
        for m in &self.mappings {
            for row in m.evaluate(db, funcs)?.into_rows() {
                out.push_distinct(row);
            }
        }
        Ok(out)
    }

    /// Minimum union of all mapping results: strictly subsumed tuples are
    /// merged away, so partial contributions collapse into the most
    /// complete tuple available.
    pub fn evaluate_merged(&self, db: &Database, funcs: &FuncRegistry) -> Result<Table> {
        let mut out = self.evaluate_union(db, funcs)?;
        remove_subsumed(&mut out, crate::full_disjunction::engine_subsumption());
        Ok(out)
    }

    /// How much does each mapping contribute, and how much exclusively?
    pub fn contributions(&self, db: &Database, funcs: &FuncRegistry) -> Result<Vec<Contribution>> {
        let results: Vec<Table> = self
            .mappings
            .iter()
            .map(|m| m.evaluate(db, funcs))
            .collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(results.len());
        for (i, mine) in results.iter().enumerate() {
            let mut exclusive = 0;
            for row in mine.rows() {
                let elsewhere = results
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && other.rows().contains(row));
                if !elsewhere {
                    exclusive += 1;
                }
            }
            out.push(Contribution {
                mapping_index: i,
                produced: mine.len(),
                exclusive,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::ValueCorrespondence;
    use crate::query_graph::{Node, QueryGraph};
    use clio_relational::parser::parse_expr;
    use clio_relational::relation::RelationBuilder;
    use clio_relational::schema::Attribute;
    use clio_relational::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .attr("fid", DataType::Str)
                .row(vec!["001".into(), "201".into(), "202".into()])
                .row(vec!["004".into(), Value::Null, "202".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("PhoneDir")
                .attr_not_null("ID", DataType::Str)
                .attr("number", DataType::Str)
                .row(vec!["201".into(), "555-1".into()])
                .row(vec!["202".into(), "555-2".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("contactPh", DataType::Str),
            ],
        )
        .unwrap()
    }

    /// Phone via the mother (loses Tom), as in Example 6.1.
    fn mother_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let d = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, d, parse_expr("Children.mid = PhoneDir.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "PhoneDir.number",
                "contactPh",
            ))
            .with_source_filter(parse_expr("Children.mid IS NOT NULL").unwrap())
            .with_target_not_null_filters()
    }

    /// Father's phone when there is no mother.
    fn father_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        let c = g.add_node(Node::new("Children")).unwrap();
        let d = g.add_node(Node::new("PhoneDir")).unwrap();
        g.add_edge(c, d, parse_expr("Children.fid = PhoneDir.ID").unwrap())
            .unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_correspondence(ValueCorrespondence::identity(
                "PhoneDir.number",
                "contactPh",
            ))
            .with_source_filter(parse_expr("Children.mid IS NULL").unwrap())
            .with_target_not_null_filters()
    }

    /// IDs only (no phones) — a partial contributor for merge tests.
    fn ids_mapping() -> Mapping {
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        Mapping::new(g, target())
            .with_correspondence(ValueCorrespondence::identity("Children.ID", "ID"))
            .with_target_not_null_filters()
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    #[test]
    fn accept_validates_target() {
        let mut tm = TargetMapping::new(target());
        tm.accept(mother_mapping()).unwrap();
        let other = RelSchema::new("Other", vec![Attribute::new("x", DataType::Int)]).unwrap();
        let mut g = QueryGraph::new();
        g.add_node(Node::new("Children")).unwrap();
        assert!(tm.accept(Mapping::new(g, other)).is_err());
    }

    #[test]
    fn example_6_1_union_covers_all_children() {
        let mut tm = TargetMapping::new(target());
        tm.accept(mother_mapping()).unwrap();
        tm.accept(father_mapping()).unwrap();
        let out = tm.evaluate_union(&db(), &funcs()).unwrap();
        assert_eq!(out.len(), 2);
        let tom = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("004"))
            .unwrap();
        assert_eq!(tom[1], Value::str("555-2")); // father's phone
    }

    #[test]
    fn merged_semantics_collapses_partial_tuples() {
        let mut tm = TargetMapping::new(target());
        tm.accept(ids_mapping()).unwrap(); // (001, null), (004, null)
        tm.accept(mother_mapping()).unwrap(); // (001, 555-1)
        let union = tm.evaluate_union(&db(), &funcs()).unwrap();
        assert_eq!(union.len(), 3); // 001 appears twice
        let merged = tm.evaluate_merged(&db(), &funcs()).unwrap();
        assert_eq!(merged.len(), 2); // (001,null) merged into (001,555-1)
        let anna = merged
            .rows()
            .iter()
            .find(|r| r[0] == Value::str("001"))
            .unwrap();
        assert_eq!(anna[1], Value::str("555-1"));
    }

    #[test]
    fn contributions_report_exclusive_tuples() {
        let mut tm = TargetMapping::new(target());
        tm.accept(mother_mapping()).unwrap();
        tm.accept(father_mapping()).unwrap();
        tm.accept(ids_mapping()).unwrap();
        let contribs = tm.contributions(&db(), &funcs()).unwrap();
        assert_eq!(contribs.len(), 3);
        // mother mapping: (001, 555-1) — exclusive
        assert_eq!(contribs[0].produced, 1);
        assert_eq!(contribs[0].exclusive, 1);
        // ids mapping produces (001,null),(004,null) — both exclusive as
        // exact tuples (other mappings emit non-null phones)
        assert_eq!(contribs[2].produced, 2);
        assert_eq!(contribs[2].exclusive, 2);
    }

    #[test]
    fn empty_target_mapping_evaluates_empty() {
        let tm = TargetMapping::new(target());
        assert!(tm.evaluate_union(&db(), &funcs()).unwrap().is_empty());
        assert!(tm.evaluate_merged(&db(), &funcs()).unwrap().is_empty());
        assert!(tm.contributions(&db(), &funcs()).unwrap().is_empty());
    }
}
