//! Value correspondences (paper Def 3.1).
//!
//! A value correspondence is a function over the values of a set of source
//! attributes that computes a value for one target attribute. Here the
//! function is an [`Expr`] over the query graph's qualified columns —
//! identity (`Children.ID`), arithmetic
//! (`Parents.salary + Parents2.salary`), or scalar-function calls
//! (`concat(PhoneDir.type, ',', PhoneDir.number)`).

use std::fmt;

use clio_relational::error::{Error, Result};
use clio_relational::expr::Expr;
use clio_relational::parser::parse_expr;
use clio_relational::schema::{RelSchema, Scheme};

/// A value correspondence: `expr → target.target_attr`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueCorrespondence {
    /// The target attribute this correspondence populates.
    pub target_attr: String,
    /// The source expression computing the target value.
    pub expr: Expr,
}

impl ValueCorrespondence {
    /// Build a correspondence.
    pub fn new(expr: Expr, target_attr: impl Into<String>) -> ValueCorrespondence {
        ValueCorrespondence {
            target_attr: target_attr.into(),
            expr,
        }
    }

    /// Identity correspondence from one qualified source column
    /// (`"Children.ID"` → `"ID"`), the most common kind (paper `v1`, `v2`).
    pub fn identity(source_col: &str, target_attr: impl Into<String>) -> ValueCorrespondence {
        ValueCorrespondence::new(Expr::col(source_col), target_attr)
    }

    /// Parse the source expression from text.
    pub fn parse(expr: &str, target_attr: impl Into<String>) -> Result<ValueCorrespondence> {
        Ok(ValueCorrespondence::new(parse_expr(expr)?, target_attr))
    }

    /// Validate against the graph's wide scheme and the target schema:
    /// the expression must bind, and the target attribute must exist.
    pub fn validate(&self, graph_scheme: &Scheme, target: &RelSchema) -> Result<()> {
        self.expr.bind(graph_scheme)?;
        target
            .index_of(&self.target_attr)
            .map_err(|_| Error::UnknownColumn(format!("{}.{}", target.name(), self.target_attr)))?;
        Ok(())
    }

    /// The source qualifiers (graph node aliases) this correspondence
    /// draws from.
    #[must_use]
    pub fn source_qualifiers(&self) -> Vec<&str> {
        self.expr.qualifiers()
    }
}

impl fmt::Display for ValueCorrespondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.expr, self.target_attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::schema::{Attribute, Column};
    use clio_relational::value::DataType;

    fn target() -> RelSchema {
        RelSchema::new(
            "Kids",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("FamilyIncome", DataType::Int),
            ],
        )
        .unwrap()
    }

    fn graph_scheme() -> Scheme {
        Scheme::new(vec![
            Column::new("Children", "ID", DataType::Str),
            Column::new("Parents", "salary", DataType::Int),
            Column::new("Parents2", "salary", DataType::Int),
        ])
    }

    #[test]
    fn identity_correspondence_validates() {
        let v = ValueCorrespondence::identity("Children.ID", "ID");
        v.validate(&graph_scheme(), &target()).unwrap();
        assert_eq!(v.to_string(), "Children.ID -> ID");
    }

    #[test]
    fn family_income_correspondence_from_example_3_2() {
        let v =
            ValueCorrespondence::parse("Parents.salary + Parents2.salary", "FamilyIncome").unwrap();
        v.validate(&graph_scheme(), &target()).unwrap();
        assert_eq!(v.source_qualifiers(), vec!["Parents", "Parents2"]);
    }

    #[test]
    fn unknown_target_attribute_rejected() {
        let v = ValueCorrespondence::identity("Children.ID", "BusSchedule");
        assert!(v.validate(&graph_scheme(), &target()).is_err());
    }

    #[test]
    fn unbound_source_column_rejected() {
        let v = ValueCorrespondence::identity("SBPS.time", "ID");
        assert!(v.validate(&graph_scheme(), &target()).is_err());
    }

    #[test]
    fn parse_error_propagates() {
        assert!(ValueCorrespondence::parse("a +", "ID").is_err());
    }
}
