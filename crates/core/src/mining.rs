//! Join-path mining: discovering potential join conditions from data.
//!
//! The paper's schema knowledge is "gathered from schema and constraint
//! definitions and **from mining the source data**, views, stored queries
//! and metadata" (Sec 5.1). Declared foreign keys cover the first part;
//! this module covers the second with unary **inclusion-dependency
//! mining**: attribute pair `(R.a, S.b)` is a join candidate when a large
//! fraction of `R.a`'s values appear in `S.b`.
//!
//! Mined specs carry [`Provenance::Mined`] so the UI can present them
//! with appropriate skepticism — exactly how Figure 11's direct
//! `Children—PhoneDir` walk (`G4`) can exist without a declared key.

use std::collections::{HashMap, HashSet};

use clio_relational::database::Database;
use clio_relational::value::{DataType, Value};

use crate::knowledge::{JoinSpec, Provenance, SchemaKnowledge};

/// Mining configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningConfig {
    /// Minimum fraction of the referencing attribute's non-null values
    /// that must occur in the referenced attribute (1.0 = strict
    /// inclusion dependency).
    pub min_containment: f64,
    /// Minimum number of distinct shared values (filters out coincidences
    /// on tiny domains).
    pub min_shared_values: usize,
    /// Only propose pairs of the same data type.
    pub require_same_type: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_containment: 0.95,
            min_shared_values: 2,
            require_same_type: true,
        }
    }
}

/// A mined candidate with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedDependency {
    /// Referencing relation and attribute.
    pub from: (String, String),
    /// Referenced relation and attribute.
    pub to: (String, String),
    /// Fraction of `from`'s non-null distinct values found in `to`.
    pub containment: f64,
    /// Number of distinct shared values.
    pub shared_values: usize,
}

impl MinedDependency {
    /// Convert to a [`JoinSpec`] (provenance `Mined`).
    #[must_use]
    pub fn to_spec(&self) -> JoinSpec {
        JoinSpec::simple(
            self.from.0.clone(),
            self.from.1.clone(),
            self.to.0.clone(),
            self.to.1.clone(),
            Provenance::Mined,
        )
    }
}

/// Mine unary inclusion dependencies across all relation pairs. Runs in
/// one pass per attribute (distinct-value sets) plus a pairwise
/// containment check over attribute value-sets.
#[must_use]
pub fn mine_inclusion_dependencies(db: &Database, config: &MiningConfig) -> Vec<MinedDependency> {
    // distinct non-null values per (relation, attribute)
    struct Col {
        relation: String,
        attribute: String,
        ty: DataType,
        values: HashSet<Value>,
    }
    let mut cols: Vec<Col> = Vec::new();
    for rel in db.relations() {
        for (ai, attr) in rel.schema().attrs().iter().enumerate() {
            let mut values = HashSet::new();
            for row in rel.rows() {
                if !row[ai].is_null() {
                    values.insert(row[ai].clone());
                }
            }
            cols.push(Col {
                relation: rel.name().to_owned(),
                attribute: attr.name.clone(),
                ty: attr.ty,
                values,
            });
        }
    }

    let mut out = Vec::new();
    for from in &cols {
        if from.values.is_empty() {
            continue;
        }
        for to in &cols {
            if from.relation == to.relation {
                continue; // self-joins are out of scope for walks
            }
            if config.require_same_type && from.ty != to.ty {
                continue;
            }
            let shared = from.values.intersection(&to.values).count();
            let containment = shared as f64 / from.values.len() as f64;
            if containment >= config.min_containment && shared >= config.min_shared_values {
                out.push(MinedDependency {
                    from: (from.relation.clone(), from.attribute.clone()),
                    to: (to.relation.clone(), to.attribute.clone()),
                    containment,
                    shared_values: shared,
                });
            }
        }
    }
    // deterministic order: strongest evidence first
    out.sort_by(|a, b| {
        b.shared_values
            .cmp(&a.shared_values)
            .then_with(|| b.containment.total_cmp(&a.containment))
            .then_with(|| (&a.from, &a.to).cmp(&(&b.from, &b.to)))
    });
    out
}

/// Mine and fold the results into a knowledge base (skipping pairs that
/// duplicate declared foreign keys in either orientation).
pub fn enrich_knowledge(
    knowledge: &mut SchemaKnowledge,
    db: &Database,
    config: &MiningConfig,
) -> Vec<MinedDependency> {
    let mined = mine_inclusion_dependencies(db, config);
    let mut added = Vec::new();
    for dep in mined {
        let duplicate = knowledge
            .specs_between(&dep.from.0, &dep.to.0)
            .iter()
            .any(|s| {
                s.attr_pairs.len() == 1
                    && ((s.rel_a == dep.from.0
                        && s.attr_pairs[0].0 == dep.from.1
                        && s.attr_pairs[0].1 == dep.to.1)
                        || (s.rel_b == dep.from.0
                            && s.attr_pairs[0].1 == dep.from.1
                            && s.attr_pairs[0].0 == dep.to.1))
            });
        if !duplicate {
            knowledge.add_spec(dep.to_spec());
            added.push(dep);
        }
    }
    added
}

/// Count the distinct non-null values of every attribute (profiling aid
/// used by the CLI's `source` view and by mining diagnostics).
#[must_use]
pub fn distinct_counts(db: &Database) -> HashMap<(String, String), usize> {
    let mut out = HashMap::new();
    for rel in db.relations() {
        for (ai, attr) in rel.schema().attrs().iter().enumerate() {
            let mut values = HashSet::new();
            for row in rel.rows() {
                if !row[ai].is_null() {
                    values.insert(&row[ai]);
                }
            }
            out.insert((rel.name().to_owned(), attr.name.clone()), values.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::constraints::ForeignKey;
    use clio_relational::relation::RelationBuilder;

    /// A miniature of the paper database: declared FKs mid/fid, plus the
    /// undeclared SBPS and bazaar links that mining should discover.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr_not_null("ID", DataType::Str)
                .attr("mid", DataType::Str)
                .attr("fid", DataType::Str)
                .row(vec!["001".into(), "201".into(), "202".into()])
                .row(vec!["002".into(), "203".into(), "204".into()])
                .row(vec!["004".into(), Value::Null, "202".into()])
                .row(vec!["009".into(), "206".into(), "207".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Parents")
                .attr_not_null("ID", DataType::Str)
                .row(vec!["201".into()])
                .row(vec!["202".into()])
                .row(vec!["203".into()])
                .row(vec!["204".into()])
                .row(vec!["205".into()])
                .row(vec!["206".into()])
                .row(vec!["207".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("SBPS")
                .attr_not_null("ID", DataType::Str)
                .attr("time", DataType::Str)
                .row(vec!["001".into(), "8:05".into()])
                .row(vec!["002".into(), "8:15".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("XmasBazaar")
                .attr("seller", DataType::Str)
                .attr("buyer", DataType::Str)
                .row(vec!["002".into(), "001".into()])
                .row(vec!["009".into(), "002".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints.foreign_keys.extend([
            ForeignKey::simple("Children", "mid", "Parents", "ID"),
            ForeignKey::simple("Children", "fid", "Parents", "ID"),
        ]);
        db
    }

    fn strict() -> MiningConfig {
        MiningConfig {
            min_containment: 1.0,
            min_shared_values: 2,
            require_same_type: true,
        }
    }

    #[test]
    fn mining_rediscovers_the_declared_foreign_keys() {
        let mined = mine_inclusion_dependencies(&db(), &strict());
        let has = |from: (&str, &str), to: (&str, &str)| {
            mined.iter().any(|d| {
                d.from == (from.0.to_owned(), from.1.to_owned())
                    && d.to == (to.0.to_owned(), to.1.to_owned())
            })
        };
        assert!(has(("Children", "mid"), ("Parents", "ID")));
        assert!(has(("Children", "fid"), ("Parents", "ID")));
    }

    #[test]
    fn mining_discovers_the_undeclared_links() {
        let mined = mine_inclusion_dependencies(&db(), &strict());
        // SBPS.ID is contained in Children.ID — the Figure-5 chase link
        assert!(mined
            .iter()
            .any(|d| d.from == ("SBPS".into(), "ID".into())
                && d.to == ("Children".into(), "ID".into())));
        assert!(mined
            .iter()
            .any(|d| d.from == ("XmasBazaar".into(), "seller".into())
                && d.to == ("Children".into(), "ID".into())));
    }

    #[test]
    fn containment_threshold_filters_weak_candidates() {
        // Children.ID only half-contained in SBPS.ID (2/4)
        let loose = MiningConfig {
            min_containment: 0.4,
            ..strict()
        };
        let mined = mine_inclusion_dependencies(&db(), &loose);
        assert!(mined
            .iter()
            .any(|d| d.from == ("Children".into(), "ID".into())
                && d.to == ("SBPS".into(), "ID".into())));
        let tight = mine_inclusion_dependencies(&db(), &strict());
        assert!(!tight
            .iter()
            .any(|d| d.from == ("Children".into(), "ID".into())
                && d.to == ("SBPS".into(), "ID".into())));
    }

    #[test]
    fn min_shared_values_filters_coincidences() {
        let config = MiningConfig {
            min_shared_values: 3,
            ..strict()
        };
        for d in mine_inclusion_dependencies(&db(), &config) {
            assert!(d.shared_values >= 3);
        }
    }

    #[test]
    fn enrich_skips_declared_foreign_keys() {
        let database = db();
        let mut knowledge = SchemaKnowledge::from_database(&database);
        let before = knowledge.specs().len();
        assert_eq!(before, 2);
        let added = enrich_knowledge(&mut knowledge, &database, &strict());
        for dep in &added {
            assert!(
                !(dep.from.0 == "Children"
                    && (dep.from.1 == "mid" || dep.from.1 == "fid")
                    && dep.to == ("Parents".into(), "ID".into())),
                "declared FK re-added: {dep:?}"
            );
        }
        assert_eq!(knowledge.specs().len(), before + added.len());
        // now a walk can reach SBPS without a chase
        assert!(!knowledge.paths("Children", "SBPS", 2).is_empty());
    }

    #[test]
    fn results_are_deterministic_and_ranked() {
        let a = mine_inclusion_dependencies(&db(), &strict());
        let b = mine_inclusion_dependencies(&db(), &strict());
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].shared_values >= w[1].shared_values);
        }
    }

    #[test]
    fn distinct_counts_profile() {
        let counts = distinct_counts(&db());
        assert_eq!(counts[&("Children".to_owned(), "ID".to_owned())], 4);
        assert_eq!(counts[&("Parents".to_owned(), "ID".to_owned())], 7);
        assert_eq!(counts[&("Children".to_owned(), "mid".to_owned())], 3);
    }
}
