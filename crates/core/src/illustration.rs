//! Sufficient illustrations (paper Sec 4.2) and minimal selection.
//!
//! An *illustration* is any set of examples of a mapping. A **sufficient**
//! illustration demonstrates all aspects of the mapping:
//!
//! * **query graph** (Def 4.2): one example per non-empty coverage
//!   category of `D(G)`;
//! * **filters** (Def 4.4): per category, a positive example if one exists
//!   and a negative example if one exists;
//! * **value correspondences** (Def 4.5): per category and target
//!   attribute, a positive example with a non-null value there if one
//!   exists, and a positive example with a null value there if one exists;
//! * **mapping** (Def 4.6): all three at once.
//!
//! The requirements form a set-cover instance over the candidate examples.
//! Selecting a *minimal* sufficient illustration is NP-hard in general, so
//! we provide a greedy `ln n`-approximation ([`select_greedy`]) and an
//! exact branch-and-bound ([`select_exact`]) for the small instances that
//! arise in practice; benchmark **B3** compares them. The paper: "We make
//! use of [...] techniques [...] to efficiently select a minimal
//! sufficient illustration."

use std::collections::HashMap;

use clio_obs::metrics::{self, Counter};

use crate::example::Example;
use crate::query_graph::QueryGraph;

/// One atomic thing a sufficient illustration must demonstrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// Def 4.2 — some example with this coverage.
    Coverage(u64),
    /// Def 4.4 — an example with this coverage and polarity.
    Polarity {
        /// Coverage category.
        coverage: u64,
        /// Required polarity.
        positive: bool,
    },
    /// Def 4.5 — a **positive** example with this coverage whose target
    /// value at `attr` is null / non-null.
    AttrValue {
        /// Coverage category.
        coverage: u64,
        /// Target attribute index.
        attr: usize,
        /// `true` = demonstrate a non-null value, `false` = a null one.
        non_null: bool,
    },
}

/// Does example `e` satisfy requirement `r`?
#[must_use]
pub fn satisfies(e: &Example, r: &Requirement) -> bool {
    metrics::incr(Counter::RequirementsChecked);
    match *r {
        Requirement::Coverage(c) => e.coverage == c,
        Requirement::Polarity { coverage, positive } => {
            e.coverage == coverage && e.positive == positive
        }
        Requirement::AttrValue {
            coverage,
            attr,
            non_null,
        } => e.positive && e.coverage == coverage && e.target[attr].is_null() != non_null,
    }
}

/// Which aspects of the mapping to require (Defs 4.2 / 4.4 / 4.5 / 4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SufficiencyScope {
    /// Include Def 4.2 coverage requirements.
    pub graph: bool,
    /// Include Def 4.4 polarity requirements.
    pub filters: bool,
    /// Include Def 4.5 per-attribute requirements.
    pub correspondences: bool,
}

impl SufficiencyScope {
    /// Def 4.6: everything.
    #[must_use]
    pub fn mapping() -> SufficiencyScope {
        SufficiencyScope {
            graph: true,
            filters: true,
            correspondences: true,
        }
    }

    /// Def 4.2 only.
    #[must_use]
    pub fn graph_only() -> SufficiencyScope {
        SufficiencyScope {
            graph: true,
            filters: false,
            correspondences: false,
        }
    }

    /// Def 4.4 only.
    #[must_use]
    pub fn filters_only() -> SufficiencyScope {
        SufficiencyScope {
            graph: false,
            filters: true,
            correspondences: false,
        }
    }

    /// Def 4.5 only.
    #[must_use]
    pub fn correspondences_only() -> SufficiencyScope {
        SufficiencyScope {
            graph: false,
            filters: false,
            correspondences: true,
        }
    }
}

/// Derive the requirement set from the full example population. Every
/// definition is conditional ("if there exists … then I contains …"), so a
/// requirement is emitted only when at least one candidate satisfies it.
#[must_use]
pub fn requirements(
    all: &[Example],
    target_arity: usize,
    scope: SufficiencyScope,
) -> Vec<Requirement> {
    let mut out = Vec::new();
    let mut categories: Vec<u64> = Vec::new();
    for e in all {
        if !categories.contains(&e.coverage) {
            categories.push(e.coverage);
        }
    }
    categories.sort_by_key(|&m| (m.count_ones(), m));

    for &c in &categories {
        if scope.graph {
            out.push(Requirement::Coverage(c));
        }
        if scope.filters {
            for positive in [true, false] {
                let r = Requirement::Polarity {
                    coverage: c,
                    positive,
                };
                if all.iter().any(|e| satisfies(e, &r)) {
                    out.push(r);
                }
            }
        }
        if scope.correspondences {
            for attr in 0..target_arity {
                for non_null in [true, false] {
                    let r = Requirement::AttrValue {
                        coverage: c,
                        attr,
                        non_null,
                    };
                    if all.iter().any(|e| satisfies(e, &r)) {
                        out.push(r);
                    }
                }
            }
        }
    }
    out
}

/// Is `illustration` sufficient for the given scope, relative to the full
/// example population `all`?
#[must_use]
pub fn is_sufficient(
    illustration: &[Example],
    all: &[Example],
    target_arity: usize,
    scope: SufficiencyScope,
) -> bool {
    requirements(all, target_arity, scope)
        .iter()
        .all(|r| illustration.iter().any(|e| satisfies(e, r)))
}

/// Greedy minimal-sufficient-illustration selection: repeatedly take the
/// example covering the most uncovered requirements. Returns indexes into
/// `all`.
#[must_use]
pub fn select_greedy(all: &[Example], target_arity: usize, scope: SufficiencyScope) -> Vec<usize> {
    let _span = clio_obs::span("illustration.select_greedy");
    let reqs = requirements(all, target_arity, scope);
    let mut covered = vec![false; reqs.len()];
    let mut chosen: Vec<usize> = Vec::new();
    loop {
        metrics::incr(Counter::GreedyIterations);
        let mut best: Option<(usize, usize)> = None; // (example idx, gain)
        for (i, e) in all.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = reqs
                .iter()
                .zip(&covered)
                .filter(|(r, &c)| !c && satisfies(e, r))
                .count();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        match best {
            None => break,
            Some((i, _)) => {
                for (k, r) in reqs.iter().enumerate() {
                    if satisfies(&all[i], r) {
                        covered[k] = true;
                    }
                }
                chosen.push(i);
            }
        }
    }
    chosen
}

/// Exact minimum sufficient illustration by branch-and-bound. Branches on
/// the uncovered requirement with the fewest candidates. `node_limit`
/// bounds the search (returns `None` when exceeded) so callers can fall
/// back to [`select_greedy`] on adversarial instances.
#[must_use]
pub fn select_exact(
    all: &[Example],
    target_arity: usize,
    scope: SufficiencyScope,
    node_limit: usize,
) -> Option<Vec<usize>> {
    let reqs = requirements(all, target_arity, scope);
    // candidates per requirement
    let cands: Vec<Vec<usize>> = reqs
        .iter()
        .map(|r| (0..all.len()).filter(|&i| satisfies(&all[i], r)).collect())
        .collect();
    let greedy = select_greedy(all, target_arity, scope);
    let mut best: Vec<usize> = greedy;
    let mut nodes = 0usize;

    fn recurse(
        all: &[Example],
        reqs: &[Requirement],
        cands: &[Vec<usize>],
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
        nodes: &mut usize,
        node_limit: usize,
    ) -> bool {
        *nodes += 1;
        if *nodes > node_limit {
            return false;
        }
        if chosen.len() >= best.len() {
            return true; // prune: cannot improve
        }
        // first uncovered requirement with the fewest candidates
        let mut pick: Option<usize> = None;
        for (k, r) in reqs.iter().enumerate() {
            if !chosen.iter().any(|&i| satisfies(&all[i], r))
                && pick.is_none_or(|p| cands[k].len() < cands[p].len())
            {
                pick = Some(k);
            }
        }
        let Some(k) = pick else {
            // all covered: new best
            *best = chosen.clone();
            return true;
        };
        for &i in &cands[k] {
            chosen.push(i);
            let ok = recurse(all, reqs, cands, chosen, best, nodes, node_limit);
            chosen.pop();
            if !ok {
                return false;
            }
        }
        true
    }

    let mut chosen = Vec::new();
    let completed = recurse(
        all,
        &reqs,
        &cands,
        &mut chosen,
        &mut best,
        &mut nodes,
        node_limit,
    );
    completed.then(|| {
        best.sort_unstable();
        best
    })
}

/// A selected illustration: the chosen examples plus bookkeeping for
/// display and evolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Illustration {
    /// The selected examples.
    pub examples: Vec<Example>,
}

impl Illustration {
    /// An empty illustration.
    #[must_use]
    pub fn empty() -> Illustration {
        Illustration {
            examples: Vec::new(),
        }
    }

    /// Build from chosen indexes into a population.
    #[must_use]
    pub fn from_indexes(all: &[Example], idxs: &[usize]) -> Illustration {
        Illustration {
            examples: idxs.iter().map(|&i| all[i].clone()).collect(),
        }
    }

    /// A minimal sufficient illustration of the mapping (Def 4.6): exact
    /// when the search completes within budget, greedy otherwise.
    #[must_use]
    pub fn minimal_sufficient(all: &[Example], target_arity: usize) -> Illustration {
        let scope = SufficiencyScope::mapping();
        let idxs = select_exact(all, target_arity, scope, 200_000)
            .unwrap_or_else(|| select_greedy(all, target_arity, scope));
        Illustration::from_indexes(all, &idxs)
    }

    /// A minimal *sufficient and focused* illustration (Defs 4.6 + 4.7):
    /// every example in `required` (the focus closure — all examples
    /// involving the focus tuples) is included, then sufficiency is
    /// restored greedily with as few extra examples as possible.
    #[must_use]
    pub fn minimal_sufficient_focused(
        all: &[Example],
        target_arity: usize,
        required: &[Example],
    ) -> Illustration {
        let scope = SufficiencyScope::mapping();
        let reqs = requirements(all, target_arity, scope);
        let mut examples: Vec<Example> = required.to_vec();
        let mut covered: Vec<bool> = reqs
            .iter()
            .map(|r| examples.iter().any(|e| satisfies(e, r)))
            .collect();
        loop {
            metrics::incr(Counter::GreedyIterations);
            let mut best: Option<(usize, usize)> = None;
            for (i, e) in all.iter().enumerate() {
                if examples.contains(e) {
                    continue;
                }
                let gain = reqs
                    .iter()
                    .zip(&covered)
                    .filter(|(r, &c)| !c && satisfies(e, r))
                    .count();
                if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            match best {
                None => break,
                Some((i, _)) => {
                    for (k, r) in reqs.iter().enumerate() {
                        if satisfies(&all[i], r) {
                            covered[k] = true;
                        }
                    }
                    examples.push(all[i].clone());
                }
            }
        }
        Illustration { examples }
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Is the illustration empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Count per polarity: `(positives, negatives)`.
    #[must_use]
    pub fn polarity_counts(&self) -> (usize, usize) {
        let pos = self.examples.iter().filter(|e| e.positive).count();
        (pos, self.examples.len() - pos)
    }

    /// The coverage categories represented, with multiplicity.
    #[must_use]
    pub fn category_histogram(&self) -> HashMap<u64, usize> {
        let mut out = HashMap::new();
        for e in &self.examples {
            *out.entry(e.coverage).or_insert(0) += 1;
        }
        out
    }

    /// Render in the paper's Figure-9 style.
    #[must_use]
    pub fn render(&self, graph: &QueryGraph, scheme: &clio_relational::schema::Scheme) -> String {
        let refs: Vec<&Example> = self.examples.iter().collect();
        crate::example::render_examples(graph, scheme, &refs)
    }

    /// Alternative examples for slot `index`: members of the population
    /// that satisfy every requirement the current example covers
    /// *exclusively* (i.e. could replace it without losing sufficiency),
    /// excluding examples already in the illustration. The paper: the
    /// user may view and manipulate illustrations, "perhaps asking for
    /// different example tuples".
    #[must_use]
    pub fn alternatives_for(
        &self,
        index: usize,
        all: &[Example],
        target_arity: usize,
        scope: SufficiencyScope,
    ) -> Vec<Example> {
        let Some(current) = self.examples.get(index) else {
            return Vec::new();
        };
        // requirements only `current` covers within this illustration
        let exclusive: Vec<Requirement> = requirements(all, target_arity, scope)
            .into_iter()
            .filter(|r| {
                satisfies(current, r)
                    && !self
                        .examples
                        .iter()
                        .enumerate()
                        .any(|(i, e)| i != index && satisfies(e, r))
            })
            .collect();
        all.iter()
            .filter(|e| {
                *e != current
                    && !self.examples.contains(e)
                    && exclusive.iter().all(|r| satisfies(e, r))
            })
            .cloned()
            .collect()
    }

    /// Replace the example at `index` with `replacement`. Returns `false`
    /// (and leaves the illustration untouched) when the swap would break
    /// sufficiency relative to `all`.
    pub fn swap(
        &mut self,
        index: usize,
        replacement: Example,
        all: &[Example],
        target_arity: usize,
        scope: SufficiencyScope,
    ) -> bool {
        if index >= self.examples.len() {
            return false;
        }
        let saved = std::mem::replace(&mut self.examples[index], replacement);
        if is_sufficient(&self.examples, all, target_arity, scope) {
            true
        } else {
            self.examples[index] = saved;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_relational::value::Value;

    /// Hand-built example population over a 2-node graph (masks 0b01,
    /// 0b10, 0b11) and a 2-attribute target.
    fn population() -> Vec<Example> {
        fn ex(coverage: u64, positive: bool, t0: Option<&str>, t1: Option<&str>) -> Example {
            Example {
                association: vec![Value::Int(coverage as i64)],
                coverage,
                target: vec![
                    t0.map(Value::str).map_or(Value::Null, |v| v),
                    t1.map(Value::str).map_or(Value::Null, |v| v),
                ],
                positive,
            }
        }
        vec![
            ex(0b11, true, Some("a"), Some("x")),  // 0
            ex(0b11, true, Some("b"), None),       // 1
            ex(0b11, false, Some("c"), Some("y")), // 2
            ex(0b01, true, Some("d"), None),       // 3
            ex(0b10, false, None, Some("z")),      // 4
        ]
    }

    #[test]
    fn requirement_satisfaction() {
        let pop = population();
        assert!(satisfies(&pop[0], &Requirement::Coverage(0b11)));
        assert!(!satisfies(&pop[3], &Requirement::Coverage(0b11)));
        assert!(satisfies(
            &pop[2],
            &Requirement::Polarity {
                coverage: 0b11,
                positive: false
            }
        ));
        assert!(satisfies(
            &pop[1],
            &Requirement::AttrValue {
                coverage: 0b11,
                attr: 1,
                non_null: false
            }
        ));
        // negative examples never satisfy AttrValue requirements
        assert!(!satisfies(
            &pop[2],
            &Requirement::AttrValue {
                coverage: 0b11,
                attr: 1,
                non_null: true
            }
        ));
    }

    #[test]
    fn requirements_are_conditional_on_existence() {
        let pop = population();
        let reqs = requirements(&pop, 2, SufficiencyScope::mapping());
        // no positive example with coverage 0b10 → no such polarity req
        assert!(!reqs.contains(&Requirement::Polarity {
            coverage: 0b10,
            positive: true
        }));
        assert!(reqs.contains(&Requirement::Polarity {
            coverage: 0b10,
            positive: false
        }));
        // coverage reqs for all three categories
        for c in [0b01u64, 0b10, 0b11] {
            assert!(reqs.contains(&Requirement::Coverage(c)));
        }
        // 0b01 positives never have attr1 non-null → only the null variant
        assert!(reqs.contains(&Requirement::AttrValue {
            coverage: 0b01,
            attr: 1,
            non_null: false
        }));
        assert!(!reqs.contains(&Requirement::AttrValue {
            coverage: 0b01,
            attr: 1,
            non_null: true
        }));
    }

    #[test]
    fn full_population_is_always_sufficient() {
        let pop = population();
        assert!(is_sufficient(&pop, &pop, 2, SufficiencyScope::mapping()));
    }

    #[test]
    fn dropping_a_category_breaks_graph_sufficiency() {
        let pop = population();
        let partial: Vec<Example> = pop.iter().filter(|e| e.coverage != 0b10).cloned().collect();
        assert!(!is_sufficient(
            &partial,
            &pop,
            2,
            SufficiencyScope::graph_only()
        ));
        // but removing one of two CPPh-full examples keeps it sufficient
        let partial: Vec<Example> = pop
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0)
            .map(|(_, e)| e.clone())
            .collect();
        assert!(is_sufficient(
            &partial,
            &pop,
            2,
            SufficiencyScope::graph_only()
        ));
    }

    #[test]
    fn filters_sufficiency_needs_both_polarities() {
        let pop = population();
        let only_positive: Vec<Example> = pop.iter().filter(|e| e.positive).cloned().collect();
        assert!(!is_sufficient(
            &only_positive,
            &pop,
            2,
            SufficiencyScope::filters_only()
        ));
    }

    #[test]
    fn correspondence_sufficiency_needs_null_and_non_null_witnesses() {
        let pop = population();
        // drop example 1 (the only positive 0b11 with null attr1)
        let partial: Vec<Example> = pop
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, e)| e.clone())
            .collect();
        assert!(!is_sufficient(
            &partial,
            &pop,
            2,
            SufficiencyScope::correspondences_only()
        ));
    }

    #[test]
    fn greedy_selection_is_sufficient() {
        let pop = population();
        let idxs = select_greedy(&pop, 2, SufficiencyScope::mapping());
        let ill = Illustration::from_indexes(&pop, &idxs);
        assert!(is_sufficient(
            &ill.examples,
            &pop,
            2,
            SufficiencyScope::mapping()
        ));
    }

    #[test]
    fn exact_selection_is_minimal_and_sufficient() {
        let pop = population();
        let idxs = select_exact(&pop, 2, SufficiencyScope::mapping(), 100_000).unwrap();
        let ill = Illustration::from_indexes(&pop, &idxs);
        assert!(is_sufficient(
            &ill.examples,
            &pop,
            2,
            SufficiencyScope::mapping()
        ));
        // this instance needs examples 1 (null attr1), one of {0} (non-null
        // attr1 + non-null attr0), 2 (negative 0b11), 3, 4 → exactly 5? No:
        // example 0 covers several reqs; count must be ≤ greedy's
        let greedy = select_greedy(&pop, 2, SufficiencyScope::mapping());
        assert!(idxs.len() <= greedy.len());
        assert_eq!(idxs.len(), 5); // all five are needed here
    }

    #[test]
    fn exact_respects_node_limit() {
        let pop = population();
        assert!(select_exact(&pop, 2, SufficiencyScope::mapping(), 1).is_none());
    }

    #[test]
    fn minimal_sufficient_constructor() {
        let pop = population();
        let ill = Illustration::minimal_sufficient(&pop, 2);
        assert!(is_sufficient(
            &ill.examples,
            &pop,
            2,
            SufficiencyScope::mapping()
        ));
        let (p, n) = ill.polarity_counts();
        assert!(p >= 1 && n >= 1);
        assert_eq!(ill.category_histogram().len(), 3);
    }

    #[test]
    fn alternatives_and_swap_preserve_sufficiency() {
        let pop = population();
        let scope = SufficiencyScope::mapping();
        let mut ill = Illustration::minimal_sufficient(&pop, 2);
        // pick the slot holding the 0b11 positive-with-non-null example
        let slot = ill
            .examples
            .iter()
            .position(|e| e.coverage == 0b11 && e.positive && !e.target[1].is_null())
            .expect("slot exists");
        // population example 0 and 1 both cover 0b11 positives, but only
        // example 0 has non-null attr1; no alternative can replace it
        let alts = ill.alternatives_for(slot, &pop, 2, scope);
        for a in &alts {
            let mut trial = ill.clone();
            assert!(trial.swap(slot, a.clone(), &pop, 2, scope));
            assert!(is_sufficient(&trial.examples, &pop, 2, scope));
        }
        // swapping in a random unsuitable example is refused
        let unsuitable = pop[4].clone(); // 0b10 negative
        let before = ill.clone();
        if !alts.contains(&unsuitable) {
            assert!(!ill.swap(slot, unsuitable, &pop, 2, scope));
            assert_eq!(ill, before);
        }
        // out-of-range swap is refused
        assert!(!ill.swap(99, pop[0].clone(), &pop, 2, scope));
        assert!(ill.alternatives_for(99, &pop, 2, scope).is_empty());
    }

    #[test]
    fn empty_population_yields_empty_illustration() {
        let ill = Illustration::minimal_sufficient(&[], 2);
        assert!(ill.is_empty());
        assert!(is_sufficient(&[], &[], 2, SufficiencyScope::mapping()));
    }
}
