//! Typed command-line configuration for the `clio-shell` binary.
//!
//! [`CliConfig::parse`] turns an argv slice into a [`CliConfig`] or a
//! [`UsageError`] whose `Display` is exactly the message the binary
//! prints to stderr before exiting 2 — so tests can assert on flag
//! handling without spawning a process, and the binary's behavior is
//! the library's behavior.

use clio_datagen::synthetic::{SyntheticSpec, Topology};

/// Buffer-pool page budget used for paged databases when `--db-pool`
/// is not given (also the pool `db load` opens with).
pub const DEFAULT_DB_POOL: usize = 64;

/// A command-line usage error. `Display` renders the exact stderr
/// message of the `clio-shell` binary (which then exits 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// Which front-end the binary runs, selected by an optional leading
/// subcommand word (`serve` / `connect <addr>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Mode {
    /// The local shell: interactive, `--script`, or batch positional
    /// scripts.
    #[default]
    Local,
    /// `serve`: listen for framed TCP clients (see docs/service.md).
    Serve,
    /// `connect <addr>`: drive a remote server with `--script` (or
    /// stdin) lines.
    Connect(String),
}

/// Everything the `clio-shell` binary accepts on its command line, in
/// typed form. See the binary's `--help` for flag semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliConfig {
    /// Front-end mode: local shell (default), `serve`, or
    /// `connect <addr>`.
    pub mode: Mode,
    /// `--port <n>` (serve): TCP port to listen on; 0 (the default)
    /// picks an ephemeral port. Environment fallback: `CLIO_PORT`.
    pub port: Option<u16>,
    /// `--max-conns <n>` (serve): concurrent-connection cap (validated
    /// positive; default: the `--threads` width). Environment fallback:
    /// `CLIO_MAX_CONNS`.
    pub max_conns: Option<usize>,
    /// `--idle-ms <n>` (serve): per-connection idle timeout in
    /// milliseconds (validated positive; default 30000). Environment
    /// fallback: `CLIO_IDLE_MS`.
    pub idle_ms: Option<u64>,
    /// `--help` / `-h`: print usage and exit 0. Parsing stops at the
    /// flag, so anything after it is neither validated nor applied.
    pub help: bool,
    /// `--script <file>`: run commands from a script instead of stdin.
    pub script: Option<String>,
    /// Positional arguments: script files run as a concurrent batch.
    pub batch_scripts: Vec<String>,
    /// `--sessions <n>`: batch width (validated positive).
    pub sessions_width: Option<usize>,
    /// `--source <dir>`: CSV source database directory.
    pub source_dir: Option<String>,
    /// `--db-dir <dir>`: paged source database directory (heap files
    /// written by `db save`; see `docs/storage.md`).
    pub db_dir: Option<String>,
    /// `--db-pool <pages>`: buffer-pool page budget for `--db-dir`
    /// (validated positive; default 64).
    pub db_pool: Option<usize>,
    /// `--target <schema>`: target schema text.
    pub target_spec: Option<String>,
    /// `--mapping <file>`: MAP-language statement file loaded as the
    /// initial workspace (see `docs/planner.md`).
    pub mapping_file: Option<String>,
    /// `--plan`: route mapping evaluation through the planner (filter
    /// pushdown + warmth-ordered subgraphs; see `docs/planner.md`).
    pub plan: bool,
    /// `--synthetic <spec>`: validated generator spec.
    pub synthetic: Option<SyntheticSpec>,
    /// `--metrics <file>`: counter JSON report path (`-` = stdout).
    pub metrics_path: Option<String>,
    /// `--trace` (or implied by `--trace-filter`).
    pub trace: bool,
    /// `--trace-filter <name>`.
    pub trace_filter: Option<String>,
    /// `--trace-out <file>`: Chrome trace-event JSONL export path.
    /// Enables span collection without implying the `--trace` tree.
    pub trace_out: Option<String>,
    /// `--slow-ms <n>`: warn on spans at least this slow (validated
    /// positive; `CLIO_SLOW_MS` is the environment fallback).
    pub slow_ms: Option<u64>,
    /// `--threads <n>`: engine worker threads (validated positive).
    pub threads: Option<usize>,
    /// `--no-cache`: disable the incremental evaluation cache.
    pub no_cache: bool,
    /// `--cache-dir <path>`: attach an on-disk cache store rooted at
    /// this directory (see `docs/incremental.md`, Persistence).
    pub cache_dir: Option<String>,
    /// `--cache-policy <lru|cost>`: how the cache evicts under
    /// byte-budget pressure (cost-aware by default; see
    /// `docs/incremental.md`, Eviction policy & cost model).
    pub cache_policy: Option<clio_incr::EvictionPolicy>,
}

/// The value of flag `flag`, or the binary's exact missing-value error.
fn require_value(args: &[String], i: usize, flag: &str) -> Result<String, UsageError> {
    args.get(i)
        .cloned()
        .ok_or_else(|| UsageError(format!("{flag} requires a value (see --help)")))
}

/// Parse a `--synthetic` spec (`<topology>,<relations>,<rows>`),
/// preserving the binary's historical error messages byte-for-byte.
fn parse_synthetic(spec_text: &str) -> Result<SyntheticSpec, UsageError> {
    let parts: Vec<&str> = spec_text.split(',').collect();
    let [topo, relations, rows] = parts.as_slice() else {
        return Err(UsageError(
            "expected --synthetic <topology>,<relations>,<rows>".into(),
        ));
    };
    let topology = match *topo {
        "chain" => Topology::Chain,
        "star" => Topology::Star,
        "cycle" => Topology::Cycle,
        "tree" => Topology::RandomTree,
        other => return Err(UsageError(format!("unknown topology `{other}`"))),
    };
    Ok(SyntheticSpec {
        topology,
        relations: relations
            .parse()
            .map_err(|e| UsageError(format!("bad relation count: {e}")))?,
        rows: rows
            .parse()
            .map_err(|e| UsageError(format!("bad row count: {e}")))?,
        match_rate: 0.7,
        payload_attrs: 1,
        seed: 42,
    })
}

impl CliConfig {
    /// Parse an argv slice (without the program name). Flags are
    /// processed left to right; the first invalid flag wins, and
    /// `--help` stops parsing. Cross-flag constraints that depend on
    /// runtime state (e.g. `--source` needing `--target`, `--script`
    /// conflicting with positional scripts) are checked by the binary
    /// in its historical order, not here.
    pub fn parse(args: &[String]) -> Result<CliConfig, UsageError> {
        let mut cfg = CliConfig::default();
        let mut i = 0;
        // The mode subcommand is recognized only as the first word, so
        // a positional script can still be named anything elsewhere.
        match args.first().map(String::as_str) {
            Some("serve") => {
                cfg.mode = Mode::Serve;
                i = 1;
            }
            Some("connect") => {
                let addr = args
                    .get(1)
                    .filter(|a| !a.starts_with('-'))
                    .cloned()
                    .ok_or_else(|| {
                        UsageError("connect requires an <addr> argument (see --help)".into())
                    })?;
                cfg.mode = Mode::Connect(addr);
                i = 2;
            }
            _ => {}
        }
        while i < args.len() {
            match args[i].as_str() {
                "--help" | "-h" => {
                    cfg.help = true;
                    return Ok(cfg);
                }
                "--script" => {
                    i += 1;
                    cfg.script = Some(require_value(args, i, "--script")?);
                }
                "--source" => {
                    i += 1;
                    cfg.source_dir = Some(require_value(args, i, "--source")?);
                }
                "--target" => {
                    i += 1;
                    cfg.target_spec = Some(require_value(args, i, "--target")?);
                }
                "--db-dir" => {
                    i += 1;
                    cfg.db_dir = Some(require_value(args, i, "--db-dir")?);
                }
                "--db-pool" => {
                    i += 1;
                    let value = require_value(args, i, "--db-pool")?;
                    match value.parse::<usize>() {
                        Ok(n) if n >= 1 => cfg.db_pool = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--db-pool expects a positive integer, got `{value}`"
                            )))
                        }
                    }
                }
                "--metrics" => {
                    i += 1;
                    cfg.metrics_path = Some(require_value(args, i, "--metrics")?);
                }
                "--cache-dir" => {
                    i += 1;
                    cfg.cache_dir = Some(require_value(args, i, "--cache-dir")?);
                }
                "--cache-policy" => {
                    i += 1;
                    let value = require_value(args, i, "--cache-policy")?;
                    match clio_incr::EvictionPolicy::parse(&value) {
                        Some(policy) => cfg.cache_policy = Some(policy),
                        None => {
                            return Err(UsageError(format!(
                                "--cache-policy expects `lru` or `cost`, got `{value}`"
                            )))
                        }
                    }
                }
                "--mapping" => {
                    i += 1;
                    cfg.mapping_file = Some(require_value(args, i, "--mapping")?);
                }
                "--trace" => cfg.trace = true,
                "--plan" => cfg.plan = true,
                "--no-cache" => cfg.no_cache = true,
                "--trace-filter" => {
                    i += 1;
                    cfg.trace_filter = Some(require_value(args, i, "--trace-filter")?);
                    cfg.trace = true;
                }
                "--trace-out" => {
                    i += 1;
                    cfg.trace_out = Some(require_value(args, i, "--trace-out")?);
                }
                "--slow-ms" => {
                    i += 1;
                    let value = require_value(args, i, "--slow-ms")?;
                    match value.parse::<u64>() {
                        Ok(n) if n >= 1 => cfg.slow_ms = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--slow-ms expects a positive integer (milliseconds), got `{value}`"
                            )))
                        }
                    }
                }
                "--threads" => {
                    i += 1;
                    let value = require_value(args, i, "--threads")?;
                    match value.parse::<usize>() {
                        Ok(n) if n >= 1 => cfg.threads = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--threads expects a positive integer, got `{value}`"
                            )))
                        }
                    }
                }
                "--port" => {
                    i += 1;
                    let value = require_value(args, i, "--port")?;
                    match value.parse::<u16>() {
                        Ok(n) => cfg.port = Some(n),
                        Err(_) => {
                            return Err(UsageError(format!(
                                "--port expects a port number (0-65535), got `{value}`"
                            )))
                        }
                    }
                }
                "--max-conns" => {
                    i += 1;
                    let value = require_value(args, i, "--max-conns")?;
                    match value.parse::<usize>() {
                        Ok(n) if n >= 1 => cfg.max_conns = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--max-conns expects a positive integer, got `{value}`"
                            )))
                        }
                    }
                }
                "--idle-ms" => {
                    i += 1;
                    let value = require_value(args, i, "--idle-ms")?;
                    match value.parse::<u64>() {
                        Ok(n) if n >= 1 => cfg.idle_ms = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--idle-ms expects a positive integer (milliseconds), got `{value}`"
                            )))
                        }
                    }
                }
                "--sessions" => {
                    i += 1;
                    let value = require_value(args, i, "--sessions")?;
                    match value.parse::<usize>() {
                        Ok(n) if n >= 1 => cfg.sessions_width = Some(n),
                        _ => {
                            return Err(UsageError(format!(
                                "--sessions expects a positive integer, got `{value}`"
                            )))
                        }
                    }
                }
                "--synthetic" => {
                    i += 1;
                    let spec = require_value(args, i, "--synthetic")?;
                    cfg.synthetic = Some(parse_synthetic(&spec)?);
                }
                other if other.starts_with('-') => {
                    return Err(UsageError(format!("unknown flag `{other}` (see --help)")));
                }
                path => cfg.batch_scripts.push(path.to_owned()),
            }
            i += 1;
        }
        Ok(cfg)
    }

    /// Resolve the serve-mode environment fallbacks (`CLIO_PORT`,
    /// `CLIO_MAX_CONNS`, `CLIO_IDLE_MS`) into any still-unset field.
    /// Flags win over the environment; a malformed environment value is
    /// a usage error (exit 2) exactly like its flag form. `get` is the
    /// environment lookup, injectable for tests.
    pub fn apply_net_env(
        &mut self,
        get: impl Fn(&str) -> Option<String>,
    ) -> Result<(), UsageError> {
        if self.port.is_none() {
            if let Some(value) = get("CLIO_PORT") {
                match value.parse::<u16>() {
                    Ok(n) => self.port = Some(n),
                    Err(_) => {
                        return Err(UsageError(format!(
                            "CLIO_PORT expects a port number (0-65535), got `{value}`"
                        )))
                    }
                }
            }
        }
        if self.max_conns.is_none() {
            if let Some(value) = get("CLIO_MAX_CONNS") {
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => self.max_conns = Some(n),
                    _ => {
                        return Err(UsageError(format!(
                            "CLIO_MAX_CONNS expects a positive integer, got `{value}`"
                        )))
                    }
                }
            }
        }
        if self.idle_ms.is_none() {
            if let Some(value) = get("CLIO_IDLE_MS") {
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => self.idle_ms = Some(n),
                    _ => {
                        return Err(UsageError(format!(
                            "CLIO_IDLE_MS expects a positive integer (milliseconds), got `{value}`"
                        )))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn defaults_and_positionals() {
        let cfg = CliConfig::parse(&argv(&["a.clio", "b.clio"])).unwrap();
        assert_eq!(cfg.batch_scripts, vec!["a.clio", "b.clio"]);
        assert!(!cfg.help && !cfg.trace && !cfg.no_cache);
        assert_eq!(cfg.script, None);
        assert_eq!(cfg.cache_dir, None);
    }

    #[test]
    fn flags_with_values() {
        let cfg = CliConfig::parse(&argv(&[
            "--script",
            "s.clio",
            "--metrics",
            "m.json",
            "--cache-dir",
            "/tmp/cc",
            "--cache-policy",
            "lru",
            "--threads",
            "3",
            "--sessions",
            "2",
            "--trace-filter",
            "fd.naive",
            "--trace-out",
            "t.jsonl",
            "--slow-ms",
            "25",
            "--db-dir",
            "/tmp/paged",
            "--db-pool",
            "8",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(cfg.script.as_deref(), Some("s.clio"));
        assert_eq!(cfg.db_dir.as_deref(), Some("/tmp/paged"));
        assert_eq!(cfg.db_pool, Some(8));
        assert_eq!(cfg.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(cfg.cache_dir.as_deref(), Some("/tmp/cc"));
        assert_eq!(cfg.cache_policy, Some(clio_incr::EvictionPolicy::Lru));
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.sessions_width, Some(2));
        assert_eq!(cfg.trace_filter.as_deref(), Some("fd.naive"));
        assert!(cfg.trace, "--trace-filter implies --trace");
        assert_eq!(cfg.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(cfg.slow_ms, Some(25));
        assert!(cfg.no_cache);
    }

    #[test]
    fn trace_out_collects_without_implying_the_tree() {
        let cfg = CliConfig::parse(&argv(&["--trace-out", "t.jsonl"])).unwrap();
        assert!(!cfg.trace, "--trace-out must not print the span tree");
        let cfg = CliConfig::parse(&argv(&["--metrics", "-"])).unwrap();
        assert_eq!(cfg.metrics_path.as_deref(), Some("-"), "stdout sentinel");
    }

    #[test]
    fn help_stops_parsing() {
        let cfg = CliConfig::parse(&argv(&["--help", "--threads", "zero"])).unwrap();
        assert!(cfg.help, "nothing after --help is validated");
        let cfg = CliConfig::parse(&argv(&["-h"])).unwrap();
        assert!(cfg.help);
    }

    #[test]
    fn error_messages_are_the_binary_stderr_lines() {
        let err = |words: &[&str]| CliConfig::parse(&argv(words)).unwrap_err().to_string();
        assert_eq!(err(&["--script"]), "--script requires a value (see --help)");
        assert_eq!(
            err(&["--cache-dir"]),
            "--cache-dir requires a value (see --help)"
        );
        assert_eq!(
            err(&["--cache-policy"]),
            "--cache-policy requires a value (see --help)"
        );
        assert_eq!(
            err(&["--cache-policy", "mru"]),
            "--cache-policy expects `lru` or `cost`, got `mru`"
        );
        assert_eq!(
            err(&["--threads", "0"]),
            "--threads expects a positive integer, got `0`"
        );
        assert_eq!(err(&["--db-dir"]), "--db-dir requires a value (see --help)");
        assert_eq!(
            err(&["--db-pool", "0"]),
            "--db-pool expects a positive integer, got `0`"
        );
        assert_eq!(
            err(&["--db-pool", "x"]),
            "--db-pool expects a positive integer, got `x`"
        );
        assert_eq!(
            err(&["--sessions", "x"]),
            "--sessions expects a positive integer, got `x`"
        );
        assert_eq!(
            err(&["--trace-out"]),
            "--trace-out requires a value (see --help)"
        );
        assert_eq!(
            err(&["--slow-ms", "0"]),
            "--slow-ms expects a positive integer (milliseconds), got `0`"
        );
        assert_eq!(
            err(&["--mapping"]),
            "--mapping requires a value (see --help)"
        );
        assert_eq!(err(&["--wat"]), "unknown flag `--wat` (see --help)");
        assert_eq!(
            err(&["--synthetic", "chain,4"]),
            "expected --synthetic <topology>,<relations>,<rows>"
        );
        assert_eq!(
            err(&["--synthetic", "blob,4,10"]),
            "unknown topology `blob`"
        );
        assert!(err(&["--synthetic", "chain,x,10"]).starts_with("bad relation count: "));
        assert!(err(&["--synthetic", "chain,4,x"]).starts_with("bad row count: "));
    }

    #[test]
    fn mode_subcommands_parse_only_in_first_position() {
        let cfg =
            CliConfig::parse(&argv(&["serve", "--port", "9090", "--max-conns", "8"])).unwrap();
        assert_eq!(cfg.mode, Mode::Serve);
        assert_eq!(cfg.port, Some(9090));
        assert_eq!(cfg.max_conns, Some(8));
        let cfg = CliConfig::parse(&argv(&["connect", "127.0.0.1:9090"])).unwrap();
        assert_eq!(cfg.mode, Mode::Connect("127.0.0.1:9090".into()));
        // Elsewhere, `serve` is just a positional script path.
        let cfg = CliConfig::parse(&argv(&["a.clio", "serve"])).unwrap();
        assert_eq!(cfg.mode, Mode::Local);
        assert_eq!(cfg.batch_scripts, vec!["a.clio", "serve"]);
    }

    #[test]
    fn net_flag_errors_are_the_binary_stderr_lines() {
        let err = |words: &[&str]| CliConfig::parse(&argv(words)).unwrap_err().to_string();
        assert_eq!(
            err(&["connect"]),
            "connect requires an <addr> argument (see --help)"
        );
        assert_eq!(
            err(&["connect", "--script"]),
            "connect requires an <addr> argument (see --help)"
        );
        assert_eq!(
            err(&["serve", "--port", "nope"]),
            "--port expects a port number (0-65535), got `nope`"
        );
        assert_eq!(
            err(&["serve", "--port", "70000"]),
            "--port expects a port number (0-65535), got `70000`"
        );
        assert_eq!(
            err(&["serve", "--port"]),
            "--port requires a value (see --help)"
        );
        assert_eq!(
            err(&["serve", "--max-conns", "0"]),
            "--max-conns expects a positive integer, got `0`"
        );
        assert_eq!(
            err(&["serve", "--idle-ms", "-5"]),
            "--idle-ms expects a positive integer (milliseconds), got `-5`"
        );
    }

    #[test]
    fn net_env_fallbacks_fill_unset_fields_and_validate() {
        let mut cfg = CliConfig::parse(&argv(&["serve", "--port", "7070"])).unwrap();
        cfg.apply_net_env(|key| match key {
            "CLIO_PORT" => Some("1234".into()),
            "CLIO_MAX_CONNS" => Some("6".into()),
            "CLIO_IDLE_MS" => Some("500".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(cfg.port, Some(7070), "the flag wins over the environment");
        assert_eq!(cfg.max_conns, Some(6));
        assert_eq!(cfg.idle_ms, Some(500));

        let mut cfg = CliConfig::parse(&argv(&["serve"])).unwrap();
        let err = cfg
            .apply_net_env(|key| (key == "CLIO_PORT").then(|| "abc".into()))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "CLIO_PORT expects a port number (0-65535), got `abc`"
        );
        let err = cfg
            .apply_net_env(|key| (key == "CLIO_MAX_CONNS").then(|| "0".into()))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "CLIO_MAX_CONNS expects a positive integer, got `0`"
        );
        let err = cfg
            .apply_net_env(|key| (key == "CLIO_IDLE_MS").then(|| "x".into()))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "CLIO_IDLE_MS expects a positive integer (milliseconds), got `x`"
        );
    }

    #[test]
    fn mapping_and_plan_flags() {
        let cfg = CliConfig::parse(&argv(&["--mapping", "demo.map", "--plan"])).unwrap();
        assert_eq!(cfg.mapping_file.as_deref(), Some("demo.map"));
        assert!(cfg.plan);
        let cfg = CliConfig::parse(&argv(&[])).unwrap();
        assert_eq!(cfg.mapping_file, None);
        assert!(!cfg.plan, "planner routing is opt-in");
    }

    #[test]
    fn synthetic_spec_is_validated_and_typed() {
        let cfg = CliConfig::parse(&argv(&["--synthetic", "star,5,20"])).unwrap();
        let spec = cfg.synthetic.expect("spec");
        assert_eq!(spec.relations, 5);
        assert_eq!(spec.rows, 20);
    }
}
