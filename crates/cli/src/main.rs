//! `clio` — an interactive mapping-refinement shell over the Clio
//! reproduction.
//!
//! ```sh
//! cargo run -p clio-cli                       # paper dataset, interactive
//! cargo run -p clio-cli -- --script cmds.txt  # run a command script
//! cargo run -p clio-cli -- --synthetic chain,4,100
//! cargo run -p clio-cli -- --source data/ --target "T (id str not null, x str)"
//! cargo run -p clio-cli -- --script cmds.txt --metrics out.json --trace
//! cargo run -p clio-cli -- --sessions 4 a.clio b.clio c.clio d.clio
//! cargo run -p clio-cli -- --script cmds.txt --cache-dir .clio-cache
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;

use clio_cli::config::{CliConfig, Mode, DEFAULT_DB_POOL};
use clio_cli::engine::{Outcome, Shell};
use clio_core::session::Session;
use clio_core::session_pool::SessionPool;
use clio_datagen::paper::{kids_target, paper_database};
use clio_datagen::synthetic::{generate, SyntheticSpec};
use clio_incr::CacheStore;
use clio_relational::database::Database;
use clio_relational::schema::RelSchema;

/// Generate a synthetic source from a validated spec, re-declaring the
/// generated edges as foreign keys so walks are possible.
fn synthetic_source(spec: SyntheticSpec) -> (Database, RelSchema) {
    let w = generate(&spec);
    let mut db = w.db;
    db.constraints = clio_relational::constraints::Constraints::none();
    for s in w.knowledge.specs() {
        db.constraints
            .foreign_keys
            .push(clio_relational::constraints::ForeignKey {
                from_relation: s.rel_a.clone(),
                from_attrs: s.attr_pairs.iter().map(|(a, _)| a.clone()).collect(),
                to_relation: s.rel_b.clone(),
                to_attrs: s.attr_pairs.iter().map(|(_, b)| b.clone()).collect(),
            });
    }
    (db, w.target)
}

/// Execute script files as concurrent sessions over one shared source
/// snapshot, printing each session's output (in input order) framed by a
/// `=== session <i>: <path> ===` header. Each session's body is
/// byte-identical to what `--script <path>` would print for the same
/// source: scripts are read upfront (first unreadable file by input
/// order exits 2), sessions run on the pool, and outputs are buffered
/// per session and merged deterministically.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    db: Database,
    target: RelSchema,
    scripts: &[String],
    width: usize,
    no_cache: bool,
    cache_policy: Option<clio_incr::EvictionPolicy>,
    plan: bool,
    store: Option<Arc<dyn CacheStore>>,
) {
    let mut bodies: Vec<String> = Vec::new();
    for path in scripts {
        match std::fs::read_to_string(path) {
            Ok(text) => bodies.push(text),
            Err(e) => {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut pool = SessionPool::new(db, target).with_width(width);
    if let Some(store) = store {
        pool = pool.with_store(store);
    }
    pool.set_cache_enabled(!no_cache);
    if let Some(policy) = cache_policy {
        pool.set_cache_policy(policy);
    }
    pool.set_plan_enabled(plan);
    let outputs = pool.run(bodies.len(), |i, session| {
        let mut shell = Shell::new(session);
        let mut out = String::new();
        for line in bodies[i].lines() {
            out.push_str("clio> ");
            out.push_str(line);
            out.push('\n');
            match shell.execute(line) {
                Outcome::Continue(text) => out.push_str(&text),
                Outcome::Quit => break,
            }
        }
        out
    });
    for (i, (path, text)) in scripts.iter().zip(&outputs).enumerate() {
        println!("=== session {i}: {path} ===");
        print!("{text}");
    }
}

/// Usage text printed by `--help` (flags first, then the shell commands).
fn usage() -> String {
    format!(
        "\
clio — interactive mapping-refinement shell (Clio, SIGMOD 2001)

usage: clio-shell [flags] [script.clio ...]
       clio-shell serve [flags]
       clio-shell connect <addr> [--script <file>]

Positional arguments are script files executed as independent sessions
over one shared source snapshot (batch mode); outputs are printed in
input order, each framed by a `=== session <i>: <path> ===` header.

`serve` listens for framed TCP clients on 127.0.0.1 and runs every
connection as a private session over one shared snapshot and cache
store; `connect` replays --script (or stdin) lines against a running
server, printing byte-identical output to a local --script run (see
docs/service.md). A client sending `shutdown` stops the server.

flags:
  --script <file>        run commands from a script instead of stdin
  --sessions <n>         batch mode: run the positional scripts up to
                         <n> at a time as concurrent sessions (default
                         1; requires script arguments, conflicts with
                         --script)
  --source <dir>         load a source database from CSV files (needs --target)
  --target <schema>      target schema, e.g. \"Kids (ID str not null, name str)\"
  --synthetic <spec>     generate a source: <topology>,<relations>,<rows>
                         (topology: chain | star | cycle | tree)
  --mapping <file>       load a MAP-language statement (see docs/planner.md)
                         as the initial workspace before reading commands
                         (single-session local mode only)
  --plan                 route mapping evaluation through the planner —
                         filter pushdown plus warmth-ordered subgraphs;
                         output is byte-identical to the definitional
                         path (see docs/planner.md and `explain`)
  --db-dir <dir>         open a paged source database written by `db save`
                         (relations stream through a buffer pool instead of
                         loading upfront; see docs/storage.md); the target
                         comes from --target or the directory's _target.txt
  --db-pool <pages>      buffer-pool page budget for --db-dir (default 64)
  --metrics <file>       collect work counters; write a JSON report on exit
                         (`-` writes the report to stdout after the shell
                         output)
  --trace                collect spans; print the span tree on exit
  --trace-filter <name>  like --trace, but only print subtrees whose span
                         name contains <name> (e.g. fd.naive)
  --trace-out <file>     collect spans; export completed spans as Chrome
                         trace-event JSONL (load in chrome://tracing or
                         Perfetto; see docs/observability.md, Timing)
  --slow-ms <n>          collect spans; warn on stderr whenever a span
                         takes at least <n> milliseconds (environment
                         fallback: CLIO_SLOW_MS)
  --threads <n>          worker threads for parallel evaluation
                         (default: CLIO_THREADS or the hardware)
  --no-cache             disable the incremental evaluation cache; every
                         operator recomputes from scratch (see
                         docs/incremental.md)
  --cache-dir <path>     persist eligible cache entries under <path> and
                         serve misses from it across runs (see
                         docs/incremental.md, Persistence)
  --cache-policy <p>     eviction policy under capacity pressure: `cost`
                         (recompute-cost-weighted, the default) or `lru`
                         (see docs/incremental.md, Eviction policy)
  --port <n>             serve: TCP port to listen on (default 0 = an
                         ephemeral port, announced as `listening on
                         <addr>`; fallback: CLIO_PORT)
  --max-conns <n>        serve: concurrent-connection cap; excess
                         connections wait in the accept backlog
                         (default: the --threads width; fallback:
                         CLIO_MAX_CONNS)
  --idle-ms <n>          serve: close a connection when no request
                         arrives within <n> milliseconds (default
                         30000; fallback: CLIO_IDLE_MS)
  --help, -h             show this help

{}",
        clio_cli::command::help_text()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = match CliConfig::parse(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if cfg.help {
        print!("{}", usage());
        return;
    }

    // Mode strictness: the networking knobs belong to `serve`, and the
    // local batch/script machinery has no meaning on a socket.
    if cfg.mode != Mode::Serve {
        for (given, flag) in [
            (cfg.port.is_some(), "--port"),
            (cfg.max_conns.is_some(), "--max-conns"),
            (cfg.idle_ms.is_some(), "--idle-ms"),
        ] {
            if given {
                eprintln!("{flag} requires serve mode (see --help)");
                std::process::exit(2);
            }
        }
    }
    if cfg.mode != Mode::Local {
        let mode_word = if cfg.mode == Mode::Serve {
            "serve"
        } else {
            "connect"
        };
        if cfg.mapping_file.is_some() {
            eprintln!("--mapping requires local mode (use `map load` over the wire; see --help)");
            std::process::exit(2);
        }
        if matches!(cfg.mode, Mode::Connect(_)) && cfg.plan {
            eprintln!("--plan applies to the evaluating side; pass it to `serve` (see --help)");
            std::process::exit(2);
        }
        if !cfg.batch_scripts.is_empty() {
            eprintln!("{mode_word} mode takes no positional script arguments (see --help)");
            std::process::exit(2);
        }
        if cfg.sessions_width.is_some() {
            eprintln!("--sessions conflicts with {mode_word} mode (see --help)");
            std::process::exit(2);
        }
    }
    if cfg.mode == Mode::Serve {
        if cfg.script.is_some() {
            eprintln!("--script conflicts with serve mode (see --help)");
            std::process::exit(2);
        }
        if let Err(e) = cfg.apply_net_env(|key| std::env::var(key).ok()) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    if let Some(n) = cfg.threads {
        clio_relational::exec::set_threads(n);
    }
    if cfg.metrics_path.is_some() {
        clio_obs::set_metrics_enabled(true);
    }
    let slow_ms = cfg.slow_ms.or_else(|| {
        std::env::var("CLIO_SLOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|n| *n > 0)
    });
    if let Some(ms) = slow_ms {
        clio_obs::set_slow_threshold_ns(ms.saturating_mul(1_000_000));
    }
    // Timing (histograms, the event ring, slow-span checks) rides on the
    // span machinery, so any of the three timing flags enables tracing.
    if cfg.trace || cfg.trace_out.is_some() || slow_ms.is_some() {
        clio_obs::set_trace_enabled(true);
    }

    if let Mode::Connect(addr) = &cfg.mode {
        clio_cli::serve::run_client(addr, cfg.script.as_deref());
        finish_reports(&cfg);
        return;
    }

    let mut source = cfg.synthetic.map(synthetic_source);
    if let Some(dir) = &cfg.source_dir {
        let db = match clio_relational::csv::read_database(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot load `{dir}`: {e}");
                std::process::exit(2);
            }
        };
        let target = match &cfg.target_spec {
            Some(spec) => match clio_core::script::parse_target_schema(spec) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bad --target: {e}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("--source requires --target \"Name (attr type, ...)\"");
                std::process::exit(2);
            }
        };
        source = Some((db, target));
    }
    if cfg.db_pool.is_some() && cfg.db_dir.is_none() {
        eprintln!("--db-pool requires --db-dir (see --help)");
        std::process::exit(2);
    }
    if let Some(dir) = &cfg.db_dir {
        if cfg.source_dir.is_some() {
            eprintln!("--db-dir conflicts with --source (see --help)");
            std::process::exit(2);
        }
        if cfg.synthetic.is_some() {
            eprintln!("--db-dir conflicts with --synthetic (see --help)");
            std::process::exit(2);
        }
        let pool = cfg.db_pool.unwrap_or(DEFAULT_DB_POOL);
        let db = match clio_relational::storage::open_paged(std::path::Path::new(dir), pool) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot load `{dir}`: {e}");
                std::process::exit(2);
            }
        };
        // --target wins; otherwise the directory's own `_target.txt`
        // (written by `db save`) names the target schema.
        let spec = match &cfg.target_spec {
            Some(spec) => spec.clone(),
            None => {
                let path = std::path::Path::new(dir).join("_target.txt");
                match std::fs::read_to_string(&path) {
                    Ok(text) => text.trim().to_owned(),
                    Err(_) => {
                        eprintln!("--db-dir requires --target or a `_target.txt` in the directory");
                        std::process::exit(2);
                    }
                }
            }
        };
        let target = match clio_core::script::parse_target_schema(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad --target: {e}");
                std::process::exit(2);
            }
        };
        source = Some((db, target));
    }

    let (db, target) = source.unwrap_or_else(|| (paper_database(), kids_target()));

    // The on-disk store is namespaced by a digest of the source, so one
    // --cache-dir can serve many databases without cross-talk.
    let store: Option<Arc<dyn CacheStore>> = cfg.cache_dir.as_ref().map(|dir| {
        Arc::new(clio_incr::DiskStore::open(
            std::path::Path::new(dir),
            clio_incr::database_digest(&db),
        )) as Arc<dyn CacheStore>
    });

    if cfg.mode == Mode::Serve {
        if let Err(e) = clio_cli::serve::run_server(&cfg, db, target, store) {
            eprintln!("cannot serve: {e}");
            std::process::exit(2);
        }
        finish_reports(&cfg);
        return;
    }

    if !cfg.batch_scripts.is_empty() {
        if cfg.script.is_some() {
            eprintln!("--script conflicts with positional script arguments (see --help)");
            std::process::exit(2);
        }
        if cfg.mapping_file.is_some() {
            eprintln!("--mapping conflicts with positional script arguments (see --help)");
            std::process::exit(2);
        }
        let width = cfg.sessions_width.unwrap_or(1);
        run_batch(
            db,
            target,
            &cfg.batch_scripts,
            width,
            cfg.no_cache,
            cfg.cache_policy,
            cfg.plan,
            store,
        );
        finish_reports(&cfg);
        return;
    }
    if cfg.sessions_width.is_some() {
        eprintln!("--sessions requires positional script arguments (see --help)");
        std::process::exit(2);
    }

    let mut session = Session::new(db, target);
    if cfg.no_cache {
        session.set_cache_enabled(false);
    }
    if let Some(policy) = cfg.cache_policy {
        session.set_cache_policy(policy);
    }
    if let Some(store) = store {
        session.attach_store(store);
    }
    session.set_plan_enabled(cfg.plan);
    if let Some(path) = &cfg.mapping_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(2);
            }
        };
        let mapping = match clio_lang::parse_map(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("bad --mapping: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = session.adopt_mapping(mapping, &format!("loaded from {path}")) {
            eprintln!("bad --mapping: {e}");
            std::process::exit(2);
        }
    }
    let mut shell = Shell::new(session);

    let stdin;
    let file;
    let reader: Box<dyn BufRead> = match &cfg.script {
        Some(path) => {
            file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open `{path}`: {e}");
                std::process::exit(2);
            });
            Box::new(std::io::BufReader::new(file))
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };

    let interactive = cfg.script.is_none();
    if interactive {
        println!("clio mapping shell — type `help` for commands");
    }
    let mut out = std::io::stdout();
    if interactive {
        print!("clio> ");
        out.flush().ok();
    }
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if cfg.script.is_some() {
            println!("clio> {line}");
        }
        match shell.execute(&line) {
            Outcome::Continue(text) => {
                print!("{text}");
            }
            Outcome::Quit => break,
        }
        if interactive {
            print!("clio> ");
            out.flush().ok();
        }
    }

    finish_reports(&cfg);
}

/// Exit-time reporting, in a fixed order: the metrics JSON report
/// (`--metrics`, where `-` means stdout), the span tree (`--trace` /
/// `--trace-filter`), the Chrome trace-event JSONL export
/// (`--trace-out`), and finally any rate-limited-warning summary on
/// stderr. A report that cannot be written exits 2.
fn finish_reports(cfg: &CliConfig) {
    if let Some(path) = cfg.metrics_path.as_deref() {
        let report = clio_obs::report_json();
        if path == "-" {
            print!("{report}");
        } else if let Err(e) = std::fs::write(path, &report) {
            eprintln!("cannot write metrics to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if cfg.trace {
        let records = clio_obs::snapshot_spans();
        if records.is_empty() {
            println!("trace: no spans recorded");
        } else {
            let filter = cfg.trace_filter.as_deref().unwrap_or("");
            print!(
                "{}",
                clio_obs::trace::render_tree_filtered(&records, filter)
            );
        }
    }
    if let Some(path) = cfg.trace_out.as_deref() {
        let (events, dropped) = clio_obs::take_events();
        let jsonl = clio_obs::chrome_trace_jsonl(&events);
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write trace events to `{path}`: {e}");
            std::process::exit(2);
        }
        if dropped > 0 {
            eprintln!("clio: trace ring overflowed; {dropped} oldest span event(s) dropped");
        }
    }
    if let Some(summary) = clio_obs::warn_summary() {
        eprint!("{summary}");
    }
}
