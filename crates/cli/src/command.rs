//! The shell's typed command language: one [`Command`] per line.
//!
//! [`parse`] turns a raw input line into a [`Command`] (or a
//! [`ParseError`] carrying the exact message the shell prints), and the
//! [`command_specs`] table drives both the parser's vocabulary and the
//! `help` text ([`help_text`]) — a command cannot ship undocumented,
//! because the help is generated from the same table the tests check
//! the parser against. Multi-word command families (`cache …`, `db …`,
//! `map …`) are each one typed [`SubcommandSpec`] table: the same
//! entry carries the help line *and* the argument parser, and the
//! generic `parse_family` dispatcher produces uniform `unknown
//! … subcommand` errors. [`Shell`](crate::engine::Shell) dispatches
//! exhaustively on the enum, so adding a variant without wiring it up
//! is a compile error.

use std::fmt;

/// One entry of the command table: a usage line plus description lines
/// for `help`.
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Usage column, e.g. `"corr <expr> -> <attr>"`. The first word is
    /// the command keyword.
    pub usage: &'static str,
    /// Description lines (empty for self-explanatory commands).
    pub description: &'static [&'static str],
}

/// One typed subcommand of a command family (`cache …`, `db …`,
/// `map …`): the entry that appears in `help` plus the parser for the
/// subcommand's argument tail. Keeping both in one row means a family
/// subcommand cannot be parsed without being documented, or vice versa.
pub struct SubcommandSpec<A: 'static> {
    /// Usage column, e.g. `"cache limit <bytes>"`: the first word is
    /// the family keyword, the second (when not an argument
    /// placeholder) the subcommand name.
    pub usage: &'static str,
    /// Description lines for `help`.
    pub description: &'static [&'static str],
    /// Parse the (trimmed) argument tail into the family's action.
    pub parse: fn(&str) -> Result<A, ParseError>,
}

impl<A> SubcommandSpec<A> {
    /// The subcommand name: the second word of the usage line, or `""`
    /// for the family's bare form (`cache`, `db`).
    fn name(&self) -> &'static str {
        let mut words = self.usage.split(' ');
        let _family = words.next();
        match words.next() {
            Some(w) if !w.starts_with('<') && !w.starts_with('[') => w,
            _ => "",
        }
    }

    /// This row's `help` entry.
    fn spec(&self) -> CommandSpec {
        CommandSpec {
            usage: self.usage,
            description: self.description,
        }
    }
}

/// Dispatch `rest` (everything after the family keyword) against a
/// subcommand table: split off the subcommand word, find its row, and
/// run the row's argument parser. Unknown subcommands get the uniform
/// ``unknown {family} subcommand `{sub}` (try `help`)`` error; a bare
/// family word with no bare-form row gets a usage line listing the
/// subcommand names.
fn parse_family<A>(
    family: &'static str,
    table: &'static [SubcommandSpec<A>],
    rest: &str,
) -> Result<A, ParseError> {
    let (sub, arg) = rest.split_once(' ').unwrap_or((rest, ""));
    let arg = arg.trim();
    if let Some(spec) = table.iter().find(|s| s.name() == sub) {
        return (spec.parse)(arg);
    }
    if sub.is_empty() {
        let names: Vec<&str> = table
            .iter()
            .map(SubcommandSpec::name)
            .filter(|n| !n.is_empty())
            .collect();
        return err(format!("usage: {family} <{}>", names.join("|")));
    }
    err(format!("unknown {family} subcommand `{sub}` (try `help`)"))
}

/// The `cache` family: one row per subcommand, driving parser and help.
pub static CACHE_SUBCOMMANDS: &[SubcommandSpec<CacheAction>] = &[
    SubcommandSpec {
        usage: "cache",
        description: &["incremental-cache statistics (see", "docs/incremental.md)"],
        parse: |_| Ok(CacheAction::Stats),
    },
    SubcommandSpec {
        usage: "cache save [<dir>]",
        description: &[
            "spill cached tables to the attached",
            "store (--cache-dir) or to <dir>",
        ],
        parse: |arg| Ok(CacheAction::Save(opt_arg(arg))),
    },
    SubcommandSpec {
        usage: "cache load [<dir>]",
        description: &[
            "pre-warm the cache from the attached",
            "store (--cache-dir) or from <dir>",
        ],
        parse: |arg| Ok(CacheAction::Load(opt_arg(arg))),
    },
    SubcommandSpec {
        usage: "cache clear",
        description: &["drop every resident cache entry"],
        parse: |_| Ok(CacheAction::Clear),
    },
    SubcommandSpec {
        usage: "cache limit <bytes>",
        description: &["set the cache's eviction byte budget"],
        parse: |arg| {
            if arg.is_empty() {
                return err("usage: cache limit <bytes>");
            }
            let bytes = arg
                .parse()
                .map_err(|_| ParseError(format!("expected a byte budget, got `{arg}`")))?;
            Ok(CacheAction::Limit(bytes))
        },
    },
    SubcommandSpec {
        usage: "cache policy [lru|cost]",
        description: &["show or switch the eviction policy"],
        parse: |arg| {
            if arg.is_empty() {
                return Ok(CacheAction::Policy(None));
            }
            let policy = clio_incr::EvictionPolicy::parse(arg)
                .ok_or_else(|| ParseError(format!("expected a policy (lru|cost), got `{arg}`")))?;
            Ok(CacheAction::Policy(Some(policy)))
        },
    },
];

/// The `db` family.
pub static DB_SUBCOMMANDS: &[SubcommandSpec<DbAction>] = &[
    SubcommandSpec {
        usage: "db",
        description: &["storage-backend statistics (see", "docs/storage.md)"],
        parse: |_| Ok(DbAction::Stats),
    },
    SubcommandSpec {
        usage: "db save <dir>",
        description: &["write the source database as a paged", "on-disk directory"],
        parse: |arg| {
            if arg.is_empty() {
                return err("usage: db save <dir>");
            }
            Ok(DbAction::Save(arg.to_owned()))
        },
    },
    SubcommandSpec {
        usage: "db load <dir>",
        description: &[
            "restart the session over a paged",
            "database (also: clio --db-dir)",
        ],
        parse: |arg| {
            if arg.is_empty() {
                return err("usage: db load <dir>");
            }
            Ok(DbAction::Load(arg.to_owned()))
        },
    },
];

/// The `map` family: the MAP statement language (docs/planner.md).
pub static MAP_SUBCOMMANDS: &[SubcommandSpec<MapAction>] = &[
    SubcommandSpec {
        usage: "map load <file>",
        description: &[
            "load a MAP-language statement as a new",
            "workspace (see docs/planner.md)",
        ],
        parse: |arg| {
            if arg.is_empty() {
                return err("usage: map load <file>");
            }
            Ok(MapAction::Load(arg.to_owned()))
        },
    },
    SubcommandSpec {
        usage: "map show",
        description: &["print the active mapping as a MAP", "statement"],
        parse: |_| Ok(MapAction::Show),
    },
];

fn opt_arg(arg: &str) -> Option<String> {
    if arg.is_empty() {
        None
    } else {
        Some(arg.to_owned())
    }
}

/// Standalone commands listed before the subcommand families, in
/// `help` order.
const COMMANDS_HEAD: &[CommandSpec] = &[
    CommandSpec {
        usage: "source",
        description: &["show the source schema and constraints"],
    },
    CommandSpec {
        usage: "show <relation>",
        description: &["print a source relation"],
    },
    CommandSpec {
        usage: "target",
        description: &["WYSIWYG preview of the target"],
    },
    CommandSpec {
        usage: "corr <expr> -> <attr>",
        description: &["add a value correspondence (may spawn scenarios)"],
    },
    CommandSpec {
        usage: "walk [<start>] <relation>",
        description: &["link a relation via schema knowledge"],
    },
    CommandSpec {
        usage: "chase <alias>.<attr> <val>",
        description: &["chase a value through the database"],
    },
    CommandSpec {
        usage: "workspaces",
        description: &["list mapping alternatives (* = active)"],
    },
    CommandSpec {
        usage: "activate|confirm|delete <id>",
        description: &[],
    },
    CommandSpec {
        usage: "accept",
        description: &["accept the active mapping for the target"],
    },
    CommandSpec {
        usage: "illustration",
        description: &["show the active mapping's illustration"],
    },
    CommandSpec {
        usage: "induced",
        description: &["the target tuples the illustration induces"],
    },
    CommandSpec {
        usage: "alternatives <slot>",
        description: &["other examples that could fill a slot"],
    },
    CommandSpec {
        usage: "swap <slot> <alt>",
        description: &["replace an illustration example"],
    },
    CommandSpec {
        usage: "examples",
        description: &["show ALL examples of the active mapping"],
    },
    CommandSpec {
        usage: "mapping",
        description: &["print the active mapping"],
    },
    CommandSpec {
        usage: "sql",
        description: &["generate SQL for the active mapping"],
    },
    CommandSpec {
        usage: "filter source|target <pred>",
        description: &["add a data-trimming filter"],
    },
    CommandSpec {
        usage: "require <attr>",
        description: &["make a target attribute required"],
    },
    CommandSpec {
        usage: "status",
        description: &["session summary"],
    },
    CommandSpec {
        usage: "stats [reset|<operation>]",
        description: &[
            "engine work counters, optionally filtered",
            "by name, e.g. `stats chase` (see",
            "docs/observability.md)",
        ],
    },
    CommandSpec {
        usage: "trace [<name>]",
        description: &[
            "live span tree so far, optionally filtered",
            "by span name (requires --trace or",
            "--trace-filter)",
        ],
    },
];

/// Standalone commands listed after the subcommand families, in
/// `help` order.
const COMMANDS_TAIL: &[CommandSpec] = &[
    CommandSpec {
        usage: "profile",
        description: &["per-attribute statistics of the source"],
    },
    CommandSpec {
        usage: "profile spans [<n>]",
        description: &[
            "top-n spans by self time with latency",
            "percentiles (requires --trace,",
            "--trace-out, or --slow-ms)",
        ],
    },
    CommandSpec {
        usage: "mine [containment]",
        description: &["mine join candidates from the data"],
    },
    CommandSpec {
        usage: "verify [key,attrs]",
        description: &["data-driven mapping diagnostics"],
    },
    CommandSpec {
        usage: "contributions",
        description: &["per-accepted-mapping contribution report"],
    },
    CommandSpec {
        usage: "save <file> / load <file>",
        description: &["persist the active mapping as a script"],
    },
    CommandSpec {
        usage: "explain",
        description: &[
            "evaluation plan of the active mapping",
            "(see docs/planner.md)",
        ],
    },
    CommandSpec {
        usage: "quit",
        description: &[],
    },
];

/// Every shell command's `help` entry, in `help` order: the standalone
/// commands plus one entry per row of the `cache`/`db`/`map`
/// subcommand tables — the same rows the parser dispatches on, so help
/// and parser cannot drift apart.
#[must_use]
pub fn command_specs() -> Vec<CommandSpec> {
    let mut out = Vec::new();
    out.extend_from_slice(COMMANDS_HEAD);
    out.extend(CACHE_SUBCOMMANDS.iter().map(SubcommandSpec::spec));
    out.extend(DB_SUBCOMMANDS.iter().map(SubcommandSpec::spec));
    out.extend(MAP_SUBCOMMANDS.iter().map(SubcommandSpec::spec));
    out.extend_from_slice(COMMANDS_TAIL);
    out
}

/// The `help` text, generated from [`command_specs`]: usage column at
/// character 2, description column at character 30, continuation lines
/// indented to the description column.
#[must_use]
pub fn help_text() -> String {
    let mut out = String::from("commands:\n");
    for spec in command_specs() {
        out.push_str("  ");
        out.push_str(spec.usage);
        for (i, line) in spec.description.iter().enumerate() {
            if i == 0 {
                let pad = 30usize.saturating_sub(2 + spec.usage.len()).max(1);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push('\n');
                out.push_str(&" ".repeat(30));
            }
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Which side a `filter` applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Trim the source data feeding the mapping.
    Source,
    /// Trim the produced target tuples.
    Target,
}

/// The `stats` subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsAction {
    /// `stats reset` — zero every counter.
    Reset,
    /// `stats [<operation>]` — render counters whose dotted name
    /// contains the filter (empty filter = all).
    Show(String),
}

/// The `cache` subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheAction {
    /// `cache` — print cache (and attached-store) statistics.
    Stats,
    /// `cache save [<dir>]` — spill resident entries to the attached
    /// store, or to an ad-hoc disk store over `<dir>`.
    Save(Option<String>),
    /// `cache load [<dir>]` — pre-warm the cache from the attached
    /// store, or from an ad-hoc disk store over `<dir>`.
    Load(Option<String>),
    /// `cache clear` — drop every resident entry.
    Clear,
    /// `cache limit <bytes>` — set the eviction byte budget at runtime.
    Limit(usize),
    /// `cache policy [lru|cost]` — show (`None`) or switch (`Some`)
    /// the eviction policy at runtime.
    Policy(Option<clio_incr::EvictionPolicy>),
}

/// The `db` subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbAction {
    /// `db` — print storage-backend statistics.
    Stats,
    /// `db save <dir>` — write the source database as a paged on-disk
    /// directory under `<dir>`.
    Save(String),
    /// `db load <dir>` — restart the session over the paged database
    /// at `<dir>`.
    Load(String),
}

/// The `map` subcommands (the MAP statement language).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapAction {
    /// `map load <file>` — parse a MAP-language statement file and
    /// adopt it as a new workspace.
    Load(String),
    /// `map show` — print the active mapping as a MAP statement.
    Show,
}

/// One parsed shell command. Field-free variants read the session;
/// fields carry everything dispatch needs, already validated as far as
/// parsing alone can.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// A blank or `#`-comment line: print nothing, keep going.
    Noop,
    /// `quit` / `exit`.
    Quit,
    /// `help`.
    Help,
    /// `source`.
    Source,
    /// `show <relation>`.
    Show {
        /// Relation to print.
        relation: String,
    },
    /// `target`.
    Target,
    /// `corr <expr> -> <attr>`.
    Corr {
        /// Source-side expression.
        expr: String,
        /// Target attribute.
        attr: String,
    },
    /// `walk [<start>] <relation>`.
    Walk {
        /// Optional start relation.
        start: Option<String>,
        /// Relation to link.
        relation: String,
    },
    /// `chase <alias>.<attr> <value>`.
    Chase {
        /// Node alias to chase from.
        alias: String,
        /// Attribute at the alias.
        attr: String,
        /// Value to chase.
        value: String,
    },
    /// `workspaces`.
    Workspaces,
    /// `activate <id>`.
    Activate {
        /// Workspace id.
        id: usize,
    },
    /// `confirm <id>`.
    Confirm {
        /// Workspace id.
        id: usize,
    },
    /// `delete <id>`.
    Delete {
        /// Workspace id.
        id: usize,
    },
    /// `accept`.
    Accept,
    /// `illustration`.
    Illustration,
    /// `induced`.
    Induced,
    /// `alternatives <slot>`.
    Alternatives {
        /// Illustration slot.
        slot: usize,
    },
    /// `swap <slot> <alt>`.
    Swap {
        /// Illustration slot.
        slot: usize,
        /// Alternative index.
        alt: usize,
    },
    /// `examples`.
    Examples,
    /// `mapping`.
    Mapping,
    /// `sql`.
    Sql,
    /// `filter source|target <pred>`.
    Filter {
        /// Which side the filter trims.
        kind: FilterKind,
        /// Predicate text.
        predicate: String,
    },
    /// `require <attr>`.
    Require {
        /// Target attribute to require.
        attr: String,
    },
    /// `status`.
    Status,
    /// `stats [reset|<operation>]`.
    Stats(StatsAction),
    /// `trace [<name>]`.
    Trace {
        /// Span-name filter (empty = all).
        filter: String,
    },
    /// `cache [save|load|clear|limit ...]`.
    Cache(CacheAction),
    /// `db [save|load ...]`.
    Db(DbAction),
    /// `map load|show ...`.
    Map(MapAction),
    /// `explain`.
    Explain,
    /// `profile`.
    Profile,
    /// `profile spans [<n>]`.
    ProfileSpans {
        /// How many spans to list (dispatch default: 10).
        top: Option<usize>,
    },
    /// `mine [containment]`.
    Mine {
        /// Minimum containment fraction (default applied at dispatch).
        min_containment: Option<f64>,
    },
    /// `verify [key,attrs]`.
    Verify {
        /// Explicit key attribute sets; `None` = default keys.
        keys: Option<Vec<String>>,
    },
    /// `contributions`.
    Contributions,
    /// `save <file>`.
    SaveMapping {
        /// Output path.
        path: String,
    },
    /// `load <file>`.
    LoadMapping {
        /// Input path.
        path: String,
    },
}

impl Command {
    /// The command's stable keyword kind (e.g. `"corr"`). The network
    /// front-end keys its per-command `net.request.*` latency
    /// histograms on this, so the strings must stay stable.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Command::Noop => "noop",
            Command::Quit => "quit",
            Command::Help => "help",
            Command::Source => "source",
            Command::Show { .. } => "show",
            Command::Target => "target",
            Command::Corr { .. } => "corr",
            Command::Walk { .. } => "walk",
            Command::Chase { .. } => "chase",
            Command::Workspaces => "workspaces",
            Command::Activate { .. } => "activate",
            Command::Confirm { .. } => "confirm",
            Command::Delete { .. } => "delete",
            Command::Accept => "accept",
            Command::Illustration => "illustration",
            Command::Induced => "induced",
            Command::Alternatives { .. } => "alternatives",
            Command::Swap { .. } => "swap",
            Command::Examples => "examples",
            Command::Mapping => "mapping",
            Command::Sql => "sql",
            Command::Filter { .. } => "filter",
            Command::Require { .. } => "require",
            Command::Status => "status",
            Command::Stats(_) => "stats",
            Command::Trace { .. } => "trace",
            Command::Cache(_) => "cache",
            Command::Db(_) => "db",
            Command::Map(_) => "map",
            Command::Explain => "explain",
            Command::Profile => "profile",
            Command::ProfileSpans { .. } => "profile",
            Command::Mine { .. } => "mine",
            Command::Verify { .. } => "verify",
            Command::Contributions => "contributions",
            Command::SaveMapping { .. } => "save",
            Command::LoadMapping { .. } => "load",
        }
    }
}

/// A line the parser rejected, carrying exactly the message the shell
/// prints after `error: `.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn parse_id(s: &str) -> Result<usize, ParseError> {
    s.trim()
        .parse()
        .map_err(|_| ParseError(format!("expected a workspace id, got `{s}`")))
}

/// Parse one input line into a [`Command`].
///
/// Whitespace is trimmed; blank lines and `#` comments parse to
/// [`Command::Noop`]. Errors carry the exact user-facing message.
pub fn parse(line: &str) -> Result<Command, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Command::Noop);
    }
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    let rest = rest.trim();
    match cmd {
        "quit" | "exit" if rest.is_empty() => Ok(Command::Quit),
        "help" => Ok(Command::Help),
        "source" => Ok(Command::Source),
        "show" => Ok(Command::Show {
            relation: rest.to_owned(),
        }),
        "target" => Ok(Command::Target),
        "corr" => {
            let idx = rest
                .rfind(" -> ")
                .ok_or_else(|| ParseError("usage: corr <expr> -> <attr>".into()))?;
            Ok(Command::Corr {
                expr: rest[..idx].trim().to_owned(),
                attr: rest[idx + 4..].trim().to_owned(),
            })
        }
        "walk" => {
            let mut words = rest.split_whitespace();
            let first = words
                .next()
                .ok_or_else(|| ParseError("usage: walk [<start>] <relation>".into()))?;
            Ok(match words.next() {
                Some(second) => Command::Walk {
                    start: Some(first.to_owned()),
                    relation: second.to_owned(),
                },
                None => Command::Walk {
                    start: None,
                    relation: first.to_owned(),
                },
            })
        }
        "chase" => {
            let usage = || ParseError("usage: chase <alias>.<attr> <value>".into());
            let (site, value) = rest.split_once(' ').ok_or_else(usage)?;
            let (alias, attr) = site.split_once('.').ok_or_else(usage)?;
            Ok(Command::Chase {
                alias: alias.to_owned(),
                attr: attr.to_owned(),
                value: value.trim().to_owned(),
            })
        }
        "workspaces" => Ok(Command::Workspaces),
        "activate" => Ok(Command::Activate {
            id: parse_id(rest)?,
        }),
        "confirm" => Ok(Command::Confirm {
            id: parse_id(rest)?,
        }),
        "delete" => Ok(Command::Delete {
            id: parse_id(rest)?,
        }),
        "accept" => Ok(Command::Accept),
        "illustration" => Ok(Command::Illustration),
        "induced" => Ok(Command::Induced),
        "alternatives" => Ok(Command::Alternatives {
            slot: parse_id(rest)?,
        }),
        "swap" => {
            let (slot, alt) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError("usage: swap <slot> <alternative>".into()))?;
            Ok(Command::Swap {
                slot: parse_id(slot)?,
                alt: parse_id(alt)?,
            })
        }
        "examples" => Ok(Command::Examples),
        "mapping" => Ok(Command::Mapping),
        "sql" => Ok(Command::Sql),
        "filter" => {
            let (kind, pred) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError("usage: filter source|target <pred>".into()))?;
            let kind = match kind {
                "source" => FilterKind::Source,
                "target" => FilterKind::Target,
                other => return err(format!("unknown filter kind `{other}`")),
            };
            Ok(Command::Filter {
                kind,
                predicate: pred.trim().to_owned(),
            })
        }
        "require" => Ok(Command::Require {
            attr: rest.to_owned(),
        }),
        "status" => Ok(Command::Status),
        "stats" => Ok(Command::Stats(if rest == "reset" {
            StatsAction::Reset
        } else {
            StatsAction::Show(rest.to_owned())
        })),
        "trace" => Ok(Command::Trace {
            filter: rest.to_owned(),
        }),
        "cache" => Ok(Command::Cache(parse_family(
            "cache",
            CACHE_SUBCOMMANDS,
            rest,
        )?)),
        "db" => Ok(Command::Db(parse_family("db", DB_SUBCOMMANDS, rest)?)),
        "map" => Ok(Command::Map(parse_family("map", MAP_SUBCOMMANDS, rest)?)),
        "explain" => Ok(Command::Explain),
        "profile" => {
            let (sub, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            let arg = arg.trim();
            match sub {
                "" => Ok(Command::Profile),
                "spans" => {
                    let top = if arg.is_empty() {
                        None
                    } else {
                        Some(arg.parse().map_err(|_| {
                            ParseError(format!("expected a span count, got `{arg}`"))
                        })?)
                    };
                    Ok(Command::ProfileSpans { top })
                }
                other => err(format!("unknown profile subcommand `{other}` (try `help`)")),
            }
        }
        "mine" => {
            let min_containment = if rest.is_empty() {
                None
            } else {
                Some(rest.parse().map_err(|_| {
                    ParseError(format!("expected a containment fraction, got `{rest}`"))
                })?)
            };
            Ok(Command::Mine { min_containment })
        }
        "verify" => {
            let keys = if rest.is_empty() {
                None
            } else {
                Some(rest.split(',').map(|s| s.trim().to_owned()).collect())
            };
            Ok(Command::Verify { keys })
        }
        "contributions" => Ok(Command::Contributions),
        "save" => Ok(Command::SaveMapping {
            path: rest.to_owned(),
        }),
        "load" => Ok(Command::LoadMapping {
            path: rest.to_owned(),
        }),
        other => err(format!("unknown command `{other}` (try `help`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_comment_quit() {
        assert_eq!(parse("").unwrap(), Command::Noop);
        assert_eq!(parse("  # hi").unwrap(), Command::Noop);
        assert_eq!(parse("quit").unwrap(), Command::Quit);
        assert_eq!(parse("exit").unwrap(), Command::Quit);
        // `quit` with trailing words is not a quit
        assert!(parse("quit now").unwrap_err().0.contains("unknown command"));
    }

    #[test]
    fn structured_arguments() {
        assert_eq!(
            parse("corr Children.ID -> ID").unwrap(),
            Command::Corr {
                expr: "Children.ID".into(),
                attr: "ID".into()
            }
        );
        assert_eq!(
            parse("walk Parents SBPS").unwrap(),
            Command::Walk {
                start: Some("Parents".into()),
                relation: "SBPS".into()
            }
        );
        assert_eq!(
            parse("chase Children.ID 002").unwrap(),
            Command::Chase {
                alias: "Children".into(),
                attr: "ID".into(),
                value: "002".into()
            }
        );
        assert_eq!(
            parse("swap 1 2").unwrap(),
            Command::Swap { slot: 1, alt: 2 }
        );
        assert_eq!(
            parse("filter source C.age > 3").unwrap(),
            Command::Filter {
                kind: FilterKind::Source,
                predicate: "C.age > 3".into()
            }
        );
        assert_eq!(
            parse("verify ID, name").unwrap(),
            Command::Verify {
                keys: Some(vec!["ID".into(), "name".into()])
            }
        );
        assert_eq!(
            parse("mine").unwrap(),
            Command::Mine {
                min_containment: None
            }
        );
        assert_eq!(
            parse("mine 0.8").unwrap(),
            Command::Mine {
                min_containment: Some(0.8)
            }
        );
    }

    #[test]
    fn cache_subcommands() {
        assert_eq!(parse("cache").unwrap(), Command::Cache(CacheAction::Stats));
        assert_eq!(
            parse("cache save").unwrap(),
            Command::Cache(CacheAction::Save(None))
        );
        assert_eq!(
            parse("cache save /tmp/x").unwrap(),
            Command::Cache(CacheAction::Save(Some("/tmp/x".into())))
        );
        assert_eq!(
            parse("cache load /tmp/x").unwrap(),
            Command::Cache(CacheAction::Load(Some("/tmp/x".into())))
        );
        assert_eq!(
            parse("cache clear").unwrap(),
            Command::Cache(CacheAction::Clear)
        );
        assert_eq!(
            parse("cache limit 1048576").unwrap(),
            Command::Cache(CacheAction::Limit(1_048_576))
        );
        assert_eq!(
            parse("cache limit").unwrap_err().0,
            "usage: cache limit <bytes>"
        );
        assert_eq!(
            parse("cache limit lots").unwrap_err().0,
            "expected a byte budget, got `lots`"
        );
        assert_eq!(
            parse("cache policy").unwrap(),
            Command::Cache(CacheAction::Policy(None))
        );
        assert_eq!(
            parse("cache policy lru").unwrap(),
            Command::Cache(CacheAction::Policy(Some(clio_incr::EvictionPolicy::Lru)))
        );
        assert_eq!(
            parse("cache policy cost").unwrap(),
            Command::Cache(CacheAction::Policy(Some(
                clio_incr::EvictionPolicy::CostAware
            )))
        );
        assert_eq!(
            parse("cache policy mru").unwrap_err().0,
            "expected a policy (lru|cost), got `mru`"
        );
        assert!(parse("cache frobnicate")
            .unwrap_err()
            .0
            .contains("unknown cache subcommand"));
    }

    #[test]
    fn db_subcommands() {
        assert_eq!(parse("db").unwrap(), Command::Db(DbAction::Stats));
        assert_eq!(
            parse("db save /tmp/paged").unwrap(),
            Command::Db(DbAction::Save("/tmp/paged".into()))
        );
        assert_eq!(
            parse("db load /tmp/paged").unwrap(),
            Command::Db(DbAction::Load("/tmp/paged".into()))
        );
        assert_eq!(parse("db save").unwrap_err().0, "usage: db save <dir>");
        assert_eq!(parse("db load").unwrap_err().0, "usage: db load <dir>");
        assert!(parse("db frobnicate")
            .unwrap_err()
            .0
            .contains("unknown db subcommand"));
    }

    #[test]
    fn profile_subcommands() {
        assert_eq!(parse("profile").unwrap(), Command::Profile);
        assert_eq!(
            parse("profile spans").unwrap(),
            Command::ProfileSpans { top: None }
        );
        assert_eq!(
            parse("profile spans 5").unwrap(),
            Command::ProfileSpans { top: Some(5) }
        );
        assert_eq!(
            parse("profile spans many").unwrap_err().0,
            "expected a span count, got `many`"
        );
        assert!(parse("profile everything")
            .unwrap_err()
            .0
            .contains("unknown profile subcommand"));
    }

    #[test]
    fn error_messages_are_stable() {
        assert_eq!(
            parse("corr nonsense").unwrap_err().0,
            "usage: corr <expr> -> <attr>"
        );
        assert_eq!(
            parse("walk").unwrap_err().0,
            "usage: walk [<start>] <relation>"
        );
        assert_eq!(
            parse("chase x").unwrap_err().0,
            "usage: chase <alias>.<attr> <value>"
        );
        assert_eq!(
            parse("confirm x").unwrap_err().0,
            "expected a workspace id, got `x`"
        );
        assert_eq!(
            parse("filter").unwrap_err().0,
            "usage: filter source|target <pred>"
        );
        assert_eq!(
            parse("filter both p").unwrap_err().0,
            "unknown filter kind `both`"
        );
        assert_eq!(
            parse("mine nonsense").unwrap_err().0,
            "expected a containment fraction, got `nonsense`"
        );
        assert_eq!(
            parse("bogus").unwrap_err().0,
            "unknown command `bogus` (try `help`)"
        );
    }

    /// Every keyword in the command table parses (possibly to a usage
    /// error, but never to `unknown command`), and every keyword the
    /// parser accepts appears in the table — help and parser cannot
    /// drift apart.
    #[test]
    fn map_subcommands() {
        assert_eq!(
            parse("map load demo.map").unwrap(),
            Command::Map(MapAction::Load("demo.map".into()))
        );
        assert_eq!(parse("map show").unwrap(), Command::Map(MapAction::Show));
        assert_eq!(parse("map load").unwrap_err().0, "usage: map load <file>");
        assert_eq!(parse("map").unwrap_err().0, "usage: map <load|show>");
        assert!(parse("map frobnicate")
            .unwrap_err()
            .0
            .contains("unknown map subcommand"));
        assert_eq!(parse("explain").unwrap(), Command::Explain);
        assert_eq!(parse("explain").unwrap().kind(), "explain");
        assert_eq!(parse("map show").unwrap().kind(), "map");
    }

    /// The family dispatcher's errors are byte-identical to the
    /// pre-table inline parsers' (scripts match on them).
    #[test]
    fn family_errors_are_stable() {
        assert_eq!(
            parse("cache frobnicate").unwrap_err().0,
            "unknown cache subcommand `frobnicate` (try `help`)"
        );
        assert_eq!(
            parse("db frobnicate").unwrap_err().0,
            "unknown db subcommand `frobnicate` (try `help`)"
        );
        assert_eq!(parse("db save").unwrap_err().0, "usage: db save <dir>");
        assert_eq!(parse("db load").unwrap_err().0, "usage: db load <dir>");
        assert_eq!(
            parse("cache limit").unwrap_err().0,
            "usage: cache limit <bytes>"
        );
    }

    #[test]
    fn table_and_parser_agree() {
        for spec in command_specs() {
            let keyword = spec.usage.split([' ', '|']).next().unwrap();
            if let Err(e) = parse(keyword) {
                assert!(
                    !e.0.contains("unknown command"),
                    "`{keyword}` is documented but not parsed"
                );
            }
        }
        // spot-check the reverse direction: parser keywords that must
        // be documented (the full set is pinned by help formatting
        // below plus the engine's exhaustive dispatch)
        for keyword in [
            "source",
            "show",
            "target",
            "corr",
            "walk",
            "chase",
            "workspaces",
            "activate",
            "confirm",
            "delete",
            "accept",
            "illustration",
            "induced",
            "alternatives",
            "swap",
            "examples",
            "mapping",
            "sql",
            "filter",
            "require",
            "status",
            "stats",
            "trace",
            "cache",
            "db",
            "profile",
            "mine",
            "verify",
            "contributions",
            "save",
            "load",
            "map",
            "explain",
            "quit",
        ] {
            assert!(
                command_specs()
                    .iter()
                    .any(|s| s.usage.split([' ', '|']).next() == Some(keyword)
                        || s.usage.split([' ', '|']).any(|w| w == keyword)),
                "parser keyword `{keyword}` is undocumented"
            );
        }
    }

    #[test]
    fn help_text_is_aligned() {
        let help = help_text();
        assert!(help.starts_with("commands:\n"));
        // every described entry puts its description at column 30
        assert!(help.contains("  source                      show the source schema"));
        assert!(help.contains("  cache limit <bytes>         set the cache's eviction byte budget"));
        assert!(help.contains("  cache policy [lru|cost]     show or switch the eviction policy"));
        assert!(help.contains("  db save <dir>               write the source database as a paged"));
        assert!(
            help.contains("  map load <file>             load a MAP-language statement as a new")
        );
        assert!(help.contains("  map show                    print the active mapping as a MAP"));
        assert!(
            help.contains("  explain                     evaluation plan of the active mapping")
        );
        assert!(help.contains("  quit\n"));
        // continuation lines land on the same column
        assert!(help.contains("\n                              by name, e.g. `stats chase`"));
    }
}
