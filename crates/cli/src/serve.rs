//! The `serve` and `connect` front-ends: bridging `clio-net`'s framed
//! TCP protocol onto the local [`Shell`].
//!
//! `serve` builds one [`SessionPool`] — one `Arc`-shared
//! `Database`/`ValueIndex` snapshot and one shared `CacheStore` — and
//! hands every accepted connection a private copy-on-write session
//! wrapped in a [`ShellHandler`]. `connect` replays `--script` (or
//! stdin) lines against a remote server, echoing `clio> <line>` before
//! each response so its output is byte-identical to a local `--script`
//! run of the same commands. See docs/service.md.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use clio_core::session_pool::SessionPool;
use clio_incr::{CacheStore, MemStore};
use clio_net::{Client, Handler, Response, Server, ServerConfig};
use clio_relational::database::Database;
use clio_relational::schema::RelSchema;

use crate::command::{self, Command};
use crate::config::CliConfig;
use crate::engine::{Outcome, Shell};

/// Idle timeout (milliseconds) when neither `--idle-ms` nor
/// `CLIO_IDLE_MS` is given.
pub const DEFAULT_IDLE_MS: u64 = 30_000;

/// The `net.request.*` histogram for one request line, keyed by the
/// parsed command kind (`net.request.invalid` for unparseable lines).
/// Histogram names must be `'static`, hence the explicit table.
#[must_use]
pub fn request_hist_name(line: &str) -> &'static str {
    let Ok(cmd) = command::parse(line) else {
        return "net.request.invalid";
    };
    match cmd.kind() {
        "noop" => "net.request.noop",
        "quit" => "net.request.quit",
        "help" => "net.request.help",
        "source" => "net.request.source",
        "show" => "net.request.show",
        "target" => "net.request.target",
        "corr" => "net.request.corr",
        "walk" => "net.request.walk",
        "chase" => "net.request.chase",
        "workspaces" => "net.request.workspaces",
        "activate" => "net.request.activate",
        "confirm" => "net.request.confirm",
        "delete" => "net.request.delete",
        "accept" => "net.request.accept",
        "illustration" => "net.request.illustration",
        "induced" => "net.request.induced",
        "alternatives" => "net.request.alternatives",
        "swap" => "net.request.swap",
        "examples" => "net.request.examples",
        "mapping" => "net.request.mapping",
        "sql" => "net.request.sql",
        "filter" => "net.request.filter",
        "require" => "net.request.require",
        "status" => "net.request.status",
        "stats" => "net.request.stats",
        "trace" => "net.request.trace",
        "cache" => "net.request.cache",
        "db" => "net.request.db",
        "profile" => "net.request.profile",
        "mine" => "net.request.mine",
        "verify" => "net.request.verify",
        "contributions" => "net.request.contributions",
        "save" => "net.request.save",
        "load" => "net.request.load",
        "map" => "net.request.map",
        "explain" => "net.request.explain",
        _ => "net.request.other",
    }
}

/// Adapts one connection's [`Shell`] to the wire: parse for the
/// histogram key, dispatch through the existing engine, map `quit` to a
/// connection close.
pub struct ShellHandler {
    shell: Shell,
}

impl ShellHandler {
    /// Wrap a shell (one connection's private session).
    #[must_use]
    pub fn new(shell: Shell) -> ShellHandler {
        ShellHandler { shell }
    }
}

impl Handler for ShellHandler {
    fn handle(&mut self, line: &str) -> Response {
        let hist = request_hist_name(line);
        match self.shell.execute(line) {
            Outcome::Continue(text) => Response {
                text,
                hist,
                quit: false,
            },
            Outcome::Quit => Response {
                text: String::new(),
                hist,
                quit: true,
            },
        }
    }
}

/// Run `clio serve`: build the shared pool, bind, announce
/// `listening on <addr>` on stdout, and serve until a client sends
/// `shutdown`. Without `--cache-dir` the connections still share one
/// in-memory [`MemStore`], so one client's spilled work warms the next.
///
/// # Errors
///
/// Bind/listen failures (the caller reports and exits 2).
pub fn run_server(
    cfg: &CliConfig,
    db: Database,
    target: RelSchema,
    store: Option<Arc<dyn CacheStore>>,
) -> std::io::Result<()> {
    let store = store.unwrap_or_else(|| Arc::new(MemStore::new()) as Arc<dyn CacheStore>);
    let mut pool = SessionPool::new(db, target).with_store(store);
    pool.set_cache_enabled(!cfg.no_cache);
    if let Some(policy) = cfg.cache_policy {
        pool.set_cache_policy(policy);
    }
    pool.set_plan_enabled(cfg.plan);
    let config = ServerConfig {
        max_conns: cfg.max_conns.unwrap_or_else(clio_relational::exec::threads),
        idle_timeout: Duration::from_millis(cfg.idle_ms.unwrap_or(DEFAULT_IDLE_MS)),
        ..ServerConfig::default()
    };
    let server = Server::bind(("127.0.0.1", cfg.port.unwrap_or(0)), config)?;
    println!("listening on {}", server.local_addr()?);
    std::io::stdout().flush().ok();
    server.run(|_conn| Box::new(ShellHandler::new(Shell::new(pool.session()))) as Box<dyn Handler>)
}

/// Run `clio connect <addr>`: replay `--script` (or stdin) lines
/// against a remote server. Every line is echoed as `clio> <line>`
/// before its response — including from stdin, so piped input produces
/// the same bytes as `--script`. Stops at `quit` (like the local script
/// loop, without echoing later lines) or when the server closes the
/// connection.
pub fn run_client(addr: &str, script: Option<&str>) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to `{addr}`: {e}");
            std::process::exit(2);
        }
    };
    let stdin;
    let file;
    let reader: Box<dyn BufRead> = match script {
        Some(path) => {
            file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open `{path}`: {e}");
                    std::process::exit(2);
                }
            };
            Box::new(std::io::BufReader::new(file))
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        println!("clio> {line}");
        match client.request(&line) {
            Ok(Some(text)) => print!("{text}"),
            Ok(None) => break,
            Err(e) => {
                eprintln!("clio: connection to `{addr}` lost: {e}");
                std::process::exit(1);
            }
        }
        if matches!(command::parse(&line), Ok(Command::Quit)) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_names_follow_the_command_kind() {
        assert_eq!(
            request_hist_name("corr Children.ID -> ID"),
            "net.request.corr"
        );
        assert_eq!(request_hist_name("stats chase"), "net.request.stats");
        assert_eq!(request_hist_name("db save /tmp/x"), "net.request.db");
        assert_eq!(request_hist_name("map show"), "net.request.map");
        assert_eq!(request_hist_name("explain"), "net.request.explain");
        assert_eq!(request_hist_name("profile spans 3"), "net.request.profile");
        assert_eq!(request_hist_name(""), "net.request.noop");
        assert_eq!(request_hist_name("# comment"), "net.request.noop");
        assert_eq!(request_hist_name("wat"), "net.request.invalid");
        assert_eq!(request_hist_name("quit"), "net.request.quit");
    }
}
