//! The command engine behind the `clio` shell: parses one command line at
//! a time and drives a [`Session`]. Pure (text in, text out) so it is
//! unit-testable and scriptable.

use std::fmt::Write as _;

use clio_core::illustration::Illustration;
use clio_core::script::{parse_mapping, write_mapping};
use clio_core::session::Session;
use clio_core::sql::{generate_sql, SqlOptions};
use clio_relational::error::{Error, Result};
use clio_relational::value::Value;

/// The shell state: a session plus presentation settings.
pub struct Shell {
    /// The underlying Clio session.
    pub session: Session,
}

/// Outcome of one command.
pub enum Outcome {
    /// Keep reading commands; the string is the command's output.
    Continue(String),
    /// Exit the shell.
    Quit,
}

impl Shell {
    /// Create a shell over a session.
    #[must_use]
    pub fn new(session: Session) -> Shell {
        Shell { session }
    }

    /// Execute one command line. Errors are rendered into the output
    /// rather than propagated, so a shell script keeps going.
    pub fn execute(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Outcome::Continue(String::new());
        }
        if line == "quit" || line == "exit" {
            return Outcome::Quit;
        }
        match self.dispatch(line) {
            Ok(out) => Outcome::Continue(out),
            Err(e) => Outcome::Continue(format!("error: {e}\n")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<String> {
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "source" => {
                let mut out = String::new();
                for rel in self.session.database().relations() {
                    let _ = writeln!(out, "{} ({} rows)", rel.schema(), rel.len());
                }
                for fk in &self.session.database().constraints.foreign_keys {
                    let _ = writeln!(out, "{fk}");
                }
                Ok(out)
            }
            "show" => {
                let rel = self.session.database().relation(rest)?;
                Ok(rel.to_string())
            }
            "target" => Ok(self.session.target_preview()?.to_string()),
            "corr" => {
                let idx = rest
                    .rfind(" -> ")
                    .ok_or_else(|| Error::Invalid("usage: corr <expr> -> <attr>".into()))?;
                let expr = rest[..idx].trim();
                let attr = rest[idx + 4..].trim();
                let ids = self.session.add_correspondence(expr, attr)?;
                if ids.len() == 1 {
                    Ok(format!("ok (workspace {})\n", ids[0]))
                } else {
                    let mut out = format!(
                        "{} scenario(s) created; inspect and confirm one:\n",
                        ids.len()
                    );
                    for id in ids {
                        let w = self.workspace(id)?;
                        let _ = writeln!(out, "  workspace {id}: {}", w.description);
                    }
                    Ok(out)
                }
            }
            "walk" => {
                let mut words = rest.split_whitespace();
                let first = words
                    .next()
                    .ok_or_else(|| Error::Invalid("usage: walk [<start>] <relation>".into()))?;
                let (start, end) = match words.next() {
                    Some(second) => (Some(first), second),
                    None => (None, first),
                };
                let ids = self.session.data_walk(start, end)?;
                let mut out = format!("{} scenario(s):\n", ids.len());
                for id in ids {
                    let w = self.workspace(id)?;
                    let _ = writeln!(out, "  workspace {id}: {}", w.description);
                }
                Ok(out)
            }
            "chase" => {
                // chase <alias>.<attr> <value>
                let (site, value) = rest
                    .split_once(' ')
                    .ok_or_else(|| Error::Invalid("usage: chase <alias>.<attr> <value>".into()))?;
                let (alias, attr) = site
                    .split_once('.')
                    .ok_or_else(|| Error::Invalid("usage: chase <alias>.<attr> <value>".into()))?;
                let ids = self
                    .session
                    .data_chase(alias, attr, &Value::str(value.trim()))?;
                let mut out = format!("{} scenario(s):\n", ids.len());
                for id in ids {
                    let w = self.workspace(id)?;
                    let _ = writeln!(out, "  workspace {id}: {}", w.description);
                }
                Ok(out)
            }
            "workspaces" => {
                let mut out = String::new();
                let active = self.session.active().map(|w| w.id);
                for w in self.session.workspaces() {
                    let marker = if Some(w.id) == active { "*" } else { " " };
                    let _ = writeln!(out, "{marker} {}: {}", w.id, w.description);
                }
                Ok(out)
            }
            "activate" => {
                self.session.activate(parse_id(rest)?)?;
                Ok("ok\n".to_owned())
            }
            "confirm" => {
                self.session.confirm(parse_id(rest)?)?;
                Ok("ok\n".to_owned())
            }
            "delete" => {
                self.session.delete(parse_id(rest)?)?;
                Ok("ok\n".to_owned())
            }
            "accept" => {
                self.session.accept_active()?;
                Ok(format!(
                    "accepted ({} total)\n",
                    self.session.accepted().len()
                ))
            }
            "illustration" => {
                let db = self.session.shared_database();
                let w = self.active()?;
                let scheme = w.mapping.graph.scheme(&db)?;
                Ok(w.illustration.render(&w.mapping.graph, &scheme))
            }
            "induced" => {
                // target-side of the illustration: the tuples each
                // example induces (paper Def 4.1's t = Q_phi(M)(d))
                let w = self.active()?;
                let tscheme = w.mapping.target_scheme();
                let refs: Vec<&clio_core::example::Example> =
                    w.illustration.examples.iter().collect();
                Ok(clio_core::example::render_example_targets(&tscheme, &refs))
            }
            "mapping" => Ok(self.active()?.mapping.to_string()),
            "sql" => {
                let db = self.session.shared_database();
                let m = self.active()?.mapping.clone();
                generate_sql(
                    &m,
                    &db,
                    &SqlOptions {
                        root: None,
                        create_view: true,
                    },
                )
            }
            "filter" => {
                let (kind, pred) = rest
                    .split_once(' ')
                    .ok_or_else(|| Error::Invalid("usage: filter source|target <pred>".into()))?;
                match kind {
                    "source" => self.session.add_source_filter(pred.trim())?,
                    "target" => self.session.add_target_filter(pred.trim())?,
                    other => return Err(Error::Invalid(format!("unknown filter kind `{other}`"))),
                }
                Ok("ok\n".to_owned())
            }
            "require" => {
                self.session.require_target_attribute(rest)?;
                Ok("ok\n".to_owned())
            }
            "save" => {
                let text = write_mapping(&self.active()?.mapping);
                std::fs::write(rest, &text)
                    .map_err(|e| Error::Invalid(format!("cannot write `{rest}`: {e}")))?;
                Ok(format!("saved to {rest}\n"))
            }
            "load" => {
                let text = std::fs::read_to_string(rest)
                    .map_err(|e| Error::Invalid(format!("cannot read `{rest}`: {e}")))?;
                let m = parse_mapping(&text)?;
                let id = self
                    .session
                    .adopt_mapping(m, &format!("loaded from {rest}"))?;
                Ok(format!("loaded as workspace {id}\n"))
            }
            "status" => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "source: {} relation(s), {} row(s)",
                    self.session.database().relations().len(),
                    self.session.database().total_rows()
                );
                let _ = writeln!(
                    out,
                    "knowledge: {} join spec(s)",
                    self.session.knowledge.specs().len()
                );
                let _ = writeln!(out, "workspaces: {}", self.session.workspaces().len());
                let _ = writeln!(out, "accepted mappings: {}", self.session.accepted().len());
                if let Some(w) = self.session.active() {
                    let _ = writeln!(
                        out,
                        "active: workspace {} — {} node(s), {} correspondence(s),                          {} example(s) in illustration",
                        w.id,
                        w.mapping.graph.node_count(),
                        w.mapping.correspondences.len(),
                        w.illustration.len()
                    );
                } else {
                    let _ = writeln!(out, "active: none (start with `corr`)");
                }
                Ok(out)
            }
            "alternatives" => {
                let slot = parse_id(rest)?;
                let alts = self.session.example_alternatives(slot)?;
                if alts.is_empty() {
                    return Ok("no alternatives for this slot
"
                    .to_owned());
                }
                let db = self.session.shared_database();
                let w = self.active()?;
                let scheme = w.mapping.graph.scheme(&db)?;
                let refs: Vec<&clio_core::example::Example> = alts.iter().collect();
                Ok(clio_core::example::render_examples(
                    &w.mapping.graph,
                    &scheme,
                    &refs,
                ))
            }
            "swap" => {
                let (slot, alt) = rest
                    .split_once(' ')
                    .ok_or_else(|| Error::Invalid("usage: swap <slot> <alternative>".into()))?;
                self.session.swap_example(parse_id(slot)?, parse_id(alt)?)?;
                Ok("ok
"
                .to_owned())
            }
            "profile" => {
                let profiles = clio_core::profile::profile_database(self.session.database());
                Ok(clio_core::profile::render_profile(&profiles))
            }
            "mine" => {
                // mine [containment] — enrich walk knowledge from data
                let min_containment: f64 = if rest.is_empty() {
                    0.95
                } else {
                    rest.parse().map_err(|_| {
                        Error::Invalid(format!("expected a containment fraction, got `{rest}`"))
                    })?
                };
                let config = clio_core::mining::MiningConfig {
                    min_containment,
                    ..clio_core::mining::MiningConfig::default()
                };
                let db = self.session.shared_database();
                let added =
                    clio_core::mining::enrich_knowledge(&mut self.session.knowledge, &db, &config);
                let mut out = format!("mined {} new join candidate(s):\n", added.len());
                for d in added {
                    let _ = writeln!(
                        out,
                        "  {}.{} -> {}.{} (containment {:.2}, {} shared values)",
                        d.from.0, d.from.1, d.to.0, d.to.1, d.containment, d.shared_values
                    );
                }
                Ok(out)
            }
            "verify" => {
                // verify [attr[,attr]...] — key attrs for conflict checks;
                // defaults to every NOT NULL target attribute as its own key
                let keys: Vec<Vec<String>> = if rest.is_empty() {
                    self.active()?
                        .mapping
                        .target
                        .attrs()
                        .iter()
                        .filter(|a| a.not_null)
                        .map(|a| vec![a.name.clone()])
                        .collect()
                } else {
                    vec![rest.split(',').map(|s| s.trim().to_owned()).collect()]
                };
                let findings = self.session.verify_active(&keys)?;
                if findings.is_empty() {
                    Ok("no findings\n".to_owned())
                } else {
                    let mut out = String::new();
                    for f in findings {
                        let _ = writeln!(out, "- {f}");
                    }
                    Ok(out)
                }
            }
            "contributions" => {
                let tm = self.session.target_mapping();
                let db = self.session.shared_database();
                let funcs = clio_relational::funcs::FuncRegistry::with_builtins();
                let contribs = tm.contributions(&db, &funcs)?;
                if contribs.is_empty() {
                    return Ok("no accepted mappings\n".to_owned());
                }
                let mut out = String::new();
                for c in contribs {
                    let _ = writeln!(
                        out,
                        "mapping {}: {} tuple(s), {} exclusive",
                        c.mapping_index, c.produced, c.exclusive
                    );
                }
                Ok(out)
            }
            "stats" => {
                if rest == "reset" {
                    clio_obs::reset_metrics();
                    return Ok("counters reset\n".to_owned());
                }
                // `stats <operation>` keeps only counters whose dotted
                // name contains the argument (e.g. `stats chase`). In a
                // pooled session (batch mode) the thread carries a
                // session label, so the table shows this session's own
                // work rather than the process-wide totals — which also
                // keeps concurrent `stats` output deterministic.
                let mut out = clio_obs::metrics::context_snapshot().render_table_filtered(rest);
                if !clio_obs::metrics_enabled() {
                    out.push_str(
                        "(counting is off — run the shell with --metrics <file> to collect)\n",
                    );
                }
                Ok(out)
            }
            "cache" => {
                let cache = self.session.cache();
                let stats = cache.stats();
                let mut out = format!("cache: {}\n", if cache.enabled() { "on" } else { "off" });
                let _ = writeln!(
                    out,
                    "entries: {} ({} bytes of {} capacity)",
                    stats.entries,
                    stats.bytes,
                    cache.capacity()
                );
                let _ = writeln!(
                    out,
                    "hits: {}  misses: {}  invalidations: {}  evictions: {}",
                    stats.hits, stats.misses, stats.invalidations, stats.evictions
                );
                Ok(out)
            }
            "trace" => {
                // live span tree, optionally filtered by name — the
                // in-session counterpart of --trace-filter
                let records = clio_obs::snapshot_spans();
                if records.is_empty() {
                    return Ok(
                        "no spans recorded (start the shell with --trace or --trace-filter \
                         to collect)\n"
                            .to_owned(),
                    );
                }
                Ok(clio_obs::render_tree_filtered(&records, rest))
            }
            "examples" => {
                // full example population of the active mapping, capped
                let db = self.session.shared_database();
                let w = self.active()?;
                let all = w
                    .mapping
                    .examples(&db, &clio_relational::funcs::FuncRegistry::with_builtins())?;
                let ill = Illustration { examples: all };
                let scheme = w.mapping.graph.scheme(&db)?;
                Ok(ill.render(&w.mapping.graph, &scheme))
            }
            other => Err(Error::Invalid(format!(
                "unknown command `{other}` (try `help`)"
            ))),
        }
    }

    fn active(&self) -> Result<&clio_core::session::Workspace> {
        self.session
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace; start with `corr`".into()))
    }

    fn workspace(&self, id: usize) -> Result<&clio_core::session::Workspace> {
        self.session
            .workspaces()
            .iter()
            .find(|w| w.id == id)
            .ok_or_else(|| Error::Invalid(format!("no workspace {id}")))
    }
}

fn parse_id(s: &str) -> Result<usize> {
    s.trim()
        .parse()
        .map_err(|_| Error::Invalid(format!("expected a workspace id, got `{s}`")))
}

/// The `help` text.
pub const HELP: &str = "\
commands:
  source                      show the source schema and constraints
  show <relation>             print a source relation
  target                      WYSIWYG preview of the target
  corr <expr> -> <attr>       add a value correspondence (may spawn scenarios)
  walk [<start>] <relation>   link a relation via schema knowledge
  chase <alias>.<attr> <val>  chase a value through the database
  workspaces                  list mapping alternatives (* = active)
  activate|confirm|delete <id>
  accept                      accept the active mapping for the target
  illustration                show the active mapping's illustration
  induced                     the target tuples the illustration induces
  alternatives <slot>         other examples that could fill a slot
  swap <slot> <alt>           replace an illustration example
  examples                    show ALL examples of the active mapping
  mapping                     print the active mapping
  sql                         generate SQL for the active mapping
  filter source|target <pred> add a data-trimming filter
  require <attr>              make a target attribute required
  status                      session summary
  stats [reset|<operation>]   engine work counters, optionally filtered
                              by name, e.g. `stats chase` (see
                              docs/observability.md)
  trace [<name>]              live span tree so far, optionally filtered
                              by span name (requires --trace or
                              --trace-filter)
  cache                       incremental-cache statistics (see
                              docs/incremental.md)
  profile                     per-attribute statistics of the source
  mine [containment]          mine join candidates from the data
  verify [key,attrs]          data-driven mapping diagnostics
  contributions               per-accepted-mapping contribution report
  save <file> / load <file>   persist the active mapping as a script
  quit
";

#[cfg(test)]
mod tests {
    use super::*;
    use clio_datagen::paper::{kids_target, paper_database};

    fn shell() -> Shell {
        Shell::new(Session::new(paper_database(), kids_target()))
    }

    fn run(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            Outcome::Continue(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn help_and_source() {
        let mut sh = shell();
        assert!(run(&mut sh, "help").contains("corr <expr>"));
        let s = run(&mut sh, "source");
        assert!(s.contains("Children(ID: str not null"));
        assert!(s.contains("fk Children(mid) -> Parents(ID)"));
    }

    #[test]
    fn show_prints_relation() {
        let mut sh = shell();
        let s = run(&mut sh, "show Children");
        assert!(s.contains("Maya"));
        assert!(run(&mut sh, "show Nope").starts_with("error:"));
    }

    #[test]
    fn full_session_flow() {
        let mut sh = shell();
        assert!(run(&mut sh, "corr Children.ID -> ID").contains("ok"));
        assert!(run(&mut sh, "corr Children.name -> name").contains("ok"));
        let s = run(&mut sh, "corr Parents.affiliation -> affiliation");
        assert!(s.contains("2 scenario(s)"));
        // confirm the fid scenario
        let fid_line = s.lines().find(|l| l.contains("fid")).unwrap();
        let id: usize = fid_line
            .trim()
            .trim_start_matches("workspace ")
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(run(&mut sh, &format!("confirm {id}")), "ok\n");
        let target = run(&mut sh, "target");
        assert!(target.contains("Maya"));
        assert!(target.contains("AT&T"));
        // chase
        let s = run(&mut sh, "chase Children.ID 002");
        assert!(s.contains("SBPS"));
        let sbps_line = s.lines().find(|l| l.contains("SBPS")).unwrap();
        let id: usize = sbps_line
            .trim()
            .trim_start_matches("workspace ")
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        run(&mut sh, &format!("confirm {id}"));
        run(&mut sh, "corr SBPS.time -> BusSchedule");
        // refine + SQL
        assert_eq!(run(&mut sh, "require BusSchedule"), "ok\n");
        let sql = run(&mut sh, "sql");
        assert!(sql.contains("JOIN SBPS"));
        assert!(run(&mut sh, "illustration").contains('+'));
        assert!(run(&mut sh, "mapping").contains("corr Children.ID -> ID"));
        assert!(run(&mut sh, "accept").contains("accepted (1 total)"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let path = std::env::temp_dir().join("clio_cli_test.mapping");
        let path_str = path.to_str().unwrap().to_owned();
        assert!(run(&mut sh, &format!("save {path_str}")).contains("saved"));
        let out = run(&mut sh, &format!("load {path_str}"));
        assert!(out.contains("loaded as workspace"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = shell();
        assert!(run(&mut sh, "bogus").starts_with("error: unknown command"));
        assert!(run(&mut sh, "corr nonsense").starts_with("error:"));
        assert!(run(&mut sh, "walk").starts_with("error:"));
        assert!(run(&mut sh, "confirm x").starts_with("error:"));
        assert!(run(&mut sh, "sql").starts_with("error:")); // no workspace yet
                                                            // shell still alive
        assert!(run(&mut sh, "help").contains("commands"));
    }

    #[test]
    fn quit_and_comments() {
        let mut sh = shell();
        assert!(matches!(sh.execute("# comment"), Outcome::Continue(s) if s.is_empty()));
        assert!(matches!(sh.execute(""), Outcome::Continue(_)));
        assert!(matches!(sh.execute("quit"), Outcome::Quit));
        assert!(matches!(sh.execute("exit"), Outcome::Quit));
    }

    #[test]
    fn alternatives_and_swap_commands() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        // the single-node illustration has 4 single-child associations
        // but a minimal one only keeps one; its alternatives are the
        // other children
        let out = run(&mut sh, "alternatives 0");
        assert!(!out.starts_with("error:"), "{out}");
        if out.contains("Children.ID") {
            let before = run(&mut sh, "illustration");
            run(&mut sh, "swap 0 0");
            let after = run(&mut sh, "illustration");
            assert_ne!(before, after);
        }
        assert!(run(&mut sh, "swap 99 0").starts_with("error:"));
        assert!(run(&mut sh, "alternatives x").starts_with("error:"));
    }

    #[test]
    fn induced_command_shows_target_side() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let out = run(&mut sh, "induced");
        assert!(out.contains("Kids.ID"), "{out}");
        assert!(out.contains('+'));
    }

    #[test]
    fn status_command_summarizes_session() {
        let mut sh = shell();
        let out = run(&mut sh, "status");
        assert!(out.contains("source: 5 relation(s)"));
        assert!(out.contains("active: none"));
        run(&mut sh, "corr Children.ID -> ID");
        let out = run(&mut sh, "status");
        assert!(out.contains("active: workspace 0"));
    }

    #[test]
    fn profile_command_reports_statistics() {
        let mut sh = shell();
        let out = run(&mut sh, "profile");
        assert!(out.contains("Children.ID"));
        assert!(out.contains("yes")); // key detection
    }

    #[test]
    fn mine_command_enriches_knowledge() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        // before mining, SBPS is unreachable by walk
        assert!(run(&mut sh, "walk SBPS").starts_with("error:"));
        let out = run(&mut sh, "mine 1.0");
        assert!(out.contains("SBPS.ID -> Children.ID"), "{out}");
        // after mining, the walk succeeds
        let out = run(&mut sh, "walk SBPS");
        assert!(out.contains("scenario"), "{out}");
        assert!(run(&mut sh, "mine nonsense").starts_with("error:"));
    }

    #[test]
    fn verify_and_contributions_commands() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let v = run(&mut sh, "verify");
        // the bootstrap mapping leaves most attributes unmapped
        assert!(v.contains("unmapped"), "{v}");
        assert!(run(&mut sh, "contributions").contains("no accepted mappings"));
        run(&mut sh, "accept");
        let c = run(&mut sh, "contributions");
        assert!(c.contains("mapping 0: 4 tuple(s)"), "{c}");
        // explicit key attrs
        let v = run(&mut sh, "verify ID");
        assert!(!v.starts_with("error"), "{v}");
    }

    #[test]
    fn stats_takes_an_operation_filter() {
        let mut sh = shell();
        let all = run(&mut sh, "stats");
        assert!(all.contains("join.probes"), "{all}");
        assert!(all.contains("chase.alternatives_generated"), "{all}");
        let filtered = run(&mut sh, "stats chase");
        assert!(
            filtered.contains("chase.alternatives_generated"),
            "{filtered}"
        );
        assert!(filtered.contains("chase.alternatives_pruned"), "{filtered}");
        assert!(!filtered.contains("join.probes"), "{filtered}");
        let none = run(&mut sh, "stats bogus");
        assert!(none.contains("no counters match `bogus`"), "{none}");
    }

    #[test]
    fn workspaces_listing_marks_active() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let s = run(&mut sh, "workspaces");
        assert!(s.starts_with("* 0:"));
    }

    #[test]
    fn cache_command_reports_hits_after_repeated_previews() {
        let mut sh = shell();
        let s = run(&mut sh, "cache");
        assert!(s.contains("cache: on"), "{s}");
        assert!(s.contains("entries: 0"), "{s}");
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        run(&mut sh, "target");
        let s = run(&mut sh, "cache");
        assert!(sh.session.cache().stats().hits > 0, "{s}");
        assert!(!s.contains("hits: 0 "), "{s}");
        // toggled off, the command says so
        sh.session.set_cache_enabled(false);
        assert!(run(&mut sh, "cache").contains("cache: off"));
    }

    #[test]
    fn trace_command_mirrors_trace_filter() {
        let mut sh = shell();
        // with tracing off there is nothing to show, only a hint
        let s = run(&mut sh, "trace");
        assert!(s.contains("no spans recorded"), "{s}");
        clio_obs::set_trace_enabled(true);
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        let all = run(&mut sh, "trace");
        assert!(all.contains("mapping.evaluate"), "{all}");
        let filtered = run(&mut sh, "trace mapping.evaluate");
        assert!(filtered.contains("mapping.evaluate"), "{filtered}");
        assert!(!filtered.contains("mapping.examples"), "{filtered}");
        let none = run(&mut sh, "trace zzz-not-a-span");
        assert!(none.contains("no spans matching"), "{none}");
        clio_obs::set_trace_enabled(false);
        clio_obs::clear_spans();
    }
}
