//! The command engine behind the `clio` shell: parses one command line
//! at a time (via [`crate::command::parse`]) and drives a [`Session`].
//! Pure (text in, text out) so it is unit-testable and scriptable.

use std::fmt::Write as _;

use clio_core::illustration::Illustration;
use clio_core::script::{parse_mapping, write_mapping};
use clio_core::session::Session;
use clio_core::sql::{generate_sql, SqlOptions};
use clio_relational::error::{Error, Result};
use clio_relational::value::Value;

use crate::command::{self, CacheAction, Command, DbAction, FilterKind, MapAction, StatsAction};

/// The shell state: a session plus presentation settings.
pub struct Shell {
    /// The underlying Clio session.
    pub session: Session,
}

/// Outcome of one command.
pub enum Outcome {
    /// Keep reading commands; the string is the command's output.
    Continue(String),
    /// Exit the shell.
    Quit,
}

impl Shell {
    /// Create a shell over a session.
    #[must_use]
    pub fn new(session: Session) -> Shell {
        Shell { session }
    }

    /// Execute one command line. Parse and dispatch errors are rendered
    /// into the output rather than propagated, so a shell script keeps
    /// going.
    pub fn execute(&mut self, line: &str) -> Outcome {
        let cmd = match command::parse(line) {
            Ok(cmd) => cmd,
            Err(e) => return Outcome::Continue(format!("error: {e}\n")),
        };
        match cmd {
            Command::Noop => Outcome::Continue(String::new()),
            Command::Quit => Outcome::Quit,
            cmd => match self.dispatch(cmd) {
                Ok(out) => Outcome::Continue(out),
                Err(e) => Outcome::Continue(format!("error: {e}\n")),
            },
        }
    }

    fn dispatch(&mut self, cmd: Command) -> Result<String> {
        match cmd {
            // Noop/Quit are consumed by `execute`; they produce nothing.
            Command::Noop => Ok(String::new()),
            Command::Quit => Ok(String::new()),
            Command::Help => Ok(command::help_text()),
            Command::Source => {
                let mut out = String::new();
                for rel in self.session.database().relations() {
                    let _ = writeln!(out, "{} ({} rows)", rel.schema(), rel.len());
                }
                for fk in &self.session.database().constraints.foreign_keys {
                    let _ = writeln!(out, "{fk}");
                }
                Ok(out)
            }
            Command::Show { relation } => {
                let rel = self.session.database().relation(&relation)?;
                Ok(rel.to_string())
            }
            Command::Target => Ok(self.session.target_preview()?.to_string()),
            Command::Corr { expr, attr } => {
                let ids = self.session.add_correspondence(&expr, &attr)?;
                if ids.len() == 1 {
                    Ok(format!("ok (workspace {})\n", ids[0]))
                } else {
                    let mut out = format!(
                        "{} scenario(s) created; inspect and confirm one:\n",
                        ids.len()
                    );
                    for id in ids {
                        let w = self.workspace(id)?;
                        let _ = writeln!(out, "  workspace {id}: {}", w.description);
                    }
                    Ok(out)
                }
            }
            Command::Walk { start, relation } => {
                let ids = self.session.data_walk(start.as_deref(), &relation)?;
                let mut out = format!("{} scenario(s):\n", ids.len());
                for id in ids {
                    let w = self.workspace(id)?;
                    let _ = writeln!(out, "  workspace {id}: {}", w.description);
                }
                Ok(out)
            }
            Command::Chase { alias, attr, value } => {
                let ids = self.session.data_chase(&alias, &attr, &Value::str(value))?;
                let mut out = format!("{} scenario(s):\n", ids.len());
                for id in ids {
                    let w = self.workspace(id)?;
                    let _ = writeln!(out, "  workspace {id}: {}", w.description);
                }
                Ok(out)
            }
            Command::Workspaces => {
                let mut out = String::new();
                let active = self.session.active().map(|w| w.id);
                for w in self.session.workspaces() {
                    let marker = if Some(w.id) == active { "*" } else { " " };
                    let _ = writeln!(out, "{marker} {}: {}", w.id, w.description);
                }
                Ok(out)
            }
            Command::Activate { id } => {
                self.session.activate(id)?;
                Ok("ok\n".to_owned())
            }
            Command::Confirm { id } => {
                self.session.confirm(id)?;
                Ok("ok\n".to_owned())
            }
            Command::Delete { id } => {
                self.session.delete(id)?;
                Ok("ok\n".to_owned())
            }
            Command::Accept => {
                self.session.accept_active()?;
                Ok(format!(
                    "accepted ({} total)\n",
                    self.session.accepted().len()
                ))
            }
            Command::Illustration => {
                let db = self.session.shared_database();
                let w = self.active()?;
                let scheme = w.mapping.graph.scheme(&db)?;
                Ok(w.illustration.render(&w.mapping.graph, &scheme))
            }
            Command::Induced => {
                // target-side of the illustration: the tuples each
                // example induces (paper Def 4.1's t = Q_phi(M)(d))
                let w = self.active()?;
                let tscheme = w.mapping.target_scheme();
                let refs: Vec<&clio_core::example::Example> =
                    w.illustration.examples.iter().collect();
                Ok(clio_core::example::render_example_targets(&tscheme, &refs))
            }
            Command::Mapping => Ok(self.active()?.mapping.to_string()),
            Command::Sql => {
                let db = self.session.shared_database();
                let m = self.active()?.mapping.clone();
                generate_sql(
                    &m,
                    &db,
                    &SqlOptions {
                        root: None,
                        create_view: true,
                    },
                )
            }
            Command::Filter { kind, predicate } => {
                match kind {
                    FilterKind::Source => self.session.add_source_filter(&predicate)?,
                    FilterKind::Target => self.session.add_target_filter(&predicate)?,
                }
                Ok("ok\n".to_owned())
            }
            Command::Require { attr } => {
                self.session.require_target_attribute(&attr)?;
                Ok("ok\n".to_owned())
            }
            Command::SaveMapping { path } => {
                let text = write_mapping(&self.active()?.mapping);
                std::fs::write(&path, &text)
                    .map_err(|e| Error::Invalid(format!("cannot write `{path}`: {e}")))?;
                Ok(format!("saved to {path}\n"))
            }
            Command::LoadMapping { path } => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| Error::Invalid(format!("cannot read `{path}`: {e}")))?;
                let m = parse_mapping(&text)?;
                let id = self
                    .session
                    .adopt_mapping(m, &format!("loaded from {path}"))?;
                Ok(format!("loaded as workspace {id}\n"))
            }
            Command::Status => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "source: {} relation(s), {} row(s)",
                    self.session.database().relation_count(),
                    self.session.database().total_rows()
                );
                let _ = writeln!(
                    out,
                    "knowledge: {} join spec(s)",
                    self.session.knowledge.specs().len()
                );
                let _ = writeln!(out, "workspaces: {}", self.session.workspaces().len());
                let _ = writeln!(out, "accepted mappings: {}", self.session.accepted().len());
                if let Some(w) = self.session.active() {
                    let _ = writeln!(
                        out,
                        "active: workspace {} — {} node(s), {} correspondence(s),                          {} example(s) in illustration",
                        w.id,
                        w.mapping.graph.node_count(),
                        w.mapping.correspondences.len(),
                        w.illustration.len()
                    );
                } else {
                    let _ = writeln!(out, "active: none (start with `corr`)");
                }
                Ok(out)
            }
            Command::Alternatives { slot } => {
                let alts = self.session.example_alternatives(slot)?;
                if alts.is_empty() {
                    return Ok("no alternatives for this slot
"
                    .to_owned());
                }
                let db = self.session.shared_database();
                let w = self.active()?;
                let scheme = w.mapping.graph.scheme(&db)?;
                let refs: Vec<&clio_core::example::Example> = alts.iter().collect();
                Ok(clio_core::example::render_examples(
                    &w.mapping.graph,
                    &scheme,
                    &refs,
                ))
            }
            Command::Swap { slot, alt } => {
                self.session.swap_example(slot, alt)?;
                Ok("ok
"
                .to_owned())
            }
            Command::Profile => {
                let profiles = clio_core::profile::profile_database(self.session.database());
                Ok(clio_core::profile::render_profile(&profiles))
            }
            Command::ProfileSpans { top } => {
                // top-n spans by self time with per-name latency
                // percentiles — the timing counterpart of `trace`
                let records = clio_obs::snapshot_spans();
                if records.is_empty() {
                    return Ok(
                        "no spans recorded (start the shell with --trace, --trace-out, or \
                         --slow-ms to collect)\n"
                            .to_owned(),
                    );
                }
                let hists = clio_obs::hist::context_histograms();
                Ok(clio_obs::render_profile(
                    &records,
                    &hists,
                    top.unwrap_or(10),
                ))
            }
            Command::Mine { min_containment } => {
                // mine [containment] — enrich walk knowledge from data
                let config = clio_core::mining::MiningConfig {
                    min_containment: min_containment.unwrap_or(0.95),
                    ..clio_core::mining::MiningConfig::default()
                };
                let db = self.session.shared_database();
                let added =
                    clio_core::mining::enrich_knowledge(&mut self.session.knowledge, &db, &config);
                let mut out = format!("mined {} new join candidate(s):\n", added.len());
                for d in added {
                    let _ = writeln!(
                        out,
                        "  {}.{} -> {}.{} (containment {:.2}, {} shared values)",
                        d.from.0, d.from.1, d.to.0, d.to.1, d.containment, d.shared_values
                    );
                }
                Ok(out)
            }
            Command::Verify { keys } => {
                // verify [attr[,attr]...] — key attrs for conflict checks;
                // defaults to every NOT NULL target attribute as its own key
                let keys: Vec<Vec<String>> = match keys {
                    None => self
                        .active()?
                        .mapping
                        .target
                        .attrs()
                        .iter()
                        .filter(|a| a.not_null)
                        .map(|a| vec![a.name.clone()])
                        .collect(),
                    Some(attrs) => vec![attrs],
                };
                let findings = self.session.verify_active(&keys)?;
                if findings.is_empty() {
                    Ok("no findings\n".to_owned())
                } else {
                    let mut out = String::new();
                    for f in findings {
                        let _ = writeln!(out, "- {f}");
                    }
                    Ok(out)
                }
            }
            Command::Contributions => {
                let tm = self.session.target_mapping();
                let db = self.session.shared_database();
                let funcs = clio_relational::funcs::FuncRegistry::with_builtins();
                let contribs = tm.contributions(&db, &funcs)?;
                if contribs.is_empty() {
                    return Ok("no accepted mappings\n".to_owned());
                }
                let mut out = String::new();
                for c in contribs {
                    let _ = writeln!(
                        out,
                        "mapping {}: {} tuple(s), {} exclusive",
                        c.mapping_index, c.produced, c.exclusive
                    );
                }
                Ok(out)
            }
            Command::Stats(StatsAction::Reset) => {
                clio_obs::reset_metrics();
                Ok("counters reset\n".to_owned())
            }
            Command::Stats(StatsAction::Show(filter)) => {
                // `stats <operation>` keeps only counters whose dotted
                // name contains the argument (e.g. `stats chase`). In a
                // pooled session (batch mode) the thread carries a
                // session label, so the table shows this session's own
                // work rather than the process-wide totals — which also
                // keeps concurrent `stats` output deterministic.
                let mut out = clio_obs::metrics::context_snapshot().render_table_filtered(&filter);
                if !clio_obs::metrics_enabled() {
                    out.push_str(
                        "(counting is off — run the shell with --metrics <file> to collect)\n",
                    );
                }
                Ok(out)
            }
            Command::Cache(action) => self.cache_command(action),
            Command::Db(action) => self.db_command(action),
            Command::Map(MapAction::Load(path)) => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| Error::Invalid(format!("cannot read `{path}`: {e}")))?;
                let m = clio_lang::parse_map(&text)?;
                let id = self
                    .session
                    .adopt_mapping(m, &format!("loaded from {path}"))?;
                Ok(format!("loaded as workspace {id}\n"))
            }
            Command::Map(MapAction::Show) => Ok(clio_lang::print_mapping(&self.active()?.mapping)),
            Command::Explain => self.session.explain_active(),
            Command::Trace { filter } => {
                // live span tree, optionally filtered by name — the
                // in-session counterpart of --trace-filter
                let records = clio_obs::snapshot_spans();
                if records.is_empty() {
                    return Ok(
                        "no spans recorded (start the shell with --trace or --trace-filter \
                         to collect)\n"
                            .to_owned(),
                    );
                }
                Ok(clio_obs::render_tree_filtered(&records, &filter))
            }
            Command::Examples => {
                // full example population of the active mapping, capped
                let db = self.session.shared_database();
                let w = self.active()?;
                let all = w
                    .mapping
                    .examples(&db, &clio_relational::funcs::FuncRegistry::with_builtins())?;
                let ill = Illustration { examples: all };
                let scheme = w.mapping.graph.scheme(&db)?;
                Ok(ill.render(&w.mapping.graph, &scheme))
            }
        }
    }

    /// Dispatch a `cache …` subcommand. `cache` (stats) leads with its
    /// legacy three lines (on/off, entries, hit counters) so scripted
    /// greps keep working; the policy, cost, and warmth lines follow,
    /// and store lines are appended only when a persistent store is
    /// attached. The warmth probe uses the non-promoting
    /// [`EvalCache::peek`], so printing statistics never perturbs
    /// recency, frequency, or the hit/miss counters it reports.
    fn cache_command(&mut self, action: CacheAction) -> Result<String> {
        let cache = self.session.cache();
        match action {
            CacheAction::Stats => {
                let stats = cache.stats();
                let mut out = format!("cache: {}\n", if cache.enabled() { "on" } else { "off" });
                let _ = writeln!(
                    out,
                    "entries: {} ({} bytes of {} capacity)",
                    stats.entries,
                    stats.bytes,
                    cache.capacity()
                );
                let _ = writeln!(
                    out,
                    "hits: {}  misses: {}  invalidations: {}  evictions: {}",
                    stats.hits, stats.misses, stats.invalidations, stats.evictions
                );
                let _ = writeln!(
                    out,
                    "policy: {}  cost evictions: {}  saved: {:.1} ms",
                    cache.policy().name(),
                    stats.cost_evictions,
                    stats.saved_ns as f64 / 1e6,
                );
                if let Some(w) = self.session.active() {
                    let fp = clio_core::incremental::mapping_fingerprint(&w.mapping, cache);
                    let _ = writeln!(
                        out,
                        "active Q(M): {}",
                        if cache.peek(fp).is_some() {
                            "warm"
                        } else {
                            "cold"
                        }
                    );
                }
                if let Some(store) = cache.store() {
                    let s = store.stats();
                    let _ = writeln!(out, "store: {}", store.describe());
                    let _ = writeln!(
                        out,
                        "spills: {}  disk hits: {}  disk bytes: {}  load errors: {}",
                        s.spills, s.hits, s.bytes, s.load_errors
                    );
                }
                Ok(out)
            }
            CacheAction::Clear => {
                cache.clear();
                Ok("ok\n".to_owned())
            }
            CacheAction::Limit(bytes) => {
                cache.set_capacity(bytes);
                Ok("ok\n".to_owned())
            }
            CacheAction::Policy(None) => Ok(format!("policy: {}\n", cache.policy().name())),
            CacheAction::Policy(Some(policy)) => {
                cache.set_policy(policy);
                Ok("ok\n".to_owned())
            }
            CacheAction::Save(dir) => {
                let n = match dir {
                    Some(dir) => {
                        let store = clio_incr::DiskStore::open(
                            std::path::Path::new(&dir),
                            clio_incr::database_digest(self.session.database()),
                        );
                        cache.spill_to(&store)
                    }
                    None => match cache.store() {
                        Some(store) => cache.spill_to(store.as_ref()),
                        None => {
                            return Err(Error::Invalid(
                                "no cache store attached (start the shell with --cache-dir \
                                 or pass a directory: `cache save <dir>`)"
                                    .into(),
                            ))
                        }
                    },
                };
                Ok(format!("saved {n} entry(ies)\n"))
            }
            CacheAction::Load(dir) => {
                let n = match dir {
                    Some(dir) => {
                        let store = clio_incr::DiskStore::open(
                            std::path::Path::new(&dir),
                            clio_incr::database_digest(self.session.database()),
                        );
                        cache.preload_from(&store)
                    }
                    None => match cache.store() {
                        Some(store) => cache.preload_from(store.as_ref()),
                        None => {
                            return Err(Error::Invalid(
                                "no cache store attached (start the shell with --cache-dir \
                                 or pass a directory: `cache load <dir>`)"
                                    .into(),
                            ))
                        }
                    },
                };
                Ok(format!("loaded {n} entry(ies)\n"))
            }
        }
    }

    /// Dispatch a `db …` subcommand. `db` (stats) reports which storage
    /// backend the session's source database answers from; `db save`
    /// writes the database — and the session's target schema, as
    /// `_target.txt` — as a paged on-disk directory (see
    /// docs/storage.md); `db load` restarts the session over such a
    /// directory, reusing its persisted value index instead of
    /// rebuilding one. Loading replaces the whole session, so
    /// workspaces, accepted mappings, and the cache start fresh.
    fn db_command(&mut self, action: DbAction) -> Result<String> {
        match action {
            DbAction::Stats => {
                let db = self.session.database();
                let mut out = match db.paged_dir() {
                    Some(dir) => format!("backend: paged ({})\n", dir.display()),
                    None => "backend: memory\n".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "relations: {}  rows: {}",
                    db.relation_count(),
                    db.total_rows()
                );
                let _ = writeln!(
                    out,
                    "stored index: {}",
                    if db.stored_index().is_some() {
                        "yes"
                    } else {
                        "no (built in memory)"
                    }
                );
                Ok(out)
            }
            DbAction::Save(dir) => {
                let path = std::path::Path::new(&dir);
                clio_relational::storage::save_database(
                    self.session.database(),
                    path,
                    clio_pager::DEFAULT_PAGE_SIZE,
                )?;
                let spec = clio_relational::storage::target_spec(self.session.target_schema());
                std::fs::write(path.join("_target.txt"), format!("{spec}\n")).map_err(|e| {
                    Error::Invalid(format!("cannot write `{dir}/_target.txt`: {e}"))
                })?;
                Ok(format!(
                    "saved {} relation(s) to {dir}\n",
                    self.session.database().relation_count()
                ))
            }
            DbAction::Load(dir) => {
                let path = std::path::Path::new(&dir);
                let db =
                    clio_relational::storage::open_paged(path, crate::config::DEFAULT_DB_POOL)?;
                let target_text = std::fs::read_to_string(path.join("_target.txt"))
                    .map_err(|e| Error::Invalid(format!("cannot read `{dir}/_target.txt`: {e}")))?;
                let target = clio_core::script::parse_target_schema(target_text.trim())?;
                self.session = Session::shared(std::sync::Arc::new(db), target);
                Ok(format!(
                    "loaded {dir} ({} relation(s), {} row(s))\n",
                    self.session.database().relation_count(),
                    self.session.database().total_rows()
                ))
            }
        }
    }

    fn active(&self) -> Result<&clio_core::session::Workspace> {
        self.session
            .active()
            .ok_or_else(|| Error::Invalid("no active workspace; start with `corr`".into()))
    }

    fn workspace(&self, id: usize) -> Result<&clio_core::session::Workspace> {
        self.session
            .workspaces()
            .iter()
            .find(|w| w.id == id)
            .ok_or_else(|| Error::Invalid(format!("no workspace {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_datagen::paper::{kids_target, paper_database};

    /// Serializes tests that toggle the process-global trace state.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        OBS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn shell() -> Shell {
        Shell::new(Session::new(paper_database(), kids_target()))
    }

    fn run(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            Outcome::Continue(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn help_and_source() {
        let mut sh = shell();
        assert!(run(&mut sh, "help").contains("corr <expr>"));
        let s = run(&mut sh, "source");
        assert!(s.contains("Children(ID: str not null"));
        assert!(s.contains("fk Children(mid) -> Parents(ID)"));
    }

    #[test]
    fn show_prints_relation() {
        let mut sh = shell();
        let s = run(&mut sh, "show Children");
        assert!(s.contains("Maya"));
        assert!(run(&mut sh, "show Nope").starts_with("error:"));
    }

    #[test]
    fn full_session_flow() {
        let mut sh = shell();
        assert!(run(&mut sh, "corr Children.ID -> ID").contains("ok"));
        assert!(run(&mut sh, "corr Children.name -> name").contains("ok"));
        let s = run(&mut sh, "corr Parents.affiliation -> affiliation");
        assert!(s.contains("2 scenario(s)"));
        // confirm the fid scenario
        let fid_line = s.lines().find(|l| l.contains("fid")).unwrap();
        let id: usize = fid_line
            .trim()
            .trim_start_matches("workspace ")
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(run(&mut sh, &format!("confirm {id}")), "ok\n");
        let target = run(&mut sh, "target");
        assert!(target.contains("Maya"));
        assert!(target.contains("AT&T"));
        // chase
        let s = run(&mut sh, "chase Children.ID 002");
        assert!(s.contains("SBPS"));
        let sbps_line = s.lines().find(|l| l.contains("SBPS")).unwrap();
        let id: usize = sbps_line
            .trim()
            .trim_start_matches("workspace ")
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        run(&mut sh, &format!("confirm {id}"));
        run(&mut sh, "corr SBPS.time -> BusSchedule");
        // refine + SQL
        assert_eq!(run(&mut sh, "require BusSchedule"), "ok\n");
        let sql = run(&mut sh, "sql");
        assert!(sql.contains("JOIN SBPS"));
        assert!(run(&mut sh, "illustration").contains('+'));
        assert!(run(&mut sh, "mapping").contains("corr Children.ID -> ID"));
        assert!(run(&mut sh, "accept").contains("accepted (1 total)"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let path = std::env::temp_dir().join("clio_cli_test.mapping");
        let path_str = path.to_str().unwrap().to_owned();
        assert!(run(&mut sh, &format!("save {path_str}")).contains("saved"));
        let out = run(&mut sh, &format!("load {path_str}"));
        assert!(out.contains("loaded as workspace"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_load_show_and_explain() {
        let mut sh = shell();
        let path = std::env::temp_dir().join(format!("clio-cli-map-{}.map", std::process::id()));
        let text = "MAP Kids (ID str not null, name str, affiliation str, address str, \
                    contactPh str, BusSchedule str, FamilyIncome int)\n\
                    FROM Children\n\
                    SELECT Children.ID AS ID, Children.name AS name\n";
        std::fs::write(&path, text).unwrap();
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(&mut sh, &format!("map load {path_str}"));
        assert!(out.contains("loaded as workspace"), "{out}");
        std::fs::remove_file(&path).ok();
        // `map show` prints the active mapping back in canonical MAP form.
        let shown = run(&mut sh, "map show");
        assert!(shown.starts_with("MAP Kids"), "{shown}");
        assert!(shown.contains("SELECT Children.ID AS ID"), "{shown}");
        // The shown text re-loads to the same mapping.
        let reparsed = clio_lang::parse_map(&shown).unwrap();
        assert_eq!(reparsed, sh.session.workspaces()[0].mapping);
        // `explain` renders a plan tree for the active mapping.
        let plan = run(&mut sh, "explain");
        assert!(plan.contains("plan for Kids"), "{plan}");
        assert!(plan.contains("Scan Children"), "{plan}");
    }

    #[test]
    fn map_load_reports_parse_position() {
        let mut sh = shell();
        let path = std::env::temp_dir().join(format!("clio-cli-mapbad-{}.map", std::process::id()));
        std::fs::write(
            &path,
            "MAP Kids (ID str)\nFROM Children\nSELECT ??? AS ID\n",
        )
        .unwrap();
        let out = run(&mut sh, &format!("map load {}", path.display()));
        std::fs::remove_file(&path).ok();
        assert!(out.starts_with("error: parse error at line 3"), "{out}");
        let missing = run(&mut sh, "map load /nonexistent/clio.map");
        assert!(missing.starts_with("error: cannot read"), "{missing}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = shell();
        assert!(run(&mut sh, "bogus").starts_with("error: unknown command"));
        assert!(run(&mut sh, "corr nonsense").starts_with("error:"));
        assert!(run(&mut sh, "walk").starts_with("error:"));
        assert!(run(&mut sh, "confirm x").starts_with("error:"));
        assert!(run(&mut sh, "sql").starts_with("error:")); // no workspace yet
                                                            // shell still alive
        assert!(run(&mut sh, "help").contains("commands"));
    }

    #[test]
    fn quit_and_comments() {
        let mut sh = shell();
        assert!(matches!(sh.execute("# comment"), Outcome::Continue(s) if s.is_empty()));
        assert!(matches!(sh.execute(""), Outcome::Continue(_)));
        assert!(matches!(sh.execute("quit"), Outcome::Quit));
        assert!(matches!(sh.execute("exit"), Outcome::Quit));
    }

    #[test]
    fn alternatives_and_swap_commands() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        // the single-node illustration has 4 single-child associations
        // but a minimal one only keeps one; its alternatives are the
        // other children
        let out = run(&mut sh, "alternatives 0");
        assert!(!out.starts_with("error:"), "{out}");
        if out.contains("Children.ID") {
            let before = run(&mut sh, "illustration");
            run(&mut sh, "swap 0 0");
            let after = run(&mut sh, "illustration");
            assert_ne!(before, after);
        }
        assert!(run(&mut sh, "swap 99 0").starts_with("error:"));
        assert!(run(&mut sh, "alternatives x").starts_with("error:"));
    }

    #[test]
    fn induced_command_shows_target_side() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let out = run(&mut sh, "induced");
        assert!(out.contains("Kids.ID"), "{out}");
        assert!(out.contains('+'));
    }

    #[test]
    fn status_command_summarizes_session() {
        let mut sh = shell();
        let out = run(&mut sh, "status");
        assert!(out.contains("source: 5 relation(s)"));
        assert!(out.contains("active: none"));
        run(&mut sh, "corr Children.ID -> ID");
        let out = run(&mut sh, "status");
        assert!(out.contains("active: workspace 0"));
    }

    #[test]
    fn profile_command_reports_statistics() {
        let mut sh = shell();
        let out = run(&mut sh, "profile");
        assert!(out.contains("Children.ID"));
        assert!(out.contains("yes")); // key detection
    }

    #[test]
    fn mine_command_enriches_knowledge() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        // before mining, SBPS is unreachable by walk
        assert!(run(&mut sh, "walk SBPS").starts_with("error:"));
        let out = run(&mut sh, "mine 1.0");
        assert!(out.contains("SBPS.ID -> Children.ID"), "{out}");
        // after mining, the walk succeeds
        let out = run(&mut sh, "walk SBPS");
        assert!(out.contains("scenario"), "{out}");
        assert!(run(&mut sh, "mine nonsense").starts_with("error:"));
    }

    #[test]
    fn verify_and_contributions_commands() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let v = run(&mut sh, "verify");
        // the bootstrap mapping leaves most attributes unmapped
        assert!(v.contains("unmapped"), "{v}");
        assert!(run(&mut sh, "contributions").contains("no accepted mappings"));
        run(&mut sh, "accept");
        let c = run(&mut sh, "contributions");
        assert!(c.contains("mapping 0: 4 tuple(s)"), "{c}");
        // explicit key attrs
        let v = run(&mut sh, "verify ID");
        assert!(!v.starts_with("error"), "{v}");
    }

    #[test]
    fn stats_takes_an_operation_filter() {
        let mut sh = shell();
        let all = run(&mut sh, "stats");
        assert!(all.contains("join.probes"), "{all}");
        assert!(all.contains("chase.alternatives_generated"), "{all}");
        let filtered = run(&mut sh, "stats chase");
        assert!(
            filtered.contains("chase.alternatives_generated"),
            "{filtered}"
        );
        assert!(filtered.contains("chase.alternatives_pruned"), "{filtered}");
        assert!(!filtered.contains("join.probes"), "{filtered}");
        let none = run(&mut sh, "stats bogus");
        assert!(none.contains("no counters match `bogus`"), "{none}");
    }

    #[test]
    fn workspaces_listing_marks_active() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        let s = run(&mut sh, "workspaces");
        assert!(s.starts_with("* 0:"));
    }

    #[test]
    fn cache_command_reports_hits_after_repeated_previews() {
        let mut sh = shell();
        let s = run(&mut sh, "cache");
        assert!(s.contains("cache: on"), "{s}");
        assert!(s.contains("entries: 0"), "{s}");
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        run(&mut sh, "target");
        let s = run(&mut sh, "cache");
        assert!(sh.session.cache().stats().hits > 0, "{s}");
        assert!(!s.contains("hits: 0 "), "{s}");
        // toggled off, the command says so
        sh.session.set_cache_enabled(false);
        assert!(run(&mut sh, "cache").contains("cache: off"));
    }

    #[test]
    fn cache_clear_and_limit_commands() {
        let mut sh = shell();
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        assert!(sh.session.cache().stats().entries > 0);
        assert_eq!(run(&mut sh, "cache clear"), "ok\n");
        assert_eq!(sh.session.cache().stats().entries, 0);
        assert_eq!(run(&mut sh, "cache limit 4096"), "ok\n");
        assert_eq!(sh.session.cache().capacity(), 4096);
        let s = run(&mut sh, "cache");
        assert!(s.contains("of 4096 capacity"), "{s}");
        // bad arguments come back as parse errors, not panics
        assert!(run(&mut sh, "cache limit lots").starts_with("error:"));
        assert!(run(&mut sh, "cache wat").starts_with("error:"));
    }

    #[test]
    fn cache_policy_command_shows_and_switches() {
        let mut sh = shell();
        // cost-aware is the default, reported by both `cache` and
        // `cache policy`
        assert!(run(&mut sh, "cache").contains("policy: cost"));
        assert_eq!(run(&mut sh, "cache policy"), "policy: cost\n");
        assert_eq!(run(&mut sh, "cache policy lru"), "ok\n");
        assert_eq!(run(&mut sh, "cache policy"), "policy: lru\n");
        assert_eq!(sh.session.cache().policy(), clio_incr::EvictionPolicy::Lru);
        assert_eq!(run(&mut sh, "cache policy cost"), "ok\n");
        assert_eq!(
            sh.session.cache().policy(),
            clio_incr::EvictionPolicy::CostAware
        );
        assert_eq!(
            run(&mut sh, "cache policy mru"),
            "error: expected a policy (lru|cost), got `mru`\n"
        );
    }

    /// The stats warmth probe is `peek`-based: printing `cache` must
    /// not create hits, promote entries, or change the active
    /// mapping's warmth.
    #[test]
    fn cache_stats_warmth_line_tracks_the_active_mapping() {
        let mut sh = shell();
        // no active workspace yet: no warmth line at all
        assert!(!run(&mut sh, "cache").contains("active Q(M):"));
        run(&mut sh, "corr Children.ID -> ID");
        let s = run(&mut sh, "cache");
        assert!(s.contains("active Q(M): cold"), "{s}");
        run(&mut sh, "target");
        let before = sh.session.cache().stats();
        let s = run(&mut sh, "cache");
        assert!(s.contains("active Q(M): warm"), "{s}");
        let after = sh.session.cache().stats();
        assert_eq!(before.hits, after.hits, "stats probe counted a hit");
        assert_eq!(before.misses, after.misses, "stats probe counted a miss");
    }

    #[test]
    fn cache_save_and_load_round_trip_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("clio-engine-save-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        // without an attached store and without a directory: an error
        assert!(run(&mut sh, "cache save").starts_with("error: no cache store attached"));
        assert!(run(&mut sh, "cache load").starts_with("error: no cache store attached"));
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        let saved = run(&mut sh, format!("cache save {dir_s}").as_str());
        assert!(saved.starts_with("saved "), "{saved}");
        assert_ne!(saved, "saved 0 entry(ies)\n");

        // a fresh shell loads the spilled entries back
        let mut warm = shell();
        let loaded = run(&mut warm, format!("cache load {dir_s}").as_str());
        assert_eq!(loaded, saved.replace("saved", "loaded"));
        assert!(warm.session.cache().stats().entries > 0);
        // …and the warmed preview is byte-identical to the cold one
        let mut cold = shell();
        run(&mut cold, "corr Children.ID -> ID");
        run(&mut warm, "corr Children.ID -> ID");
        assert_eq!(run(&mut cold, "target"), run(&mut warm, "target"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_stats_show_store_lines_only_when_attached() {
        let mut sh = shell();
        let plain = run(&mut sh, "cache");
        assert!(!plain.contains("store:"), "{plain}");
        sh.session
            .attach_store(std::sync::Arc::new(clio_incr::MemStore::new()));
        let with_store = run(&mut sh, "cache");
        assert!(
            with_store.contains("store: mem (0 entries)"),
            "{with_store}"
        );
        assert!(with_store.contains("disk hits: 0"), "{with_store}");
        // with a store attached, eligible entries spill at insert time,
        // so an explicit `cache save` finds nothing left to write
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        assert!(run(&mut sh, "cache").contains("spills: "), "store line");
        assert!(
            sh.session.cache().store().expect("attached").stats().spills > 0,
            "insert-time spill"
        );
        assert_eq!(run(&mut sh, "cache save"), "saved 0 entry(ies)\n");
    }

    #[test]
    fn db_save_load_round_trips_the_session_source() {
        let dir = std::env::temp_dir().join(format!("clio-engine-db-{}", std::process::id()));
        let dir_s = dir.display().to_string();
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        assert!(run(&mut sh, "db").contains("backend: memory"));
        let saved = run(&mut sh, &format!("db save {dir_s}"));
        assert_eq!(saved, format!("saved 5 relation(s) to {dir_s}\n"));
        assert!(dir.join("_target.txt").exists());

        // capture the in-memory answers, then reload from disk
        let source_mem = run(&mut sh, "source");
        let show_mem = run(&mut sh, "show Children");
        let loaded = run(&mut sh, &format!("db load {dir_s}"));
        assert!(loaded.starts_with("loaded "), "{loaded}");
        let stats = run(&mut sh, "db");
        assert!(stats.contains("backend: paged ("), "{stats}");
        assert!(stats.contains("stored index: yes"), "{stats}");
        // paged answers are byte-identical to the in-memory ones
        assert_eq!(run(&mut sh, "source"), source_mem);
        assert_eq!(run(&mut sh, "show Children"), show_mem);
        // the reloaded session still maps end to end
        assert!(run(&mut sh, "corr Children.ID -> ID").contains("ok"));
        assert!(run(&mut sh, "corr Children.name -> name").contains("ok"));
        assert!(run(&mut sh, "target").contains("Maya"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn db_errors_are_reported_not_fatal() {
        let mut sh = shell();
        let out = run(&mut sh, "db load /nonexistent/clio-db");
        assert!(out.starts_with("error:"), "{out}");
        // the session survives a failed load untouched
        assert!(run(&mut sh, "db").contains("backend: memory"));
        assert!(run(&mut sh, "db wat").starts_with("error: unknown db subcommand"));
        assert!(run(&mut sh, "db save").starts_with("error: usage: db save <dir>"));
    }

    #[test]
    fn trace_command_mirrors_trace_filter() {
        let _guard = obs_lock();
        let mut sh = shell();
        clio_obs::clear_spans();
        // with tracing off there is nothing to show, only a hint
        let s = run(&mut sh, "trace");
        assert!(s.contains("no spans recorded"), "{s}");
        clio_obs::set_trace_enabled(true);
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        let all = run(&mut sh, "trace");
        assert!(all.contains("mapping.evaluate"), "{all}");
        let filtered = run(&mut sh, "trace mapping.evaluate");
        assert!(filtered.contains("mapping.evaluate"), "{filtered}");
        assert!(!filtered.contains("mapping.examples"), "{filtered}");
        let none = run(&mut sh, "trace zzz-not-a-span");
        assert!(none.contains("no spans matching"), "{none}");
        clio_obs::set_trace_enabled(false);
        clio_obs::clear_spans();
        clio_obs::clear_histograms();
        clio_obs::clear_events();
    }

    /// The in-shell `trace <name>` and the `--trace-filter <name>` exit
    /// tree share one renderer, so a filter matching nothing must
    /// produce the same explicit line from both entry points,
    /// byte-for-byte.
    #[test]
    fn no_match_filter_agrees_across_entry_points() {
        let _guard = obs_lock();
        let mut sh = shell();
        clio_obs::clear_spans();
        clio_obs::set_trace_enabled(true);
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        let shell_line = run(&mut sh, "trace zzz-not-a-span");
        // what finish_reports prints for --trace-filter at exit
        let records = clio_obs::snapshot_spans();
        let exit_line = clio_obs::render_tree_filtered(&records, "zzz-not-a-span");
        assert_eq!(shell_line, exit_line);
        assert_eq!(shell_line, "trace: no spans matching `zzz-not-a-span`\n");
        clio_obs::set_trace_enabled(false);
        clio_obs::clear_spans();
        clio_obs::clear_histograms();
        clio_obs::clear_events();
    }

    #[test]
    fn profile_spans_lists_top_spans_with_percentiles() {
        let _guard = obs_lock();
        let mut sh = shell();
        clio_obs::clear_spans();
        clio_obs::clear_histograms();
        let hint = run(&mut sh, "profile spans");
        assert!(hint.contains("no spans recorded"), "{hint}");
        assert!(hint.contains("--trace-out"), "{hint}");
        clio_obs::set_trace_enabled(true);
        run(&mut sh, "corr Children.ID -> ID");
        run(&mut sh, "target");
        clio_obs::set_trace_enabled(false);
        let out = run(&mut sh, "profile spans 3");
        assert!(out.starts_with("profile: "), "{out}");
        assert!(out.contains("top 3 by self time"), "{out}");
        assert!(
            out.lines().count() <= 4,
            "header plus at most 3 rows: {out}"
        );
        assert!(out.contains("p50 "), "{out}");
        // the plain form defaults to the top 10
        let all = run(&mut sh, "profile spans");
        assert!(
            all.contains("top 10 by self time") || all.contains("by self time"),
            "{all}"
        );
        clio_obs::clear_spans();
        clio_obs::clear_histograms();
        clio_obs::clear_events();
    }
}
