//! `clio-cli` — an interactive mapping-refinement shell over the Clio
//! reproduction. See the `clio` binary and [`engine::Shell`].
#![warn(missing_docs)]

pub mod engine;
