//! `clio-cli` — an interactive mapping-refinement shell over the Clio
//! reproduction. See the `clio` binary and [`engine::Shell`].
//!
//! The crate splits the shell into layers: [`command`] parses one
//! line into a typed [`command::Command`], [`engine::Shell`] dispatches
//! it against a session, [`config::CliConfig`] parses the binary's
//! argv, and [`serve`] bridges the same shell onto `clio-net`'s framed
//! TCP protocol (the `serve` / `connect` modes; see docs/service.md).
//! The parsing and dispatch layers are pure (no process exit, no I/O
//! besides the session), so every layer is unit-testable.
#![warn(missing_docs)]

pub mod command;
pub mod config;
pub mod engine;
pub mod serve;
