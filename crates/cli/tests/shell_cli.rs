//! End-to-end tests of the `clio-shell` binary: flag handling, the
//! `--metrics`/`--trace` observability surface, and counter determinism.
//! Each test runs the real binary in a subprocess, so the global counters
//! of concurrent tests never interfere.

use std::path::PathBuf;
use std::process::{Command, Output};

fn shell() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clio-shell"))
}

fn demo_script() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts/demo.clio")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clio_shell_cli_{}_{name}", std::process::id()))
}

fn run_demo_with_metrics(metrics: &PathBuf) -> Output {
    shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--metrics")
        .arg(metrics)
        .output()
        .expect("binary runs")
}

/// Zero out `cache.saved_ns` in a metrics snapshot: it sums measured
/// recompute times served from cache, so it is wall-clock-derived and
/// legitimately varies run to run even when every other counter is
/// deterministic.
fn normalize_saved_ns(json: &str) -> String {
    let key = "\"cache.saved_ns\": ";
    let Some(start) = json.find(key).map(|i| i + key.len()) else {
        return json.to_owned();
    };
    let end = start
        + json[start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(0);
    format!("{}0{}", &json[..start], &json[end..])
}

/// The integer value of `"name": <n>` in a JSON snapshot.
fn counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let start = json
        .find(&key)
        .unwrap_or_else(|| panic!("`{name}` in {json}"))
        + key.len();
    let digits: String = json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("counter value")
}

#[test]
fn scripted_run_emits_metrics_json_with_nonzero_work_counters() {
    let path = tmp_path("metrics.json");
    let out = run_demo_with_metrics(&path);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"counters\""), "{json}");
    assert!(counter(&json, "join.probes") > 0, "{json}");
    assert!(counter(&json, "subsumption.comparisons") > 0, "{json}");
    assert!(counter(&json, "scan.tuples") > 0, "{json}");
    assert!(counter(&json, "chase.alternatives_generated") > 0, "{json}");
}

#[test]
fn counters_are_deterministic_across_identical_runs() {
    let (p1, p2) = (tmp_path("det1.json"), tmp_path("det2.json"));
    let o1 = run_demo_with_metrics(&p1);
    let o2 = run_demo_with_metrics(&p2);
    assert!(o1.status.success() && o2.status.success());
    let j1 = std::fs::read_to_string(&p1).expect("first report");
    let j2 = std::fs::read_to_string(&p2).expect("second report");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
    // without --trace the report holds only counters, no timings, so two
    // identical seeded runs must produce byte-identical documents (modulo
    // the one wall-clock-derived counter)
    assert_eq!(normalize_saved_ns(&j1), normalize_saved_ns(&j2));
}

#[test]
fn trace_flag_prints_span_tree() {
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--trace")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace:"), "{stdout}");
    assert!(stdout.contains("- mapping.evaluate"), "{stdout}");
    // nested child spans are indented under their parent
    assert!(stdout.contains("  - fd.outer_join"), "{stdout}");
}

#[test]
fn stats_command_reports_counters_in_shell() {
    let path = tmp_path("stats.json");
    let out = run_demo_with_metrics(&path);
    std::fs::remove_file(&path).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("join.probes"), "{stdout}");
    assert!(
        stdout.contains("illustration.greedy_iterations"),
        "{stdout}"
    );
}

#[test]
fn help_flag_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = shell().arg(flag).output().expect("binary runs");
        assert!(out.status.success(), "{flag}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{stdout}");
        assert!(stdout.contains("--metrics"), "{stdout}");
        assert!(stdout.contains("commands:"), "{stdout}");
    }
}

#[test]
fn metrics_json_is_byte_identical_across_thread_counts() {
    let (p1, p4) = (tmp_path("thr1.json"), tmp_path("thr4.json"));
    let mut runs = Vec::new();
    for (path, threads) in [(&p1, "1"), (&p4, "4")] {
        let out = shell()
            .arg("--script")
            .arg(demo_script())
            .arg("--metrics")
            .arg(path)
            .arg("--threads")
            .arg(threads)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        runs.push(std::fs::read_to_string(path).expect("metrics file written"));
        std::fs::remove_file(path).ok();
    }
    // counters are per-work-unit sums, independent of scheduling, so the
    // report must not change with the worker pool size (modulo the one
    // wall-clock-derived counter)
    assert_eq!(
        normalize_saved_ns(&runs[0]),
        normalize_saved_ns(&runs[1]),
        "counters drifted with thread count"
    );
}

#[test]
fn trace_filter_restricts_span_tree() {
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--trace-filter")
        .arg("chase")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("- op.chase"), "{stdout}");
    // unrelated top-level spans are filtered out of the tree
    assert!(!stdout.contains("- mapping.evaluate"), "{stdout}");
}

#[test]
fn bad_threads_value_exits_2() {
    for bad in ["0", "-1", "many"] {
        let out = shell()
            .arg("--threads")
            .arg(bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--threads {bad}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("positive integer"), "{bad}: {stderr}");
    }
}

#[test]
fn missing_flag_values_exit_2() {
    for flag in [
        "--script",
        "--source",
        "--target",
        "--synthetic",
        "--metrics",
        "--trace-filter",
        "--trace-out",
        "--slow-ms",
        "--threads",
        "--sessions",
        "--cache-dir",
        "--cache-policy",
    ] {
        let out = shell().arg(flag).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{flag}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("requires a value"), "{flag}: {stderr}");
    }
}

#[test]
fn bad_cache_policy_value_exits_2_with_one_usage_line() {
    let out = shell()
        .arg("--cache-policy")
        .arg("mru")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr,
        "--cache-policy expects `lru` or `cost`, got `mru`\n"
    );
}

#[test]
fn bad_cache_limit_value_is_a_one_line_shell_error() {
    let script = tmp_path("bad_limit.clio");
    std::fs::write(&script, "cache limit lots\ncache limit\nquit\n").expect("script written");
    let out = shell()
        .arg("--script")
        .arg(&script)
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    // shell parse errors are reported inline, not fatal
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("error: expected a byte budget, got `lots`\n"),
        "{stdout}"
    );
    assert!(
        stdout.contains("error: usage: cache limit <bytes>\n"),
        "{stdout}"
    );
}

#[test]
fn cache_policy_flag_switches_the_session_policy() {
    let script = tmp_path("policy_flag.clio");
    std::fs::write(&script, "cache policy\nquit\n").expect("script written");
    for (flag_value, expect) in [("lru", "policy: lru\n"), ("cost", "policy: cost\n")] {
        let out = shell()
            .arg("--script")
            .arg(&script)
            .arg("--cache-policy")
            .arg(flag_value)
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(expect),
            "--cache-policy {flag_value}: {stdout}"
        );
    }
    std::fs::remove_file(&script).ok();
}

#[test]
fn unknown_flag_exits_2() {
    let out = shell().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn bad_sessions_value_exits_2() {
    for bad in ["0", "-1", "many"] {
        let out = shell()
            .arg("--sessions")
            .arg(bad)
            .arg(demo_script())
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "--sessions {bad}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("positive integer"), "{bad}: {stderr}");
    }
}

#[test]
fn sessions_flag_misuse_exits_2() {
    // --sessions without script arguments
    let out = shell()
        .arg("--sessions")
        .arg("2")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires positional script"));
    // positional scripts conflict with --script
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg(demo_script())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("conflicts"));
    // the first unreadable script (by input order) is the one reported
    let out = shell()
        .arg("--sessions")
        .arg("2")
        .arg("/nonexistent/first.clio")
        .arg("/nonexistent/second.clio")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("first.clio"), "{stderr}");
    assert!(!stderr.contains("second.clio"), "{stderr}");
}

/// Split batch-mode stdout into per-session chunks by the
/// `=== session <i>: <path> ===` headers, returning the chunk bodies.
fn session_chunks(stdout: &str) -> Vec<String> {
    let mut chunks: Vec<String> = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("=== session ") && line.ends_with(" ===") {
            chunks.push(String::new());
        } else if let Some(last) = chunks.last_mut() {
            last.push_str(line);
            last.push('\n');
        }
    }
    chunks
}

#[test]
fn concurrent_sessions_match_serial_run_byte_for_byte() {
    let serial = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--threads")
        .arg("1")
        .output()
        .expect("binary runs");
    assert!(serial.status.success());
    let serial_stdout = String::from_utf8_lossy(&serial.stdout).into_owned();
    let batch = shell()
        .arg("--sessions")
        .arg("4")
        .args([demo_script(), demo_script(), demo_script(), demo_script()])
        .arg("--threads")
        .arg("1")
        .output()
        .expect("binary runs");
    assert!(
        batch.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&batch.stderr)
    );
    let chunks = session_chunks(&String::from_utf8_lossy(&batch.stdout));
    assert_eq!(chunks.len(), 4, "one chunk per session");
    for (i, chunk) in chunks.iter().enumerate() {
        assert_eq!(chunk, &serial_stdout, "session {i} diverged from serial");
    }
}

#[test]
fn sessions_metrics_json_reports_per_session_counters() {
    let metrics = tmp_path("sessions_metrics.json");
    let out = shell()
        .arg("--sessions")
        .arg("2")
        .args([demo_script(), demo_script()])
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&metrics).expect("metrics file written");
    std::fs::remove_file(&metrics).ok();
    assert!(json.contains("\"sessions\""), "{json}");
    // per-session tables exist and did real work
    let s0 = json.find("\"0\": {").expect("session 0 table");
    let s1 = json.find("\"1\": {").expect("session 1 table");
    let (a, b) = (&json[s0..s1], &json[s1..]);
    assert!(counter(a, "join.probes") > 0, "{a}");
    // identical scripts over one snapshot do identical per-session work
    assert_eq!(counter(a, "join.probes"), counter(b, "join.probes"));
    assert_eq!(counter(a, "scan.tuples"), counter(b, "scan.tuples"));
    // and the global table holds the sum of both sessions
    let global = &json[..s0];
    assert_eq!(
        counter(global, "join.probes"),
        2 * counter(a, "join.probes")
    );
}

#[test]
fn no_cache_flag_leaves_stdout_byte_identical() {
    // the evaluation cache must be invisible in every rendered table:
    // the same script with and without --no-cache prints the same bytes
    // (no --metrics here, so the `stats` table is all-zero either way)
    let cached = shell()
        .arg("--script")
        .arg(demo_script())
        .output()
        .expect("binary runs");
    let uncached = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    assert!(cached.status.success() && uncached.status.success());
    assert_eq!(
        String::from_utf8_lossy(&cached.stdout),
        String::from_utf8_lossy(&uncached.stdout),
        "--no-cache changed visible output"
    );
}

#[test]
fn cache_command_and_metrics_report_hits() {
    let script = tmp_path("cache_script.clio");
    std::fs::write(
        &script,
        "corr Children.ID -> ID\ncorr Children.name -> name\ntarget\ntarget\ncache\nquit\n",
    )
    .expect("script written");
    let metrics = tmp_path("cache_metrics.json");
    let out = shell()
        .arg("--script")
        .arg(&script)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache: on"), "{stdout}");
    assert!(!stdout.contains("hits: 0 "), "{stdout}");
    let json = std::fs::read_to_string(&metrics).expect("metrics file written");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&json, "cache.hits") > 0, "{json}");
    assert!(counter(&json, "cache.misses") > 0, "{json}");
    // same script under --no-cache: the command reports off, counters stay 0
    let out = shell()
        .arg("--script")
        .arg(&script)
        .arg("--metrics")
        .arg(&metrics)
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache: off"), "{stdout}");
    let json = std::fs::read_to_string(&metrics).expect("metrics file written");
    std::fs::remove_file(&metrics).ok();
    assert_eq!(counter(&json, "cache.hits"), 0, "{json}");
    assert_eq!(counter(&json, "cache.misses"), 0, "{json}");
}

/// A mapping-building script with no introspection commands (`stats`,
/// `cache`), so its stdout must be byte-identical no matter how the
/// cache is served — memory, disk, or not at all.
fn write_persistence_script(name: &str) -> PathBuf {
    let script = tmp_path(name);
    std::fs::write(
        &script,
        "corr Children.ID -> ID\ncorr Children.name -> name\n\
         corr Parents.affiliation -> affiliation\nconfirm 1\n\
         target\ntarget\nillustration\nmapping\nsql\nquit\n",
    )
    .expect("script written");
    script
}

fn run_with_cache_dir(script: &PathBuf, dir: Option<&PathBuf>, metrics: &PathBuf) -> Output {
    let mut cmd = shell();
    cmd.arg("--script")
        .arg(script)
        .arg("--metrics")
        .arg(metrics);
    if let Some(dir) = dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    cmd.output().expect("binary runs")
}

#[test]
fn cache_dir_restart_serves_disk_hits_with_identical_stdout() {
    let script = write_persistence_script("persist.clio");
    let dir = tmp_path("persist_cache_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = tmp_path("persist_metrics.json");

    // baseline: no cache dir at all
    let baseline = run_with_cache_dir(&script, None, &metrics);
    assert!(baseline.status.success());

    // cold: populates the directory, nothing to hit yet
    let cold = run_with_cache_dir(&script, Some(&dir), &metrics);
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_json = std::fs::read_to_string(&metrics).expect("cold metrics");
    assert!(counter(&cold_json, "cache.spills") > 0, "{cold_json}");
    assert_eq!(counter(&cold_json, "cache.disk_hits"), 0, "{cold_json}");
    assert!(counter(&cold_json, "cache.disk_bytes") > 0, "{cold_json}");

    // warm: a NEW process over the same directory is served from disk
    let warm = run_with_cache_dir(&script, Some(&dir), &metrics);
    assert!(warm.status.success());
    let warm_json = std::fs::read_to_string(&metrics).expect("warm metrics");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&warm_json, "cache.disk_hits") > 0, "{warm_json}");
    assert_eq!(counter(&warm_json, "cache.load_errors"), 0, "{warm_json}");

    // persistence must be invisible in the rendered output
    let b = String::from_utf8_lossy(&baseline.stdout);
    let c = String::from_utf8_lossy(&cold.stdout);
    let w = String::from_utf8_lossy(&warm.stdout);
    assert_eq!(b, c, "--cache-dir (cold) changed visible output");
    assert_eq!(c, w, "disk-warm restart changed visible output");

    std::fs::remove_file(&script).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_cache_files_degrade_to_a_cold_run() {
    let script = write_persistence_script("corrupt.clio");
    let dir = tmp_path("corrupt_cache_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = tmp_path("corrupt_metrics.json");

    let cold = run_with_cache_dir(&script, Some(&dir), &metrics);
    assert!(cold.status.success());

    // flip bytes in every spilled file: truncate one, scribble the rest
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "clc"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "cold run spilled nothing");
    for (i, file) in files.iter().enumerate() {
        if i == 0 {
            let bytes = std::fs::read(file).expect("read entry");
            std::fs::write(file, &bytes[..bytes.len() / 2]).expect("truncate");
        } else {
            std::fs::write(file, b"not a cache entry").expect("scribble");
        }
    }

    let warm = run_with_cache_dir(&script, Some(&dir), &metrics);
    assert!(
        warm.status.success(),
        "corrupt cache dir must not kill the run: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let json = std::fs::read_to_string(&metrics).expect("metrics");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&json, "cache.load_errors") > 0, "{json}");
    assert_eq!(counter(&json, "cache.disk_hits"), 0, "{json}");
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout),
        "corruption changed visible output"
    );

    std::fs::remove_file(&script).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unusable_cache_dir_degrades_to_an_inert_store() {
    let script = write_persistence_script("inert.clio");
    // point --cache-dir at a regular FILE: the store cannot create or
    // use the directory and must degrade, not fail the run
    let blocker = tmp_path("inert_not_a_dir");
    std::fs::write(&blocker, b"occupied").expect("blocker written");
    let metrics = tmp_path("inert_metrics.json");

    let out = run_with_cache_dir(&script, Some(&blocker), &metrics);
    assert!(
        out.status.success(),
        "unusable --cache-dir must not kill the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&metrics).expect("metrics");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&json, "cache.load_errors") > 0, "{json}");
    assert_eq!(counter(&json, "cache.spills"), 0, "{json}");

    let baseline = run_with_cache_dir(&script, None, &metrics);
    std::fs::remove_file(&metrics).ok();
    assert_eq!(
        String::from_utf8_lossy(&baseline.stdout),
        String::from_utf8_lossy(&out.stdout),
        "degraded store changed visible output"
    );

    std::fs::remove_file(&script).ok();
    std::fs::remove_file(&blocker).ok();
}

#[test]
fn batch_sessions_share_one_cache_dir() {
    let script = write_persistence_script("batch_persist.clio");
    let dir = tmp_path("batch_cache_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = tmp_path("batch_metrics.json");

    let out = shell()
        .arg("--sessions")
        .arg("2")
        .args([&script, &script])
        .arg("--cache-dir")
        .arg(&dir)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&metrics).expect("metrics");
    assert!(counter(&json, "cache.spills") > 0, "{json}");

    // a second batch over the same directory is disk-warm
    let out2 = shell()
        .arg("--sessions")
        .arg("2")
        .args([&script, &script])
        .arg("--cache-dir")
        .arg(&dir)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("binary runs");
    assert!(out2.status.success());
    let json2 = std::fs::read_to_string(&metrics).expect("metrics");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&json2, "cache.disk_hits") > 0, "{json2}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out2.stdout),
        "disk-warm batch changed visible output"
    );

    std::fs::remove_file(&script).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_shell_command_prints_live_span_tree() {
    let script = tmp_path("trace_script.clio");
    std::fs::write(
        &script,
        "corr Children.ID -> ID\ntarget\ntrace mapping.evaluate\nquit\n",
    )
    .expect("script written");
    // with --trace the in-shell `trace <name>` command shows the spans
    // collected so far, filtered like --trace-filter
    let out = shell()
        .arg("--script")
        .arg(&script)
        .arg("--trace")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("- mapping.evaluate"), "{stdout}");
    // without tracing enabled the command explains how to turn it on
    let out = shell()
        .arg("--script")
        .arg(&script)
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no spans recorded"), "{stdout}");
}

/// The span count from the `trace: <n> spans on <m> threads` header.
fn span_count(stdout: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("trace: "))
        .unwrap_or_else(|| panic!("no trace header in {stdout}"));
    line["trace: ".len()..]
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable trace header `{line}`"))
}

#[test]
fn trace_out_exports_one_chrome_event_per_span() {
    let trace_path = tmp_path("events.jsonl");
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--trace")
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let jsonl = std::fs::read_to_string(&trace_path).expect("trace-out written");
    std::fs::remove_file(&trace_path).ok();
    // one complete event per finished span — counts must agree exactly
    let events = jsonl.lines().count() as u64;
    assert_eq!(events, span_count(&stdout), "{stdout}");
    // every line is a self-contained Chrome trace-event object
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in [
            "\"ph\": \"X\"",
            "\"name\":",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":",
        ] {
            assert!(line.contains(key), "missing {key}: {line}");
        }
    }
}

#[test]
fn trace_out_alone_collects_without_printing_the_tree() {
    let trace_path = tmp_path("quiet_events.jsonl");
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("trace:"), "{stdout}");
    let jsonl = std::fs::read_to_string(&trace_path).expect("trace-out written");
    std::fs::remove_file(&trace_path).ok();
    assert!(jsonl.lines().count() > 0, "no events exported");
}

#[test]
fn metrics_dash_prints_report_to_stdout_with_histograms() {
    let out = shell()
        .arg("--script")
        .arg(demo_script())
        .arg("--trace-out")
        .arg(tmp_path("dash_events.jsonl"))
        .arg("--metrics")
        .arg("-")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(tmp_path("dash_events.jsonl")).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    // the report follows the shell output on stdout
    let report_at = stdout
        .find("{\n  \"counters\"")
        .expect("JSON report on stdout");
    assert!(stdout[..report_at].contains("clio>"), "{stdout}");
    let report = &stdout[report_at..];
    assert!(report.contains("\"counters\""), "{report}");
    // tracing is on (--trace-out), so per-span-name histograms appear
    assert!(report.contains("\"histograms\""), "{report}");
    assert!(report.contains("\"mapping.evaluate\""), "{report}");
    assert!(report.contains("\"p99_ns\""), "{report}");
    assert!(counter(report, "join.probes") > 0, "{report}");
}

#[test]
fn trace_command_and_trace_filter_agree_on_no_match() {
    let script = tmp_path("nomatch.clio");
    std::fs::write(&script, "corr Children.ID -> ID\ntarget\ntrace zzz\nquit\n")
        .expect("script written");
    let in_shell = shell()
        .arg("--script")
        .arg(&script)
        .arg("--trace")
        .output()
        .expect("binary runs");
    let via_flag = shell()
        .arg("--script")
        .arg(&script)
        .arg("--trace-filter")
        .arg("zzz")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(in_shell.status.success() && via_flag.status.success());
    let needle = "trace: no spans matching `zzz`\n";
    let a = String::from_utf8_lossy(&in_shell.stdout);
    let b = String::from_utf8_lossy(&via_flag.stdout);
    assert!(a.contains(needle), "{a}");
    assert!(b.contains(needle), "{b}");
}

#[test]
fn slow_ms_flag_warns_about_slow_spans_on_stderr() {
    // threshold 1ms: building the value index over 80k synthetic rows
    // comfortably exceeds it (the tiny paper dataset would not)
    let script = tmp_path("slow.clio");
    std::fs::write(&script, "quit\n").expect("script written");
    let out = shell()
        .arg("--script")
        .arg(&script)
        .arg("--synthetic")
        .arg("chain,4,20000")
        .arg("--slow-ms")
        .arg("1")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clio: slow span "), "{stderr}");
    assert!(stderr.contains("threshold 1.000ms"), "{stderr}");
    // rate limiting: at most WARN_LIMIT warning lines, then one summary
    let warnings = stderr
        .lines()
        .filter(|l| l.starts_with("clio: slow span "))
        .count();
    assert!(warnings <= 5, "{stderr}");
}

#[test]
fn slow_ms_env_fallback_enables_collection() {
    let script = tmp_path("slowenv.clio");
    std::fs::write(
        &script,
        "corr Children.ID -> ID\ntarget\ntrace mapping.evaluate\nquit\n",
    )
    .expect("script written");
    let out = shell()
        .arg("--script")
        .arg(&script)
        .env("CLIO_SLOW_MS", "60000")
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // spans were collected (threshold too high to warn), so the in-shell
    // trace command has something to show
    assert!(stdout.contains("- mapping.evaluate"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("slow span"), "{stderr}");
}

#[test]
fn profile_spans_command_ranks_spans_in_shell() {
    let script = tmp_path("profile.clio");
    std::fs::write(
        &script,
        "corr Children.ID -> ID\ntarget\nprofile spans 5\nquit\n",
    )
    .expect("script written");
    let traced = shell()
        .arg("--script")
        .arg(&script)
        .arg("--trace-out")
        .arg(tmp_path("profile_events.jsonl"))
        .output()
        .expect("binary runs");
    assert!(traced.status.success());
    std::fs::remove_file(tmp_path("profile_events.jsonl")).ok();
    let stdout = String::from_utf8_lossy(&traced.stdout);
    assert!(stdout.contains("profile: "), "{stdout}");
    assert!(stdout.contains("top 5 by self time"), "{stdout}");
    assert!(stdout.contains("p50 "), "{stdout}");
    // without any timing flag the command explains how to enable it
    let cold = shell()
        .arg("--script")
        .arg(&script)
        .output()
        .expect("binary runs");
    std::fs::remove_file(&script).ok();
    assert!(cold.status.success());
    let stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(stdout.contains("--trace-out"), "{stdout}");
}
