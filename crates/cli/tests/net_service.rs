//! End-to-end tests of the networked session service: `clio-shell
//! serve` + `connect` over loopback. Each test runs the real binary so
//! server state, counters, and exit codes are the production paths.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use clio_net::{frame, Client};

fn shell() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clio-shell"))
}

fn demo_script() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts/demo.clio")
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clio_net_service_{}_{name}", std::process::id()))
}

/// The integer value of `"name": <n>` in a JSON snapshot.
fn counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let start = json
        .find(&key)
        .unwrap_or_else(|| panic!("`{name}` in {json}"))
        + key.len();
    let digits: String = json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("counter value")
}

/// A running `clio-shell serve` subprocess plus its announced address.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawn `clio-shell serve --port 0 <extra args>` and wait for its
    /// `listening on <addr>` announcement.
    fn start(extra: &[&str]) -> ServerProc {
        let mut child = shell()
            .arg("serve")
            .args(["--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("server announces its address");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .trim()
            .to_owned();
        ServerProc { child, addr }
    }

    /// Ask the server to stop (protocol-level `shutdown`) and assert a
    /// clean exit.
    fn shutdown(mut self) {
        let mut c = Client::connect(&self.addr).expect("connect for shutdown");
        let resp = c.request("shutdown").expect("shutdown request");
        assert_eq!(resp.as_deref(), Some("shutting down\n"));
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "server exit status: {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        // Only reached when a test failed before calling shutdown().
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// A raw loopback socket with a test-hang guard.
fn raw_socket(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

#[test]
fn concurrent_clients_match_the_serial_script_run_byte_for_byte() {
    let serial = shell()
        .arg("--script")
        .arg(demo_script())
        .output()
        .expect("serial run");
    assert!(serial.status.success());

    let server = ServerProc::start(&["--max-conns", "4", "--threads", "1"]);
    let addr = &server.addr;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(move || {
                    shell()
                        .arg("connect")
                        .arg(addr)
                        .arg("--script")
                        .arg(demo_script())
                        .output()
                        .expect("client run")
                })
            })
            .collect();
        for handle in handles {
            let out = handle.join().expect("client thread");
            assert!(
                out.status.success(),
                "stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_eq!(
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&serial.stdout),
                "networked output must be byte-identical to the local script run"
            );
        }
    });
    server.shutdown();
}

#[test]
fn sequential_clients_share_one_store_and_report_per_connection_sessions() {
    let metrics = tmp_path("share.json");
    let server = ServerProc::start(&["--max-conns", "2", "--metrics", metrics.to_str().unwrap()]);
    for _ in 0..2 {
        let out = shell()
            .arg("connect")
            .arg(&server.addr)
            .arg("--script")
            .arg(demo_script())
            .output()
            .expect("client run");
        assert!(out.status.success());
    }
    server.shutdown();
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    std::fs::remove_file(&metrics).ok();
    assert_eq!(counter(&json, "net.accepted"), 3, "{json}");
    assert_eq!(counter(&json, "net.frame_errors"), 0, "{json}");
    assert_eq!(counter(&json, "net.active"), 0, "all connections drained");
    assert!(counter(&json, "net.frames") > 0, "{json}");
    assert!(counter(&json, "cache.hits") > 0, "{json}");
    assert!(
        counter(&json, "cache.spills") > 0,
        "the first client spills into the shared store: {json}"
    );
    assert!(
        counter(&json, "cache.disk_hits") > 0,
        "the second client warms from the first client's spills: {json}"
    );
    // Per-connection counter tables are keyed by connection label.
    assert!(json.contains("\"conn.0\""), "{json}");
    assert!(json.contains("\"conn.1\""), "{json}");
}

#[test]
fn malformed_frames_are_answered_and_the_connection_survives() {
    let metrics = tmp_path("frames.json");
    let server = ServerProc::start(&["--metrics", metrics.to_str().unwrap()]);
    let mut raw = raw_socket(&server.addr);

    // Garbage bytes: one error frame per bad version byte.
    raw.write_all(&[0xde, 0xad]).expect("garbage write");
    for byte in ["0xde", "0xad"] {
        let err = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
            .expect("error frame")
            .expect("connection stays open");
        assert_eq!(err, format!("error: unsupported protocol version {byte}\n"));
    }

    // An oversized declared frame is drained and answered.
    let oversized = frame::MAX_FRAME_BYTES + 1;
    raw.write_all(&[frame::PROTOCOL_VERSION]).unwrap();
    raw.write_all(&(oversized as u32).to_be_bytes()).unwrap();
    raw.write_all(&vec![b'x'; oversized]).unwrap();
    let err = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
        .expect("error frame")
        .expect("connection stays open");
    assert_eq!(
        err,
        format!(
            "error: frame length {oversized} exceeds the {}-byte limit\n",
            frame::MAX_FRAME_BYTES
        )
    );

    // The same connection still answers well-formed requests.
    frame::write_frame(&mut raw, "status").expect("valid frame");
    let resp = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
        .expect("response")
        .expect("connection stays open");
    assert!(resp.contains("workspaces:"), "{resp}");

    // A torn frame (EOF mid-payload) is answered best-effort and closes
    // the connection.
    let mut torn = raw_socket(&server.addr);
    torn.write_all(&[frame::PROTOCOL_VERSION]).unwrap();
    torn.write_all(&10u32.to_be_bytes()).unwrap();
    torn.write_all(b"hal").unwrap();
    torn.shutdown(std::net::Shutdown::Write).unwrap();
    let err = frame::read_frame(&mut torn, frame::MAX_FRAME_BYTES)
        .expect("error frame")
        .expect("best-effort answer");
    assert_eq!(err, "error: truncated frame payload (3 of 10 bytes)\n");
    let mut rest = Vec::new();
    torn.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "connection closed after the torn frame");

    drop(raw);
    server.shutdown();
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    std::fs::remove_file(&metrics).ok();
    assert_eq!(counter(&json, "net.frame_errors"), 4, "{json}");
    assert!(counter(&json, "net.frames") > 0, "{json}");
}

#[test]
fn idle_timeout_closes_the_connection_and_counts() {
    let metrics = tmp_path("idle.json");
    let server = ServerProc::start(&["--idle-ms", "150", "--metrics", metrics.to_str().unwrap()]);
    let mut raw = raw_socket(&server.addr);
    let notice = frame::read_frame(&mut raw, frame::MAX_FRAME_BYTES)
        .expect("timeout notice")
        .expect("server answers before closing");
    assert_eq!(notice, "error: idle timeout, closing connection\n");
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "connection closed after the timeout");
    server.shutdown();
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    std::fs::remove_file(&metrics).ok();
    assert!(counter(&json, "net.timeouts") >= 1, "{json}");
}

#[test]
fn net_flag_strictness_exits_2_with_one_line_errors() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["serve", "--port", "zero"],
            "--port expects a port number (0-65535), got `zero`",
        ),
        (
            &["serve", "--port", "70000"],
            "--port expects a port number (0-65535), got `70000`",
        ),
        (
            &["serve", "--max-conns", "0"],
            "--max-conns expects a positive integer, got `0`",
        ),
        (
            &["serve", "--idle-ms", "x"],
            "--idle-ms expects a positive integer (milliseconds), got `x`",
        ),
        (
            &["connect"],
            "connect requires an <addr> argument (see --help)",
        ),
        (
            &["--port", "9090"],
            "--port requires serve mode (see --help)",
        ),
        (
            &["--max-conns", "2"],
            "--max-conns requires serve mode (see --help)",
        ),
        (
            &["serve", "--script", "x.clio"],
            "--script conflicts with serve mode (see --help)",
        ),
        (
            &["serve", "a.clio"],
            "serve mode takes no positional script arguments (see --help)",
        ),
        (
            &["connect", "127.0.0.1:1", "--sessions", "2"],
            "--sessions conflicts with connect mode (see --help)",
        ),
    ];
    for (args, want) in cases {
        let out = shell().args(*args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stderr).trim(),
            *want,
            "args: {args:?}"
        );
    }
}

#[test]
fn net_env_strictness_exits_2_with_one_line_errors() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "CLIO_PORT",
            "nope",
            "CLIO_PORT expects a port number (0-65535), got `nope`",
        ),
        (
            "CLIO_MAX_CONNS",
            "0",
            "CLIO_MAX_CONNS expects a positive integer, got `0`",
        ),
        (
            "CLIO_IDLE_MS",
            "-1",
            "CLIO_IDLE_MS expects a positive integer (milliseconds), got `-1`",
        ),
    ];
    for (key, value, want) in cases {
        let out = shell()
            .arg("serve")
            .env(key, value)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "env: {key}={value}");
        assert_eq!(
            String::from_utf8_lossy(&out.stderr).trim(),
            *want,
            "env: {key}={value}"
        );
    }
}
