//! End-to-end tests of the compiled `clio-shell` binary in `--script`
//! mode.

use std::io::Write as _;
use std::process::Command;

fn run_script(script: &str, extra_args: &[&str]) -> String {
    let path = std::env::temp_dir().join(format!(
        "clio_shell_script_{}_{}.txt",
        std::process::id(),
        script.len()
    ));
    let mut f = std::fs::File::create(&path).expect("temp script");
    f.write_all(script.as_bytes()).expect("write script");
    drop(f);
    let out = Command::new(env!("CARGO_BIN_EXE_clio-shell"))
        .args(extra_args)
        .arg("--script")
        .arg(&path)
        .output()
        .expect("binary runs");
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn paper_session_via_binary() {
    let out = run_script(
        "source\n\
         corr Children.ID -> ID\n\
         corr Children.name -> name\n\
         corr Parents.affiliation -> affiliation\n\
         confirm 2\n\
         target\n\
         sql\n\
         quit\n",
        &[],
    );
    assert!(out.contains("fk Children(mid) -> Parents(ID)"));
    assert!(out.contains("Maya"));
    assert!(out.contains("CREATE VIEW Kids AS"));
    assert!(out.contains("LEFT JOIN Parents"));
}

#[test]
fn synthetic_source_via_binary() {
    let out = run_script(
        "source\ncorr R0.p0 -> B0\ntarget\nquit\n",
        &["--synthetic", "chain,3,20"],
    );
    assert!(out.contains("R0(id: str not null"));
    assert!(out.contains("T.B0"));
}

#[test]
fn errors_do_not_kill_script_mode() {
    let out = run_script("bogus command\nhelp\nquit\n", &[]);
    assert!(out.contains("error: unknown command"));
    assert!(out.contains("commands:"));
}

#[test]
fn csv_source_via_binary() {
    // export the paper database, then load it back through --source
    let dir = std::env::temp_dir().join(format!("clio_shell_csv_{}", std::process::id()));
    let db = clio_datagen::paper::paper_database();
    clio_relational::csv::write_database(&db, &dir).expect("export");
    let out = run_script(
        "profile\ncorr Children.ID -> ID\ntarget\nquit\n",
        &[
            "--source",
            dir.to_str().unwrap(),
            "--target",
            "Kids (ID str not null, name str)",
        ],
    );
    std::fs::remove_dir_all(&dir).ok();
    assert!(out.contains("Children.ID"));
    assert!(out.contains("| 002"));
}
