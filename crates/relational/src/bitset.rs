//! A small growable bitset used for null masks and coverage sets.

use std::fmt;

/// A fixed-universe bitset backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// All-zero bitset over a universe of `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Bitset {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the universe empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Get bit `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is `self ⊆ other`?
    #[must_use]
    pub fn is_subset(&self, other: &Bitset) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Is `self ⊊ other`?
    #[must_use]
    pub fn is_strict_subset(&self, other: &Bitset) -> bool {
        self.is_subset(other) && self != other
    }

    /// Iterate indexes of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Build from the indexes of set bits.
    #[must_use]
    pub fn from_ones(len: usize, ones: &[usize]) -> Bitset {
        let mut b = Bitset::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitset{{{:?}}}", self.iter_ones().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn subset_relations() {
        let a = Bitset::from_ones(10, &[1, 3]);
        let b = Bitset::from_ones(10, &[1, 3, 7]);
        assert!(a.is_subset(&b));
        assert!(a.is_strict_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_strict_subset(&a));
    }

    #[test]
    fn iter_ones_ascending() {
        let b = Bitset::from_ones(70, &[69, 0, 33]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 33, 69]);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Bitset::from_ones(10, &[2, 4]);
        let b = Bitset::from_ones(10, &[4, 2]);
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn zero_length_universe() {
        let b = Bitset::new(0);
        assert_eq!(b.count(), 0);
        assert!(b.is_empty());
        assert!(b.is_subset(&Bitset::new(0)));
    }
}
