//! Expression AST, evaluation, and strongness analysis.
//!
//! Expressions serve three roles in the mapping framework:
//!
//! * **join predicates** labelling query-graph edges (must be *strong*),
//! * **selection predicates** in the source/target filters `C_S` / `C_T`,
//! * **value correspondences** computing target attribute values.
//!
//! Evaluation follows SQL three-valued semantics: comparisons involving
//! null are [`Truth::Unknown`]; arithmetic and `concat` propagate null.
//!
//! Expressions can be evaluated directly against a [`Scheme`] (resolving
//! column references by name each time) or *bound* once into a
//! [`BoundExpr`] with pre-resolved column indexes — the fast path used by
//! joins, full disjunction, and the benchmark harness.

use std::fmt;

use crate::error::{Error, Result};
use crate::funcs::FuncRegistry;
use crate::schema::{ColumnRef, Scheme};
use crate::truth::Truth;
use crate::value::Value;

/// Binary operators of the predicate/correspondence language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `||` string concatenation (null-propagating)
    Concat,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// SQL `LIKE` with `%` and `_` wildcards
    Like,
    /// logical `AND`
    And,
    /// logical `OR`
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Concat => "||",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Like => "LIKE",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Is this a comparison producing a truth value?
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Like
        )
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, e.g. `C.age`.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// `IS NULL` / `IS NOT NULL` — the only null-accepting predicate.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `true` renders as `IS NOT NULL`.
        negated: bool,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Scalar function call.
    Func {
        /// Function name (resolved against a [`FuncRegistry`]).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Searched `CASE WHEN c1 THEN v1 … [ELSE v] END`. The first branch
    /// whose condition evaluates to `True` wins; no match and no `ELSE`
    /// yields null (SQL semantics).
    Case {
        /// `(condition, value)` branches, in order.
        branches: Vec<(Expr, Expr)>,
        /// Optional `ELSE` value.
        otherwise: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (e1, …, en)` under three-valued semantics
    /// (equivalent to the Kleene disjunction of the equalities).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `true` renders as `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive, three-valued).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `true` renders as `NOT BETWEEN`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience: a column expression from `"Q.attr"` or `"attr"`.
    #[must_use]
    pub fn col(s: &str) -> Expr {
        Expr::Column(ColumnRef::parse_simple(s))
    }

    /// Convenience: a literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: equality of two columns — the common join-edge label.
    #[must_use]
    pub fn col_eq(a: &str, b: &str) -> Expr {
        Expr::binary(BinOp::Eq, Expr::col(a), Expr::col(b))
    }

    /// Convenience: build a binary node.
    #[must_use]
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience: conjunction of a list (empty list is `TRUE`).
    #[must_use]
    pub fn conjunction(exprs: Vec<Expr>) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::lit(true),
            Some(first) => it.fold(first, |acc, e| Expr::binary(BinOp::And, acc, e)),
        }
    }

    /// Collect every column reference (pre-order, with duplicates).
    #[must_use]
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c);
            }
        });
        out
    }

    /// The distinct qualifiers mentioned by the expression's columns.
    #[must_use]
    pub fn qualifiers(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in self.columns() {
            if let Some(q) = c.qualifier.as_deref() {
                if !out.contains(&q) {
                    out.push(q);
                }
            }
        }
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Neg(e) | Expr::Not(e) => e.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = otherwise {
                    e.walk(f);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
        }
    }

    /// Rewrite every column qualifier via `f` (used when mapping operators
    /// introduce relation copies: `Parents` → `Parents2`).
    #[must_use]
    pub fn map_qualifiers(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(c) => Expr::Column(ColumnRef {
                qualifier: c.qualifier.as_deref().map(f),
                name: c.name.clone(),
            }),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_qualifiers(f))),
            Expr::Not(e) => Expr::Not(Box::new(e.map_qualifiers(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map_qualifiers(f)),
                negated: *negated,
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_qualifiers(f)),
                right: Box::new(right.map_qualifiers(f)),
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.map_qualifiers(f)).collect(),
            },
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.map_qualifiers(f), v.map_qualifiers(f)))
                    .collect(),
                otherwise: otherwise.as_ref().map(|e| Box::new(e.map_qualifiers(f))),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map_qualifiers(f)),
                list: list.iter().map(|e| e.map_qualifiers(f)).collect(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map_qualifiers(f)),
                low: Box::new(low.map_qualifiers(f)),
                high: Box::new(high.map_qualifiers(f)),
                negated: *negated,
            },
        }
    }

    /// Bind against a scheme: resolve all column references to indexes.
    pub fn bind(&self, scheme: &Scheme) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Column(c) => BoundExpr::Column(scheme.resolve(c)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Neg(e) => BoundExpr::Neg(Box::new(e.bind(scheme)?)),
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(scheme)?)),
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.bind(scheme)?),
                negated: *negated,
            },
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(scheme)?),
                right: Box::new(right.bind(scheme)?),
            },
            Expr::Func { name, args } => BoundExpr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.bind(scheme)).collect::<Result<_>>()?,
            },
            Expr::Case {
                branches,
                otherwise,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((c.bind(scheme)?, v.bind(scheme)?)))
                    .collect::<Result<_>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.bind(scheme)?)),
                    None => None,
                },
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.bind(scheme)?),
                list: list.iter().map(|e| e.bind(scheme)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.bind(scheme)?),
                low: Box::new(low.bind(scheme)?),
                high: Box::new(high.bind(scheme)?),
                negated: *negated,
            },
        })
    }

    /// Evaluate against a row under `scheme` (resolves names on the fly;
    /// bind first when evaluating over many rows).
    pub fn eval(&self, scheme: &Scheme, row: &[Value], funcs: &FuncRegistry) -> Result<Value> {
        self.bind(scheme)?.eval(row, funcs)
    }

    /// Evaluate as a predicate (three-valued).
    pub fn eval_truth(
        &self,
        scheme: &Scheme,
        row: &[Value],
        funcs: &FuncRegistry,
    ) -> Result<Truth> {
        self.bind(scheme)?.eval_truth(row, funcs)
    }

    /// Is this expression *strong* over `scheme` (paper Sec 3): does it
    /// fail to pass on the tuple that is null on **all** attributes?
    /// There is exactly one such tuple per scheme, so the check is exact:
    /// we evaluate on it and require the result not be `True`.
    pub fn is_strong(&self, scheme: &Scheme, funcs: &FuncRegistry) -> Result<bool> {
        let all_null = vec![Value::Null; scheme.arity()];
        Ok(!self.eval_truth(scheme, &all_null, funcs)?.passes())
    }
}

/// Operands that are not primaries must be parenthesized when embedded in
/// another operator, or the rendering would reparse differently
/// (`NOT (a) + b` vs `NOT (a + b)`).
fn needs_parens(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { .. }
            | Expr::IsNull { .. }
            | Expr::Not(_)
            | Expr::InList { .. }
            | Expr::Between { .. }
    )
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wrapped = |f: &mut fmt::Formatter<'_>, e: &Expr| {
            if needs_parens(e) {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        };
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Null) => f.write_str("NULL"),
            Expr::Literal(Value::Bool(b)) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Neg(e) => {
                f.write_str("-")?;
                wrapped(f, e)
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull { expr, negated } => {
                wrapped(f, expr)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Binary { op, left, right } => {
                wrapped(f, left)?;
                write!(f, " {} ", op.symbol())?;
                wrapped(f, right)
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                wrapped(f, expr)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                wrapped(f, expr)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                wrapped(f, low)?;
                f.write_str(" AND ")?;
                wrapped(f, high)
            }
        }
    }
}

/// An expression with column references resolved to row indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column at index.
    Column(usize),
    /// Literal value.
    Literal(Value),
    /// Arithmetic negation.
    Neg(Box<BoundExpr>),
    /// Logical negation.
    Not(Box<BoundExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negated flag.
        negated: bool,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Scalar function call.
    Func {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// Searched CASE.
    Case {
        /// `(condition, value)` branches.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// Optional ELSE value.
        otherwise: Option<Box<BoundExpr>>,
    },
    /// `[NOT] IN` list membership.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// Negated flag.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// Negated flag.
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluate to a value. Truth-valued subexpressions yield
    /// `Value::Bool` or `Value::Null`.
    pub fn eval(&self, row: &[Value], funcs: &FuncRegistry) -> Result<Value> {
        Ok(match self {
            BoundExpr::Column(i) => row[*i].clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Neg(e) => match e.eval(row, funcs)? {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(-i),
                Value::Float(f) => Value::Float(-f),
                v => return Err(Error::TypeMismatch(format!("cannot negate {v}"))),
            },
            BoundExpr::Not(e) => truth_to_value(e.eval_truth(row, funcs)?.not()),
            BoundExpr::IsNull { expr, negated } => {
                let is_null = expr.eval(row, funcs)?.is_null();
                Value::Bool(is_null != *negated)
            }
            BoundExpr::Binary { op, left, right } => {
                if *op == BinOp::And || *op == BinOp::Or {
                    let l = left.eval_truth(row, funcs)?;
                    let r = right.eval_truth(row, funcs)?;
                    return Ok(truth_to_value(if *op == BinOp::And {
                        l.and(r)
                    } else {
                        l.or(r)
                    }));
                }
                let l = left.eval(row, funcs)?;
                let r = right.eval(row, funcs)?;
                match op {
                    BinOp::Add => l.add(&r)?,
                    BinOp::Sub => l.sub(&r)?,
                    BinOp::Mul => l.mul(&r)?,
                    BinOp::Div => l.div(&r)?,
                    BinOp::Concat => concat_values(&l, &r)?,
                    BinOp::Eq => truth_to_value(l.sql_eq(&r)),
                    BinOp::Ne => truth_to_value(l.sql_eq(&r).not()),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        truth_to_value(compare(*op, &l, &r))
                    }
                    BinOp::Like => truth_to_value(like(&l, &r)?),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            BoundExpr::Func { name, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row, funcs))
                    .collect::<Result<_>>()?;
                funcs.call(name, &vals)?
            }
            BoundExpr::Case {
                branches,
                otherwise,
            } => {
                let mut out = Value::Null;
                let mut matched = false;
                for (c, v) in branches {
                    if c.eval_truth(row, funcs)?.passes() {
                        out = v.eval(row, funcs)?;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if let Some(e) = otherwise {
                        out = e.eval(row, funcs)?;
                    }
                }
                out
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.eval(row, funcs)?;
                let mut t = Truth::False;
                for e in list {
                    let candidate = e.eval(row, funcs)?;
                    t = t.or(needle.sql_eq(&candidate));
                    if t == Truth::True {
                        break;
                    }
                }
                truth_to_value(if *negated { t.not() } else { t })
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, funcs)?;
                let lo = low.eval(row, funcs)?;
                let hi = high.eval(row, funcs)?;
                let t = compare(BinOp::Ge, &v, &lo).and(compare(BinOp::Le, &v, &hi));
                truth_to_value(if *negated { t.not() } else { t })
            }
        })
    }

    /// Evaluate as a three-valued predicate.
    pub fn eval_truth(&self, row: &[Value], funcs: &FuncRegistry) -> Result<Truth> {
        match self.eval(row, funcs)? {
            Value::Bool(b) => Ok(Truth::from_bool(b)),
            Value::Null => Ok(Truth::Unknown),
            v => Err(Error::TypeMismatch(format!(
                "expected boolean predicate, got {v}"
            ))),
        }
    }
}

fn truth_to_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

fn compare(op: BinOp, l: &Value, r: &Value) -> Truth {
    match l.sql_cmp(r) {
        None => Truth::Unknown,
        Some(ord) => Truth::from_bool(match op {
            BinOp::Lt => ord.is_lt(),
            BinOp::Le => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::Ge => ord.is_ge(),
            _ => unreachable!(),
        }),
    }
}

fn concat_values(l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let ls = match l {
        Value::Str(s) => s.clone(),
        v => v.to_string(),
    };
    let rs = match r {
        Value::Str(s) => s.clone(),
        v => v.to_string(),
    };
    Ok(Value::Str(ls + &rs))
}

/// SQL LIKE with `%` (any run) and `_` (single char).
fn like(l: &Value, r: &Value) -> Result<Truth> {
    let (s, p) = match (l, r) {
        (Value::Null, _) | (_, Value::Null) => return Ok(Truth::Unknown),
        (Value::Str(s), Value::Str(p)) => (s, p),
        _ => return Err(Error::TypeMismatch("LIKE requires string operands".into())),
    };
    Ok(Truth::from_bool(like_match(
        &s.chars().collect::<Vec<_>>(),
        &p.chars().collect::<Vec<_>>(),
    )))
}

fn like_match(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('%') => {
            // '%' matches zero or more characters.
            (0..=s.len()).any(|k| like_match(&s[k..], &p[1..]))
        }
        Some('_') => !s.is_empty() && like_match(&s[1..], &p[1..]),
        Some(c) => s.first() == Some(c) && like_match(&s[1..], &p[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn scheme() -> Scheme {
        let rel = RelationBuilder::new("Children")
            .attr("ID", DataType::Str)
            .attr("name", DataType::Str)
            .attr("age", DataType::Int)
            .build()
            .unwrap();
        Scheme::of_relation(rel.schema(), "C")
    }

    fn funcs() -> FuncRegistry {
        FuncRegistry::with_builtins()
    }

    fn row(id: &str, name: Option<&str>, age: Option<i64>) -> Vec<Value> {
        vec![id.into(), name.map(Value::str).into(), age.into()]
    }

    fn eval(e: &Expr, r: &[Value]) -> Value {
        e.eval(&scheme(), r, &funcs()).unwrap()
    }

    fn truth(e: &Expr, r: &[Value]) -> Truth {
        e.eval_truth(&scheme(), r, &funcs()).unwrap()
    }

    #[test]
    fn column_and_literal() {
        let r = row("002", Some("Maya"), Some(4));
        assert_eq!(eval(&Expr::col("C.name"), &r), Value::str("Maya"));
        assert_eq!(eval(&Expr::lit(7i64), &r), Value::Int(7));
    }

    #[test]
    fn comparison_with_null_is_unknown() {
        let r = row("002", None, Some(4));
        let e = Expr::binary(BinOp::Eq, Expr::col("C.name"), Expr::lit("Maya"));
        assert_eq!(truth(&e, &r), Truth::Unknown);
    }

    #[test]
    fn age_filter_from_paper_example_3_13() {
        // "Children.Age < 7"
        let e = Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(7i64));
        assert_eq!(truth(&e, &row("1", None, Some(4))), Truth::True);
        assert_eq!(truth(&e, &row("1", None, Some(9))), Truth::False);
        assert_eq!(truth(&e, &row("1", None, None)), Truth::Unknown);
    }

    #[test]
    fn is_null_and_is_not_null() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("C.name")),
            negated: false,
        };
        assert_eq!(truth(&e, &row("1", None, None)), Truth::True);
        assert_eq!(truth(&e, &row("1", Some("x"), None)), Truth::False);
        let ne = Expr::IsNull {
            expr: Box::new(Expr::col("C.name")),
            negated: true,
        };
        assert_eq!(truth(&ne, &row("1", Some("x"), None)), Truth::True);
    }

    #[test]
    fn and_or_not_follow_kleene() {
        let is_null = Expr::IsNull {
            expr: Box::new(Expr::col("C.name")),
            negated: false,
        };
        let unknown = Expr::binary(BinOp::Eq, Expr::col("C.name"), Expr::lit("x"));
        let r = row("1", None, None);
        assert_eq!(
            truth(
                &Expr::binary(BinOp::Or, is_null.clone(), unknown.clone()),
                &r
            ),
            Truth::True
        );
        assert_eq!(
            truth(
                &Expr::binary(BinOp::And, is_null.clone(), unknown.clone()),
                &r
            ),
            Truth::Unknown
        );
        assert_eq!(truth(&Expr::Not(Box::new(unknown)), &r), Truth::Unknown);
    }

    #[test]
    fn arithmetic_and_concat_operator() {
        let r = row("002", Some("Maya"), Some(4));
        let sum = Expr::binary(BinOp::Add, Expr::col("C.age"), Expr::lit(10i64));
        assert_eq!(eval(&sum, &r), Value::Int(14));
        let cc = Expr::binary(BinOp::Concat, Expr::col("C.name"), Expr::lit("!"));
        assert_eq!(eval(&cc, &r), Value::str("Maya!"));
        let cc_null = Expr::binary(BinOp::Concat, Expr::col("C.name"), Expr::lit("!"));
        assert_eq!(eval(&cc_null, &row("1", None, None)), Value::Null);
    }

    #[test]
    fn function_calls_resolve_through_registry() {
        let r = row("002", Some("Maya"), Some(4));
        let e = Expr::Func {
            name: "concat".into(),
            args: vec![Expr::col("C.ID"), Expr::lit(","), Expr::col("C.name")],
        };
        assert_eq!(eval(&e, &r), Value::str("002,Maya"));
    }

    #[test]
    fn like_patterns() {
        let r = row("002", Some("Maya"), None);
        let e = |p: &str| Expr::binary(BinOp::Like, Expr::col("C.name"), Expr::lit(p));
        assert_eq!(truth(&e("Ma%"), &r), Truth::True);
        assert_eq!(truth(&e("%ya"), &r), Truth::True);
        assert_eq!(truth(&e("M_ya"), &r), Truth::True);
        assert_eq!(truth(&e("M_a"), &r), Truth::False);
        assert_eq!(truth(&e("%"), &row("1", None, None)), Truth::Unknown);
    }

    #[test]
    fn join_equality_is_strong() {
        // join predicates reject the all-null tuple (paper Sec 3)
        let e = Expr::col_eq("C.ID", "C.name"); // same scheme suffices for the check
        assert!(e.is_strong(&scheme(), &funcs()).unwrap());
    }

    #[test]
    fn is_null_predicate_is_not_strong() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("C.name")),
            negated: false,
        };
        assert!(!e.is_strong(&scheme(), &funcs()).unwrap());
    }

    #[test]
    fn tautology_is_not_strong() {
        assert!(!Expr::lit(true).is_strong(&scheme(), &funcs()).unwrap());
    }

    #[test]
    fn conjunction_builder() {
        assert_eq!(Expr::conjunction(vec![]), Expr::lit(true));
        let c = Expr::conjunction(vec![
            Expr::col_eq("C.ID", "C.name"),
            Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(7i64)),
        ]);
        assert_eq!(c.to_string(), "(C.ID = C.name) AND (C.age < 7)");
    }

    #[test]
    fn columns_and_qualifiers_collection() {
        let e = Expr::binary(
            BinOp::And,
            Expr::col_eq("C.mid", "P.ID"),
            Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(7i64)),
        );
        assert_eq!(e.columns().len(), 3);
        assert_eq!(e.qualifiers(), vec!["C", "P"]);
    }

    #[test]
    fn map_qualifiers_renames_copies() {
        let e = Expr::col_eq("C.mid", "Parents.ID");
        let renamed = e.map_qualifiers(&|q| {
            if q == "Parents" {
                "Parents2".to_owned()
            } else {
                q.to_owned()
            }
        });
        assert_eq!(renamed.to_string(), "C.mid = Parents2.ID");
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::binary(
            BinOp::Or,
            Expr::Not(Box::new(Expr::col_eq("C.ID", "C.name"))),
            Expr::IsNull {
                expr: Box::new(Expr::col("C.age")),
                negated: true,
            },
        );
        assert_eq!(
            e.to_string(),
            "(NOT (C.ID = C.name)) OR (C.age IS NOT NULL)"
        );
        let s = Expr::lit("O'Hare").to_string();
        assert_eq!(s, "'O''Hare'");
    }

    #[test]
    fn bind_catches_unknown_columns_eagerly() {
        assert!(Expr::col("P.salary").bind(&scheme()).is_err());
    }

    #[test]
    fn bound_eval_matches_unbound() {
        let e = Expr::binary(BinOp::Add, Expr::col("C.age"), Expr::lit(1i64));
        let b = e.bind(&scheme()).unwrap();
        let r = row("002", Some("Maya"), Some(4));
        assert_eq!(
            b.eval(&r, &funcs()).unwrap(),
            e.eval(&scheme(), &r, &funcs()).unwrap()
        );
    }

    #[test]
    fn negation_of_numbers() {
        let e = Expr::Neg(Box::new(Expr::col("C.age")));
        assert_eq!(eval(&e, &row("1", None, Some(4))), Value::Int(-4));
        assert_eq!(eval(&e, &row("1", None, None)), Value::Null);
    }

    #[test]
    fn case_expression_semantics() {
        // CASE WHEN age < 5 THEN 'young' WHEN age < 10 THEN 'mid' ELSE 'old' END
        let e = Expr::Case {
            branches: vec![
                (
                    Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(5i64)),
                    Expr::lit("young"),
                ),
                (
                    Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(10i64)),
                    Expr::lit("mid"),
                ),
            ],
            otherwise: Some(Box::new(Expr::lit("old"))),
        };
        assert_eq!(eval(&e, &row("1", None, Some(4))), Value::str("young"));
        assert_eq!(eval(&e, &row("1", None, Some(7))), Value::str("mid"));
        assert_eq!(eval(&e, &row("1", None, Some(12))), Value::str("old"));
        // null age: all comparisons Unknown -> ELSE
        assert_eq!(eval(&e, &row("1", None, None)), Value::str("old"));
        // without ELSE: null
        let e2 = Expr::Case {
            branches: vec![(
                Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(5i64)),
                Expr::lit("young"),
            )],
            otherwise: None,
        };
        assert_eq!(eval(&e2, &row("1", None, Some(12))), Value::Null);
    }

    #[test]
    fn in_list_three_valued() {
        let e = |negated| Expr::InList {
            expr: Box::new(Expr::col("C.ID")),
            list: vec![Expr::lit("001"), Expr::lit("002")],
            negated,
        };
        assert_eq!(truth(&e(false), &row("002", None, None)), Truth::True);
        assert_eq!(truth(&e(false), &row("009", None, None)), Truth::False);
        assert_eq!(truth(&e(true), &row("009", None, None)), Truth::True);
        // null needle: Unknown either way
        let null_needle = Expr::InList {
            expr: Box::new(Expr::col("C.name")),
            list: vec![Expr::lit("x")],
            negated: false,
        };
        assert_eq!(truth(&null_needle, &row("1", None, None)), Truth::Unknown);
        // null in the list: x IN (y, NULL) is Unknown when x != y
        let null_in_list = Expr::InList {
            expr: Box::new(Expr::col("C.ID")),
            list: vec![Expr::lit("zzz"), Expr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(
            truth(&null_in_list, &row("002", None, None)),
            Truth::Unknown
        );
    }

    #[test]
    fn between_inclusive_and_three_valued() {
        let e = |negated| Expr::Between {
            expr: Box::new(Expr::col("C.age")),
            low: Box::new(Expr::lit(4i64)),
            high: Box::new(Expr::lit(7i64)),
            negated,
        };
        assert_eq!(truth(&e(false), &row("1", None, Some(4))), Truth::True);
        assert_eq!(truth(&e(false), &row("1", None, Some(7))), Truth::True);
        assert_eq!(truth(&e(false), &row("1", None, Some(9))), Truth::False);
        assert_eq!(truth(&e(true), &row("1", None, Some(9))), Truth::True);
        assert_eq!(truth(&e(false), &row("1", None, None)), Truth::Unknown);
    }

    #[test]
    fn new_forms_display_and_qualify() {
        let e = Expr::Case {
            branches: vec![(Expr::col_eq("C.ID", "S.ID"), Expr::col("S.time"))],
            otherwise: Some(Box::new(Expr::lit("walk"))),
        };
        assert_eq!(
            e.to_string(),
            "CASE WHEN C.ID = S.ID THEN S.time ELSE 'walk' END"
        );
        assert_eq!(e.qualifiers(), vec!["C", "S"]);
        let renamed = e.map_qualifiers(&|q| if q == "S" { "S2".into() } else { q.into() });
        assert!(renamed.to_string().contains("S2.time"));

        let i = Expr::InList {
            expr: Box::new(Expr::col("C.ID")),
            list: vec![Expr::lit("001")],
            negated: true,
        };
        assert_eq!(i.to_string(), "C.ID NOT IN ('001')");
        let b = Expr::Between {
            expr: Box::new(Expr::col("C.age")),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(2i64)),
            negated: false,
        };
        assert_eq!(b.to_string(), "C.age BETWEEN 1 AND 2");
    }

    #[test]
    fn division_by_zero_bubbles_up() {
        let e = Expr::binary(BinOp::Div, Expr::col("C.age"), Expr::lit(0i64));
        assert_eq!(
            e.eval(&scheme(), &row("1", None, Some(4)), &funcs()),
            Err(Error::DivisionByZero)
        );
    }
}
