//! Expression simplification, safe under three-valued logic.
//!
//! Mapping operators build predicates mechanically (`Expr::conjunction`,
//! instantiated join specs, copied filters), which leaves `TRUE AND x`
//! and doubly-negated shapes behind. [`simplify`] normalizes them for
//! display and SQL generation. Every rewrite is an *equivalence under
//! Kleene logic* — identities that only hold in two-valued logic (like
//! `x AND NOT x → FALSE`) are deliberately not applied.

use crate::expr::{BinOp, Expr};
use crate::value::Value;

/// Simplify an expression. Guaranteed to evaluate identically (including
/// error behaviour on the surviving subexpressions) on every row.
#[must_use]
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let l = simplify(left);
            let r = simplify(right);
            match (&l, &r) {
                // TRUE AND x == x ; FALSE AND x == FALSE (both 3VL-safe)
                (Expr::Literal(Value::Bool(true)), _) => r,
                (_, Expr::Literal(Value::Bool(true))) => l,
                (Expr::Literal(Value::Bool(false)), _) | (_, Expr::Literal(Value::Bool(false))) => {
                    Expr::lit(false)
                }
                _ => Expr::binary(BinOp::And, l, r),
            }
        }
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let l = simplify(left);
            let r = simplify(right);
            match (&l, &r) {
                (Expr::Literal(Value::Bool(false)), _) => r,
                (_, Expr::Literal(Value::Bool(false))) => l,
                (Expr::Literal(Value::Bool(true)), _) | (_, Expr::Literal(Value::Bool(true))) => {
                    Expr::lit(true)
                }
                _ => Expr::binary(BinOp::Or, l, r),
            }
        }
        Expr::Not(inner) => {
            let i = simplify(inner);
            match i {
                // NOT NOT x == x in Kleene logic
                Expr::Not(x) => *x,
                Expr::Literal(Value::Bool(b)) => Expr::lit(!b),
                // NOT (x IS [NOT] NULL) == x IS [NOT] NULL flipped
                Expr::IsNull { expr, negated } => Expr::IsNull {
                    expr,
                    negated: !negated,
                },
                other => Expr::Not(Box::new(other)),
            }
        }
        Expr::Neg(inner) => {
            let i = simplify(inner);
            match i {
                Expr::Neg(x) => *x,
                Expr::Literal(Value::Int(n)) => Expr::lit(-n),
                Expr::Literal(Value::Float(f)) => Expr::lit(-f),
                other => Expr::Neg(Box::new(other)),
            }
        }
        Expr::IsNull { expr, negated } => {
            let i = simplify(expr);
            match &i {
                // literals have a statically-known nullness
                Expr::Literal(v) => Expr::lit(v.is_null() != *negated),
                _ => Expr::IsNull {
                    expr: Box::new(i),
                    negated: *negated,
                },
            }
        }
        Expr::Binary { op, left, right } => Expr::binary(*op, simplify(left), simplify(right)),
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(simplify).collect(),
        },
        Expr::Case {
            branches,
            otherwise,
        } => {
            // drop branches whose condition is literally FALSE; stop at a
            // literally-TRUE condition (it always wins)
            let mut new_branches = Vec::new();
            let mut new_otherwise = otherwise.as_ref().map(|o| simplify(o));
            for (c, v) in branches {
                let c = simplify(c);
                let v = simplify(v);
                match c {
                    Expr::Literal(Value::Bool(false)) => continue,
                    Expr::Literal(Value::Bool(true)) => {
                        new_otherwise = Some(v);
                        break;
                    }
                    other => new_branches.push((other, v)),
                }
            }
            match (new_branches.is_empty(), new_otherwise) {
                (true, Some(o)) => o,
                (true, None) => Expr::Literal(Value::Null),
                (false, o) => Expr::Case {
                    branches: new_branches,
                    otherwise: o.map(Box::new),
                },
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(simplify(expr)),
            list: list.iter().map(simplify).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(simplify(expr)),
            low: Box::new(simplify(low)),
            high: Box::new(simplify(high)),
            negated: *negated,
        },
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::FuncRegistry;
    use crate::parser::parse_expr;
    use crate::schema::{Column, Scheme};
    use crate::value::DataType;

    fn s(input: &str) -> String {
        simplify(&parse_expr(input).unwrap()).to_string()
    }

    #[test]
    fn conjunction_identities() {
        assert_eq!(s("TRUE AND a = 1"), "a = 1");
        assert_eq!(s("a = 1 AND TRUE"), "a = 1");
        assert_eq!(s("FALSE AND a = 1"), "FALSE");
        assert_eq!(s("a = 1 AND FALSE"), "FALSE");
        assert_eq!(s("TRUE AND TRUE AND a = 1"), "a = 1");
    }

    #[test]
    fn disjunction_identities() {
        assert_eq!(s("FALSE OR a = 1"), "a = 1");
        assert_eq!(s("TRUE OR a = 1"), "TRUE");
        assert_eq!(s("a = 1 OR FALSE"), "a = 1");
    }

    #[test]
    fn negation_identities() {
        assert_eq!(s("NOT NOT a = 1"), "a = 1");
        assert_eq!(s("NOT TRUE"), "FALSE");
        assert_eq!(s("NOT (a IS NULL)"), "a IS NOT NULL");
        assert_eq!(s("NOT (a IS NOT NULL)"), "a IS NULL");
        assert_eq!(s("--5"), "5");
        assert_eq!(s("-5"), "-5");
    }

    #[test]
    fn literal_nullness_folds() {
        assert_eq!(s("NULL IS NULL"), "TRUE");
        assert_eq!(s("1 IS NULL"), "FALSE");
        assert_eq!(s("'x' IS NOT NULL"), "TRUE");
        assert_eq!(s("a IS NULL"), "a IS NULL"); // columns untouched
    }

    #[test]
    fn case_branch_pruning() {
        assert_eq!(
            s("CASE WHEN FALSE THEN 1 WHEN a = 2 THEN 2 ELSE 3 END"),
            "CASE WHEN a = 2 THEN 2 ELSE 3 END"
        );
        assert_eq!(s("CASE WHEN TRUE THEN 1 ELSE 2 END"), "1");
        assert_eq!(s("CASE WHEN FALSE THEN 1 END"), "NULL");
        assert_eq!(
            s("CASE WHEN a = 1 THEN 1 WHEN TRUE THEN 2 WHEN b = 3 THEN 3 END"),
            "CASE WHEN a = 1 THEN 1 ELSE 2 END"
        );
    }

    #[test]
    fn unknown_preserving_shapes_are_not_folded() {
        // x AND NOT x is Unknown when x is Unknown — must not fold to FALSE
        assert_eq!(s("a = 1 AND NOT (a = 1)"), "(a = 1) AND (NOT (a = 1))");
        // x OR NOT x likewise
        assert_eq!(s("a = 1 OR NOT (a = 1)"), "(a = 1) OR (NOT (a = 1))");
    }

    #[test]
    fn simplify_preserves_evaluation() {
        let scheme = Scheme::new(vec![
            Column::new("R", "a", DataType::Int),
            Column::new("R", "b", DataType::Int),
        ]);
        let funcs = FuncRegistry::with_builtins();
        let exprs = [
            "TRUE AND R.a = 1",
            "FALSE OR (R.a = 1 AND TRUE)",
            "NOT NOT (R.a < R.b)",
            "CASE WHEN FALSE THEN 0 WHEN R.a IS NULL THEN 1 ELSE 2 END",
            "NOT (R.a IS NULL)",
        ];
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(3), Value::Null],
        ];
        for src in exprs {
            let original = parse_expr(src).unwrap();
            let simplified = simplify(&original);
            for row in &rows {
                assert_eq!(
                    original.eval(&scheme, row, &funcs).unwrap(),
                    simplified.eval(&scheme, row, &funcs).unwrap(),
                    "{src} with {row:?}"
                );
            }
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        for src in [
            "TRUE AND (FALSE OR a = 1)",
            "NOT NOT NOT a = 1",
            "CASE WHEN TRUE THEN 1 END",
        ] {
            let once = simplify(&parse_expr(src).unwrap());
            let twice = simplify(&once);
            assert_eq!(once, twice, "{src}");
        }
    }
}
