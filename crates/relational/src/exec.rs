//! Std-only parallel execution layer for the engine's hot paths.
//!
//! A scoped [`std::thread`] worker pool with **deterministic result
//! ordering**: [`map_slice`] evaluates a function over a slice on up to
//! [`threads`] workers (work-stealing through one shared atomic index)
//! and returns results in input order, so a parallel run is
//! byte-identical to the serial one. No external dependencies, no
//! long-lived threads — each call opens a [`std::thread::scope`], which
//! keeps borrows of the inputs safe and leaves nothing running between
//! calls.
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. a thread-local override installed by [`with_threads`] (tests and
//!    benches use this so concurrent tests never race on a global);
//! 2. the process-wide setting from [`set_threads`] (the CLI's
//!    `--threads` flag);
//! 3. the `CLIO_THREADS` environment variable (read once);
//! 4. [`std::thread::available_parallelism`].
//!
//! Each worker thread opens one observability span (the caller names it,
//! e.g. `fd.naive.worker`), so a `--trace` run shows the fan-out as one
//! span tree per worker thread with the per-item engine spans nested
//! underneath (see `docs/observability.md`).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide worker count; 0 means "not configured".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 means "no override".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CLIO_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    })
}

/// Set the process-wide worker count (the CLI's `--threads` flag).
/// A value of 0 clears the setting back to auto-detection.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// The worker count parallel operations will use right now, resolved as
/// documented at the module level. Always at least 1.
#[must_use]
pub fn threads() -> usize {
    let tl = OVERRIDE.with(Cell::get);
    if tl >= 1 {
        return tl;
    }
    let global = CONFIGURED.load(Ordering::Relaxed);
    if global >= 1 {
        return global;
    }
    let env = env_threads();
    if env >= 1 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Run `f` with the worker count overridden to `n` **on this thread
/// only**; the previous override is restored afterwards. Parallel and
/// serial runs of the same computation can therefore be compared from
/// concurrent tests without racing on global state.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Evaluate `f(index, &item)` for every item, in parallel when the
/// resolved worker count allows it, returning the results **in input
/// order**. `span_name` names the per-worker observability span (one per
/// worker thread, wrapping every item that worker processed); the
/// serial path opens the same span once on the calling thread so trace
/// shapes stay comparable across thread counts.
///
/// Items are handed out through a shared atomic cursor, so an expensive
/// item never stalls the whole pool the way fixed chunking would. A
/// panic in `f` is propagated to the caller.
pub fn map_slice<T, R, F>(items: &[T], span_name: &'static str, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_slice_with(threads(), items, span_name, f)
}

/// Like [`map_slice`], but with an explicit worker count instead of the
/// resolved [`threads`] setting (clamped to at least 1 and at most the
/// item count). `SessionPool` uses this so the *session* fan-out width
/// is governed by `--sessions` while the engine parallelism *inside*
/// each session stays governed by `--threads`.
///
/// Worker threads inherit the calling thread's [`with_threads`] override
/// and its observability session label, so nested parallel operations
/// and counters behave the same whether an item runs on the caller or on
/// a pool worker.
pub fn map_slice_with<T, R, F>(workers: usize, items: &[T], span_name: &'static str, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        let _span = clio_obs::span(span_name);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let inherited_override = OVERRIDE.with(Cell::get);
    let inherited_session = clio_obs::metrics::current_session();
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    OVERRIDE.with(|c| c.set(inherited_override));
                    clio_obs::metrics::set_session(inherited_session);
                    let _span = clio_obs::span(span_name);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => indexed.extend(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Like [`map_slice`], but items are *handed out* in the caller-given
/// `order` (a permutation of `0..items.len()`) while results still come
/// back **in input order** — so scheduling is a pure latency decision
/// that cannot change what the caller observes. The incremental
/// evaluator uses this to start the longest-estimated subgraphs first,
/// so a straggler no longer serializes the tail of the fan-out.
///
/// The serial path evaluates in `order` too (then re-sorts), keeping
/// the evaluation sequence identical across thread counts. Panics if
/// `order` is not index-for-index the same length as `items`; an
/// out-of-range or duplicated index panics via slice indexing.
pub fn map_slice_prioritized<T, R, F>(
    items: &[T],
    order: &[usize],
    span_name: &'static str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_eq!(
        order.len(),
        items.len(),
        "dispatch order must cover every item exactly once"
    );
    let workers = threads().max(1).min(items.len());
    if workers <= 1 {
        let _span = clio_obs::span(span_name);
        let mut indexed: Vec<(usize, R)> = order.iter().map(|&i| (i, f(i, &items[i]))).collect();
        indexed.sort_unstable_by_key(|&(i, _)| i);
        return indexed.into_iter().map(|(_, r)| r).collect();
    }

    let inherited_override = OVERRIDE.with(Cell::get);
    let inherited_session = clio_obs::metrics::current_session();
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    OVERRIDE.with(|c| c.set(inherited_override));
                    clio_obs::metrics::set_session(inherited_session);
                    let _span = clio_obs::span(span_name);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let pos = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = order.get(pos) else { break };
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => indexed.extend(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_threads(4, || map_slice(&items, "test.worker", |i, &x| i * 1000 + x));
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 1000 + i);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).map(|i| i * 7 % 13).collect();
        let f = |i: usize, x: &u64| (i as u64) ^ (x * 31);
        let serial = with_threads(1, || map_slice(&items, "test.worker", f));
        let parallel = with_threads(8, || map_slice(&items, "test.worker", f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map_slice(&none, "test.worker", |_, &x| x).is_empty());
        assert_eq!(
            with_threads(4, || map_slice(&[9u32], "test.worker", |_, &x| x)),
            vec![9]
        );
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 3);
        });
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn errors_keep_first_by_input_index() {
        // callers collect Vec<Result<..>> in order; the first Err they
        // see must be the lowest-index failure regardless of scheduling
        let items: Vec<usize> = (0..64).collect();
        let out: Vec<Result<usize, usize>> = with_threads(4, || {
            map_slice(&items, "test.worker", |i, &x| {
                if x % 10 == 3 {
                    Err(i)
                } else {
                    Ok(x)
                }
            })
        });
        let first_err = out.iter().find_map(|r| r.as_ref().err());
        assert_eq!(first_err, Some(&3));
    }

    #[test]
    fn map_slice_with_uses_explicit_width_and_inherits_context() {
        // Width is explicit: even with a thread override of 1, an
        // explicit width of 4 spawns real workers, and those workers see
        // the caller's override (1) for their own nested operations.
        let items: Vec<usize> = (0..32).collect();
        let out = with_threads(1, || {
            map_slice_with(4, &items, "test.worker", |i, &x| {
                assert_eq!(threads(), 1, "worker inherits caller override");
                i + x
            })
        });
        assert_eq!(out, (0..32).map(|i| 2 * i).collect::<Vec<_>>());
        // Session labels cross into workers too.
        let labels = clio_obs::metrics::with_session(Some(5), || {
            map_slice_with(3, &items, "test.worker", |_, _| {
                clio_obs::metrics::current_session()
            })
        });
        assert!(labels.iter().all(|&l| l == Some(5)));
    }

    #[test]
    fn prioritized_dispatch_preserves_input_order_of_results() {
        let items: Vec<usize> = (0..50).collect();
        // reverse dispatch order: item 49 starts first
        let order: Vec<usize> = (0..50).rev().collect();
        for width in [1, 4] {
            let out = with_threads(width, || {
                map_slice_prioritized(&items, &order, "test.worker", |i, &x| i * 100 + x)
            });
            assert_eq!(out, (0..50).map(|i| i * 101).collect::<Vec<_>>());
        }
    }

    #[test]
    fn prioritized_serial_evaluates_in_dispatch_order() {
        use std::sync::Mutex;
        let items: Vec<usize> = (0..8).collect();
        let order = vec![3, 1, 7, 0, 2, 6, 4, 5];
        let seen = Mutex::new(Vec::new());
        with_threads(1, || {
            map_slice_prioritized(&items, &order, "test.worker", |i, _| {
                seen.lock().unwrap().push(i);
            })
        });
        assert_eq!(*seen.lock().unwrap(), order);
    }

    #[test]
    fn prioritized_rejects_partial_orders() {
        let items: Vec<usize> = (0..4).collect();
        let result = std::panic::catch_unwind(|| {
            map_slice_prioritized(&items, &[0, 1], "test.worker", |_, &x| x)
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_slice(&items, "test.worker", |_, &x| {
                    assert!(x != 7, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
