//! `clio-relational` — the in-memory relational engine underneath the Clio
//! schema-mapping reproduction.
//!
//! This crate implements the paper's preliminaries (SIGMOD 2001, Sec 3):
//! typed values with SQL null semantics, relations and databases,
//! predicates under three-valued logic with *strong*-predicate analysis,
//! an SQL-ish expression language with parser and function registry, and
//! the relational operators that mapping queries are built from — joins
//! (inner/outer), outer union, subsumption removal, and **minimum union**.
//!
//! # Quick tour
//!
//! ```
//! use clio_relational::prelude::*;
//!
//! let children = RelationBuilder::new("Children")
//!     .attr_not_null("ID", DataType::Str)
//!     .attr("mid", DataType::Str)
//!     .row(vec!["002".into(), "202".into()])
//!     .row(vec!["004".into(), Value::Null])
//!     .build()
//!     .unwrap();
//! let parents = RelationBuilder::new("Parents")
//!     .attr_not_null("ID", DataType::Str)
//!     .attr("affiliation", DataType::Str)
//!     .row(vec!["202".into(), "UofT".into()])
//!     .build()
//!     .unwrap();
//!
//! let funcs = FuncRegistry::with_builtins();
//! let pred = parse_expr("C.mid = P.ID").unwrap();
//! let joined = join(
//!     &children.to_table("C"),
//!     &parents.to_table("P"),
//!     &pred,
//!     JoinKind::LeftOuter,
//!     &funcs,
//! )
//! .unwrap();
//! assert_eq!(joined.len(), 2); // Maya matched, 004 padded with nulls
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod constraints;
pub mod csv;
pub mod database;
pub mod display;
pub mod error;
pub mod exec;
pub mod expr;
pub mod funcs;
pub mod index;
pub mod ops;
pub mod parser;
pub mod relation;
pub mod schema;
pub mod simplify;
pub mod storage;
pub mod table;
pub mod truth;
pub mod typing;
pub mod value;

/// Convenient re-exports of the crate's main types.
pub mod prelude {
    pub use crate::constraints::{Constraints, ForeignKey, Key};
    pub use crate::database::Database;
    pub use crate::error::{Error, Result};
    pub use crate::exec;
    pub use crate::expr::{BinOp, Expr};
    pub use crate::funcs::{Arity, FuncRegistry};
    pub use crate::index::ValueIndex;
    pub use crate::ops::{
        group_by, join, minimum_union, minimum_union_all, outer_union, select, AggFunc, Aggregate,
        JoinKind, SubsumptionAlgo,
    };
    pub use crate::parser::{parse_expr, parse_expr_list};
    pub use crate::relation::{Relation, RelationBuilder};
    pub use crate::schema::{Attribute, Column, ColumnRef, RelSchema, Scheme};
    pub use crate::simplify::simplify;
    pub use crate::table::Table;
    pub use crate::truth::Truth;
    pub use crate::typing::{infer_type, InferredType};
    pub use crate::value::{DataType, Value};
}
