//! Typed attribute values with SQL null semantics.
//!
//! [`Value`] is the cell type of every relation. Equality and hashing treat
//! `Null` as a regular variant (so values can key hash maps, which the
//! subsumption and join machinery relies on), while the *SQL* comparison
//! methods ([`Value::sql_eq`], [`Value::sql_cmp`]) implement three-valued
//! semantics where any comparison against null is [`Truth::Unknown`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::truth::Truth;

/// The type of an attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single attribute value, possibly null.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL: value missing or inapplicable.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Is this value null?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's type, or `None` for null (which inhabits every domain).
    #[must_use]
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Does this value inhabit `ty`? Null inhabits every domain.
    #[must_use]
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == ty || (t == DataType::Int && ty == DataType::Float),
        }
    }

    /// Numeric view: integers widen to floats. `None` for non-numerics.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL equality: `Unknown` if either side is null, otherwise
    /// a definite answer. Int/Float compare numerically.
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> Truth {
        match self.sql_cmp(other) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(ord == Ordering::Equal),
        }
    }

    /// SQL ordering comparison. Returns `None` when either side is null or
    /// the types are incomparable (which SQL would reject statically; we
    /// treat it as unknown at run time for robustness in walks over
    /// heterogeneous columns).
    #[must_use]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::{Bool, Float, Int, Null, Str};
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for deterministic output (sorting rendered
    /// tables, canonicalizing test fixtures). Nulls sort first; across
    /// types the order is Null < Bool < Int/Float < Str.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::{Bool, Float, Int, Null, Str};
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Arithmetic addition with SQL null propagation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Arithmetic subtraction with SQL null propagation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Arithmetic multiplication with SQL null propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Arithmetic division with SQL null propagation. Integer division by
    /// zero is an error; float division follows IEEE.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(Error::DivisionByZero),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a / b)),
                _ => Err(Error::TypeMismatch(format!(
                    "cannot divide {self} by {other}"
                ))),
            },
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| Error::Invalid(format!("integer overflow in {a} {op} {b}"))),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(float_op(a, b))),
                _ => Err(Error::TypeMismatch(format!(
                    "cannot apply `{op}` to {self} and {other}"
                ))),
            },
        }
    }
}

/// Structural equality: `Null == Null`, floats compare bitwise-by-total-order.
/// This is the *container* equality (hash maps, dedup), not SQL equality.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash consistently with total_cmp equality:
            // an Int and the equal Float must share a hash.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("-"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn sql_eq_across_numeric_types() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.0)), Truth::True);
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.5)), Truth::False);
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Int(1).sql_eq(&Value::str("1")), Truth::Unknown);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn container_equality_treats_null_as_equal_to_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_eq!(Value::Int(3), Value::Float(3.0));
    }

    #[test]
    fn hash_consistent_with_container_equality() {
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Float(3.0)));
        set.insert(Value::Null);
        assert!(set.contains(&Value::Null));
        assert!(!set.contains(&Value::str("3")));
    }

    #[test]
    fn arithmetic_propagates_null() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)).unwrap(), Value::Int(-1));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error_for_ints() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(Error::DivisionByZero)
        );
    }

    #[test]
    fn string_arithmetic_is_a_type_error() {
        assert!(Value::str("a").add(&Value::Int(1)).is_err());
    }

    #[test]
    fn overflow_is_detected() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn total_cmp_orders_nulls_first_and_is_total() {
        let mut vals = [
            Value::str("b"),
            Value::Int(1),
            Value::Null,
            Value::Bool(false),
            Value::Float(0.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(*vals.last().unwrap(), Value::str("b"));
    }

    #[test]
    fn conforms_to_allows_null_everywhere_and_int_widening() {
        assert!(Value::Null.conforms_to(DataType::Str));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::str("x").conforms_to(DataType::Str));
    }

    #[test]
    fn display_renders_null_as_dash() {
        assert_eq!(Value::Null.to_string(), "-");
        assert_eq!(Value::str("Maya").to_string(), "Maya");
        assert_eq!(Value::Int(2).to_string(), "2");
    }

    #[test]
    fn from_option_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }
}
