//! Static type inference for expressions.
//!
//! Evaluation is dynamically checked; inference lets tools report type
//! problems (`'a' + 1`, comparing a string column to an integer) at
//! mapping-construction time instead of at first evaluation. Inference is
//! *advisory*: `Unknown` is returned wherever the language is genuinely
//! dynamic (function results, null literals), and only definite
//! mismatches produce errors.

use crate::error::{Error, Result};
use crate::expr::{BinOp, Expr};
use crate::schema::Scheme;
use crate::value::DataType;

/// The inferred type of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferredType {
    /// Definitely this data type (possibly null at runtime).
    Known(DataType),
    /// Statically unknowable (function call, null literal, CASE over
    /// mixed branches).
    Unknown,
}

impl InferredType {
    fn known(self) -> Option<DataType> {
        match self {
            InferredType::Known(t) => Some(t),
            InferredType::Unknown => None,
        }
    }
}

fn numeric(t: DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float)
}

/// Are two known types comparable under SQL comparison semantics?
fn comparable(a: DataType, b: DataType) -> bool {
    a == b || (numeric(a) && numeric(b))
}

/// Infer the type of `e` against `scheme`. Returns an error only for
/// *definite* type mismatches; columns must resolve.
pub fn infer_type(e: &Expr, scheme: &Scheme) -> Result<InferredType> {
    use InferredType::{Known, Unknown};
    Ok(match e {
        Expr::Column(c) => {
            let idx = scheme.resolve(c)?;
            Known(scheme.columns()[idx].ty)
        }
        Expr::Literal(v) => match v.data_type() {
            Some(t) => Known(t),
            None => Unknown, // null inhabits every type
        },
        Expr::Neg(inner) => {
            let t = infer_type(inner, scheme)?;
            if let Some(k) = t.known() {
                if !numeric(k) {
                    return Err(Error::TypeMismatch(format!("cannot negate {k}: `{inner}`")));
                }
            }
            t
        }
        Expr::Not(inner) => {
            let t = infer_type(inner, scheme)?;
            if let Some(k) = t.known() {
                if k != DataType::Bool {
                    return Err(Error::TypeMismatch(format!(
                        "NOT expects a boolean, got {k}: `{inner}`"
                    )));
                }
            }
            Known(DataType::Bool)
        }
        Expr::IsNull { expr, .. } => {
            infer_type(expr, scheme)?; // columns must resolve
            Known(DataType::Bool)
        }
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, scheme)?;
            let rt = infer_type(right, scheme)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    for (t, side) in [(lt, left), (rt, right)] {
                        if let Some(k) = t.known() {
                            if !numeric(k) {
                                return Err(Error::TypeMismatch(format!(
                                    "arithmetic over non-numeric {k}: `{side}`"
                                )));
                            }
                        }
                    }
                    match (lt.known(), rt.known()) {
                        (Some(DataType::Int), Some(DataType::Int)) => Known(DataType::Int),
                        (Some(_), Some(_)) => Known(DataType::Float),
                        _ => Unknown,
                    }
                }
                BinOp::Concat => Known(DataType::Str),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if let (Some(a), Some(b)) = (lt.known(), rt.known()) {
                        if !comparable(a, b) {
                            return Err(Error::TypeMismatch(format!(
                                "cannot compare {a} with {b}: `{e}`"
                            )));
                        }
                    }
                    Known(DataType::Bool)
                }
                BinOp::Like => {
                    for (t, side) in [(lt, left), (rt, right)] {
                        if let Some(k) = t.known() {
                            if k != DataType::Str {
                                return Err(Error::TypeMismatch(format!(
                                    "LIKE expects strings, got {k}: `{side}`"
                                )));
                            }
                        }
                    }
                    Known(DataType::Bool)
                }
                BinOp::And | BinOp::Or => {
                    for (t, side) in [(lt, left), (rt, right)] {
                        if let Some(k) = t.known() {
                            if k != DataType::Bool {
                                return Err(Error::TypeMismatch(format!(
                                    "{} expects booleans, got {k}: `{side}`",
                                    op.symbol()
                                )));
                            }
                        }
                    }
                    Known(DataType::Bool)
                }
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                infer_type(a, scheme)?;
            }
            Unknown // function signatures are dynamic (registry-defined)
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut result: Option<InferredType> = None;
            for (c, v) in branches {
                let ct = infer_type(c, scheme)?;
                if let Some(k) = ct.known() {
                    if k != DataType::Bool {
                        return Err(Error::TypeMismatch(format!(
                            "CASE condition must be boolean, got {k}: `{c}`"
                        )));
                    }
                }
                let vt = infer_type(v, scheme)?;
                result = merge_branch(result, vt);
            }
            if let Some(o) = otherwise {
                let vt = infer_type(o, scheme)?;
                result = merge_branch(result, vt);
            }
            result.unwrap_or(Unknown)
        }
        Expr::InList { expr, list, .. } => {
            let t = infer_type(expr, scheme)?;
            for item in list {
                let it = infer_type(item, scheme)?;
                if let (Some(a), Some(b)) = (t.known(), it.known()) {
                    if !comparable(a, b) {
                        return Err(Error::TypeMismatch(format!(
                            "IN list mixes {a} with {b}: `{item}`"
                        )));
                    }
                }
            }
            Known(DataType::Bool)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            let t = infer_type(expr, scheme)?;
            for bound in [low, high] {
                let bt = infer_type(bound, scheme)?;
                if let (Some(a), Some(b)) = (t.known(), bt.known()) {
                    if !comparable(a, b) {
                        return Err(Error::TypeMismatch(format!(
                            "BETWEEN bound type {b} does not match {a}: `{bound}`"
                        )));
                    }
                }
            }
            Known(DataType::Bool)
        }
    })
}

fn merge_branch(acc: Option<InferredType>, next: InferredType) -> Option<InferredType> {
    use InferredType::{Known, Unknown};
    Some(match (acc, next) {
        (None, t) => t,
        (Some(Unknown), _) | (_, Unknown) => Unknown,
        (Some(Known(a)), Known(b)) if a == b => Known(a),
        (Some(Known(a)), Known(b)) if numeric(a) && numeric(b) => Known(DataType::Float),
        _ => Unknown, // mixed branches: dynamic, not an error
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schema::Column;

    fn scheme() -> Scheme {
        Scheme::new(vec![
            Column::new("C", "ID", DataType::Str),
            Column::new("C", "age", DataType::Int),
            Column::new("C", "score", DataType::Float),
            Column::new("C", "ok", DataType::Bool),
        ])
    }

    fn infer(src: &str) -> Result<InferredType> {
        infer_type(&parse_expr(src).unwrap(), &scheme())
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(infer("C.age").unwrap(), InferredType::Known(DataType::Int));
        assert_eq!(infer("'x'").unwrap(), InferredType::Known(DataType::Str));
        assert_eq!(infer("NULL").unwrap(), InferredType::Unknown);
        assert!(infer("C.nope").is_err()); // unknown column is a hard error
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(
            infer("C.age + 1").unwrap(),
            InferredType::Known(DataType::Int)
        );
        assert_eq!(
            infer("C.age + C.score").unwrap(),
            InferredType::Known(DataType::Float)
        );
        assert_eq!(infer("C.age + NULL").unwrap(), InferredType::Unknown);
        assert!(infer("C.ID + 1").is_err());
        assert!(infer("-C.ID").is_err());
        assert_eq!(infer("-C.age").unwrap(), InferredType::Known(DataType::Int));
    }

    #[test]
    fn comparison_types() {
        assert_eq!(
            infer("C.age < 7").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert_eq!(
            infer("C.age < C.score").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert!(infer("C.ID = 1").is_err());
        assert!(infer("C.ok < C.age").is_err());
        // null comparisons are fine statically
        assert_eq!(
            infer("C.ID = NULL").unwrap(),
            InferredType::Known(DataType::Bool)
        );
    }

    #[test]
    fn logical_and_like() {
        assert_eq!(
            infer("C.ok AND C.age < 7").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert!(infer("C.age AND C.ok").is_err());
        assert!(infer("NOT C.ID").is_err());
        assert_eq!(
            infer("C.ID LIKE 'M%'").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert!(infer("C.age LIKE 'M%'").is_err());
    }

    #[test]
    fn case_in_between() {
        assert_eq!(
            infer("CASE WHEN C.ok THEN 1 ELSE 2 END").unwrap(),
            InferredType::Known(DataType::Int)
        );
        assert_eq!(
            infer("CASE WHEN C.ok THEN 1 ELSE 'x' END").unwrap(),
            InferredType::Unknown // mixed branches: dynamic, not an error
        );
        assert!(infer("CASE WHEN C.age THEN 1 END").is_err());
        assert_eq!(
            infer("C.age BETWEEN 1 AND 7").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert!(infer("C.age BETWEEN 'a' AND 'b'").is_err());
        assert_eq!(
            infer("C.ID IN ('001', '002')").unwrap(),
            InferredType::Known(DataType::Bool)
        );
        assert!(infer("C.ID IN (1, 2)").is_err());
    }

    #[test]
    fn functions_are_dynamic() {
        assert_eq!(infer("upper(C.ID)").unwrap(), InferredType::Unknown);
        // but their arguments are still checked for column resolution
        assert!(infer("upper(C.nope)").is_err());
    }

    #[test]
    fn concat_is_string() {
        assert_eq!(
            infer("C.ID || '!'").unwrap(),
            InferredType::Known(DataType::Str)
        );
    }
}
