//! Paged on-disk storage backend for source databases.
//!
//! A paged database is a directory: the same `_schema.txt` manifest the
//! CSV layout uses, one `<Relation>.clh` heap file per relation, and a
//! persisted [`ValueIndex`] in `_index.clh` — all in the `clio-pager`
//! checksummed page format, served through one shared buffer pool.
//! [`open_paged`] verifies every record once (streaming, bounded
//! memory) and then faults relations in lazily, so the working set —
//! not the database — bounds resident memory.
//!
//! Degradation contract: a corrupt heap file fails [`open_paged`] with
//! a typed error; a file that goes bad *after* open is skipped with a
//! logged `pager.load` warning and a `pager.load_errors` bump; a
//! corrupt or missing `_index.clh` merely makes [`Database`]
//! `stored_index()` return `None`, so callers rebuild the index — slow,
//! never wrong.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use clio_pager::{HeapWriter, Pager};

use crate::constraints::Constraints;
use crate::csv::{parse_manifest, schema_manifest};
use crate::database::Database;
use crate::error::{Error, Result};
use crate::index::{Occurrence, ValueIndex};
use crate::relation::Relation;
use crate::schema::RelSchema;
use crate::value::Value;

/// File name of the persisted value index inside a paged directory.
pub const INDEX_FILE: &str = "_index.clh";

/// Heap-file name for a relation.
fn heap_name(relation: &str) -> String {
    format!("{relation}.clh")
}

/// Value tags shared with `clio-incr`'s disk cache idiom.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_bytes(s.as_bytes(), out);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(
        &u32::try_from(bytes.len())
            .expect("field fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(bytes);
}

/// One row as a heap record: `u32` arity, then tagged values.
fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        &u32::try_from(row.len())
            .expect("arity fits u32")
            .to_le_bytes(),
    );
    for v in row {
        encode_value(v, &mut out);
    }
    out
}

/// Byte-wise reader used by the decoders; every failure is a short
/// human detail, surfaced through the degradation path.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated record".to_owned())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> std::result::Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::result::Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in record".to_owned())
    }

    fn value(&mut self) -> std::result::Result<Value, String> {
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(format!("bad bool byte {b}")),
            },
            tag => Err(format!("unknown value tag {tag}")),
        }
    }

    fn done(&self) -> std::result::Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes in record".to_owned())
        }
    }
}

fn decode_row(bytes: &[u8], schema: &RelSchema) -> std::result::Result<Vec<Value>, String> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    if n != schema.arity() {
        return Err(format!(
            "record arity {n} does not match schema arity {}",
            schema.arity()
        ));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(r.value()?);
    }
    r.done()?;
    Ok(row)
}

/// One index entry as a heap record: the value, then its occurrences.
fn encode_index_entry(value: &Value, occs: &[Occurrence]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(value, &mut out);
    out.extend_from_slice(
        &u32::try_from(occs.len())
            .expect("count fits u32")
            .to_le_bytes(),
    );
    for occ in occs {
        encode_bytes(occ.relation.as_bytes(), &mut out);
        encode_bytes(occ.attribute.as_bytes(), &mut out);
        out.extend_from_slice(&(occ.row as u64).to_le_bytes());
    }
    out
}

fn decode_index_entry(bytes: &[u8]) -> std::result::Result<(Value, Vec<Occurrence>), String> {
    let mut r = Reader::new(bytes);
    let value = r.value()?;
    let count = r.u32()? as usize;
    let mut occs = Vec::with_capacity(count);
    for _ in 0..count {
        let relation = r.string()?;
        let attribute = r.string()?;
        let row = usize::try_from(r.u64()?).map_err(|_| "row index overflow".to_owned())?;
        occs.push(Occurrence {
            relation,
            attribute,
            row,
        });
    }
    r.done()?;
    Ok((value, occs))
}

/// Log one decode defect the same way the pager logs page defects
/// (rate-limited stderr + `pager.load_errors`) and produce the error.
fn degraded(path: &Path, detail: impl Into<String>) -> Error {
    let detail = detail.into();
    clio_obs::incr(clio_obs::Counter::PagerLoadErrors);
    clio_obs::warn_limited(
        "pager.load",
        &format!("cannot read heap file `{}`: {detail}", path.display()),
    );
    Error::Invalid(format!("`{}`: {detail}", path.display()))
}

/// Write `db` to `dir` as a paged database: `_schema.txt`, one
/// checksummed heap file per relation, and a persisted value index.
/// Heap files are built in tmp siblings and renamed into place, so a
/// crash never leaves a half-valid database behind the existing one.
///
/// # Errors
///
/// [`Error::Invalid`] wrapping the underlying I/O or pager failure.
pub fn save_database(db: &Database, dir: &Path, page_size: usize) -> Result<()> {
    let io_err = |e: &dyn std::fmt::Display| Error::Invalid(format!("db save: {e}"));
    std::fs::create_dir_all(dir).map_err(|e| io_err(&e))?;
    std::fs::write(dir.join("_schema.txt"), schema_manifest(db)).map_err(|e| io_err(&e))?;
    for rel in db.relations() {
        let mut w = HeapWriter::create(&dir.join(heap_name(rel.name())), page_size)
            .map_err(|e| io_err(&e))?;
        for row in rel.rows() {
            w.append(&encode_row(row)).map_err(|e| io_err(&e))?;
        }
        w.finish().map_err(|e| io_err(&e))?;
    }
    // Persist the value index alongside the data so sessions over the
    // paged backend skip the `index.build` scan. Entries are sorted by
    // their encoded bytes so the file is byte-deterministic.
    let index = ValueIndex::build(db);
    let mut entries: Vec<Vec<u8>> = index
        .entries()
        .map(|(v, occs)| encode_index_entry(v, occs))
        .collect();
    entries.sort_unstable();
    let mut w = HeapWriter::create(&dir.join(INDEX_FILE), page_size).map_err(|e| io_err(&e))?;
    for entry in &entries {
        w.append(entry).map_err(|e| io_err(&e))?;
    }
    w.finish().map_err(|e| io_err(&e))?;
    Ok(())
}

/// Open a paged database rooted at `dir` with a buffer pool of
/// `pool_pages` pages shared across all its heap files.
///
/// Every record of every relation is stream-decoded once up front —
/// bounded memory, but all of the pager's fault classes (truncation,
/// torn pages, checksums, versions) surface here as typed errors
/// instead of later, mid-walk.
///
/// # Errors
///
/// [`Error::Invalid`] when the manifest or any heap file is missing or
/// corrupt (each defect also logged and counted in
/// `pager.load_errors`).
pub fn open_paged(dir: &Path, pool_pages: usize) -> Result<Database> {
    let manifest = std::fs::read_to_string(dir.join("_schema.txt")).map_err(|e| {
        Error::Invalid(format!(
            "cannot open paged database `{}`: {e}",
            dir.display()
        ))
    })?;
    let (schemas, keys, fks) = parse_manifest(&manifest)?;
    let pager = Pager::new(pool_pages);
    let mut files = Vec::with_capacity(schemas.len());
    let mut row_counts = Vec::with_capacity(schemas.len());
    for schema in &schemas {
        let path = dir.join(heap_name(schema.name()));
        let file = pager
            .open(&path)
            .map_err(|e| Error::Invalid(format!("cannot open paged database: {e}")))?;
        let mut rows: u64 = 0;
        for rec in pager.cursor(file) {
            let rec =
                rec.map_err(|e| Error::Invalid(format!("cannot open paged database: {e}")))?;
            decode_row(&rec, schema).map_err(|d| degraded(&path, d))?;
            rows += 1;
        }
        if rows != pager.record_count(file) {
            return Err(degraded(
                &path,
                format!(
                    "header claims {} records, file holds {rows}",
                    pager.record_count(file)
                ),
            ));
        }
        files.push(file);
        row_counts.push(rows);
    }
    let cells = schemas.iter().map(|_| OnceLock::new()).collect();
    let paged = PagedStorage {
        inner: Arc::new(PagedInner {
            dir: dir.to_path_buf(),
            pager,
            schemas,
            files,
            row_counts,
            cells,
            index_cell: OnceLock::new(),
        }),
    };
    Ok(Database::from_paged(
        paged,
        Constraints {
            keys,
            foreign_keys: fks,
        },
    ))
}

/// Render a target schema in the `Name (attr type [not null], ...)`
/// form that `clio-core`'s script parser reads back — how `db save`
/// persists the session's target alongside the data (`_target.txt`).
#[must_use]
pub fn target_spec(schema: &RelSchema) -> String {
    let mut out = format!("{} (", schema.name());
    for (i, a) in schema.attrs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", a.name, a.ty);
        if a.not_null {
            out.push_str(" not null");
        }
    }
    out.push(')');
    out
}

/// The paged backend behind a [`Database`]: heap files plus lazily
/// faulted relations. Cloning shares the buffer pool and the
/// materialized cells (all mutation goes through
/// [`Database::promote`], which leaves the share untouched).
#[derive(Clone)]
pub struct PagedStorage {
    inner: Arc<PagedInner>,
}

struct PagedInner {
    dir: PathBuf,
    pager: Pager,
    schemas: Vec<RelSchema>,
    files: Vec<clio_pager::FileId>,
    row_counts: Vec<u64>,
    /// Per-relation materialization cell: `None` after a failed load
    /// (already logged), so a bad file is skipped, not retried forever.
    cells: Vec<OnceLock<Option<Relation>>>,
    index_cell: OnceLock<Option<Arc<ValueIndex>>>,
}

impl std::fmt::Debug for PagedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStorage")
            .field("dir", &self.inner.dir)
            .field("pool_pages", &self.inner.pager.pool_pages())
            .finish_non_exhaustive()
    }
}

impl PagedStorage {
    pub(crate) fn schemas(&self) -> &[RelSchema] {
        &self.inner.schemas
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.inner.dir
    }

    pub(crate) fn total_rows(&self) -> usize {
        self.inner
            .row_counts
            .iter()
            .map(|&n| usize::try_from(n).expect("row count fits usize"))
            .sum()
    }

    pub(crate) fn relation(&self, name: &str) -> Option<&Relation> {
        let i = self.inner.schemas.iter().position(|s| s.name() == name)?;
        self.relation_at(i)
    }

    pub(crate) fn iter_relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        (0..self.inner.schemas.len()).filter_map(|i| self.relation_at(i))
    }

    pub(crate) fn materialize_all(&self) -> Result<Vec<Relation>> {
        (0..self.inner.schemas.len())
            .map(|i| {
                self.relation_at(i).cloned().ok_or_else(|| {
                    Error::Invalid(format!(
                        "cannot materialize relation `{}` from `{}`",
                        self.inner.schemas[i].name(),
                        self.inner.dir.display()
                    ))
                })
            })
            .collect()
    }

    pub(crate) fn stored_index(&self) -> Option<Arc<ValueIndex>> {
        self.inner
            .index_cell
            .get_or_init(|| self.load_index())
            .clone()
    }

    /// Fault relation `i` in on first touch; a load failure pins the
    /// cell to `None` (the defect is logged and counted exactly once).
    fn relation_at(&self, i: usize) -> Option<&Relation> {
        self.inner.cells[i]
            .get_or_init(|| self.load_relation(i))
            .as_ref()
    }

    fn load_relation(&self, i: usize) -> Option<Relation> {
        let inner = &*self.inner;
        let path = inner.dir.join(heap_name(inner.schemas[i].name()));
        let mut rel = Relation::empty(inner.schemas[i].clone());
        for rec in inner.pager.cursor(inner.files[i]) {
            let rec = rec.ok()?; // pager already logged + counted
            let row = match decode_row(&rec, rel.schema()) {
                Ok(row) => row,
                Err(detail) => {
                    let _ = degraded(&path, detail);
                    return None;
                }
            };
            if let Err(e) = rel.insert(row) {
                let _ = degraded(&path, e.to_string());
                return None;
            }
        }
        Some(rel)
    }

    fn load_index(&self) -> Option<Arc<ValueIndex>> {
        let path = self.inner.dir.join(INDEX_FILE);
        if !path.exists() {
            // A database saved without an index is fine: rebuild.
            return None;
        }
        let file = self.inner.pager.open(&path).ok()?;
        let mut entries = Vec::new();
        for rec in self.inner.pager.cursor(file) {
            let rec = rec.ok()?;
            match decode_index_entry(&rec) {
                Ok(entry) => entries.push(entry),
                Err(detail) => {
                    let _ = degraded(&path, detail);
                    return None;
                }
            }
        }
        Some(Arc::new(ValueIndex::from_entries(entries)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clio_pager::DEFAULT_PAGE_SIZE;

    use crate::constraints::Key;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clio-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Tricky")
                .attr_not_null("id", DataType::Int)
                .attr("text", DataType::Str)
                .attr("score", DataType::Float)
                .attr("flag", DataType::Bool)
                .row(vec![
                    1i64.into(),
                    "line\nbreak".into(),
                    1.5f64.into(),
                    true.into(),
                ])
                .row(vec![2i64.into(), Value::Null, Value::Null, false.into()])
                .row(vec![3i64.into(), "".into(), (-0.25f64).into(), Value::Null])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("Other")
                .attr_not_null("k", DataType::Str)
                .row(vec!["001".into()])
                .row(vec!["002".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.constraints.keys.push(Key::new("Tricky", vec!["id"]));
        db
    }

    #[test]
    fn database_round_trips_through_paged_directory() {
        let dir = tmp_dir("roundtrip");
        let db = sample_db();
        save_database(&db, &dir, DEFAULT_PAGE_SIZE).unwrap();
        let back = open_paged(&dir, 4).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.paged_dir(), Some(dir.as_path()));
        assert_eq!(back.total_rows(), db.total_rows());
        assert_eq!(back.relation_names(), db.relation_names());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_pool_and_tiny_pages_still_answer_identically() {
        let dir = tmp_dir("tiny");
        let db = sample_db();
        // 64-byte pages fragment every row; a 1-page pool evicts
        // constantly. Answers must not change.
        save_database(&db, &dir, 64).unwrap();
        let back = open_paged(&dir, 1).unwrap();
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_index_agrees_with_a_fresh_build() {
        let dir = tmp_dir("index");
        let db = sample_db();
        save_database(&db, &dir, DEFAULT_PAGE_SIZE).unwrap();
        let back = open_paged(&dir, 4).unwrap();
        let stored = back.stored_index().expect("index persisted");
        let fresh = ValueIndex::build(&db);
        assert_eq!(stored.distinct_values(), fresh.distinct_values());
        for v in [
            Value::str("001"),
            Value::Int(1),
            Value::str("line\nbreak"),
            Value::Bool(false),
        ] {
            assert_eq!(stored.occurrences(&v), fresh.occurrences(&v), "{v:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_degrades_to_a_rebuild_not_a_wrong_answer() {
        let dir = tmp_dir("badindex");
        let db = sample_db();
        save_database(&db, &dir, DEFAULT_PAGE_SIZE).unwrap();
        // Flip one byte inside the index's data page.
        let path = dir.join(INDEX_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[DEFAULT_PAGE_SIZE + 40] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        let back = open_paged(&dir, 4).unwrap();
        assert!(back.stored_index().is_none(), "corrupt index must not load");
        // The data itself is untouched and still serves.
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_is_quietly_absent() {
        let dir = tmp_dir("noindex");
        save_database(&sample_db(), &dir, DEFAULT_PAGE_SIZE).unwrap();
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let back = open_paged(&dir, 4).unwrap();
        assert!(back.stored_index().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_heap_file_fails_open_with_a_typed_error() {
        let dir = tmp_dir("badheap");
        save_database(&sample_db(), &dir, DEFAULT_PAGE_SIZE).unwrap();
        let path = dir.join(heap_name("Other"));
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes.truncate(len - 16);
        std::fs::write(&path, bytes).unwrap();
        let err = open_paged(&dir, 4).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutation_promotes_to_memory_without_touching_disk() {
        let dir = tmp_dir("promote");
        let db = sample_db();
        save_database(&db, &dir, DEFAULT_PAGE_SIZE).unwrap();
        let before = std::fs::read(dir.join(heap_name("Other"))).unwrap();
        let mut back = open_paged(&dir, 4).unwrap();
        back.relation_mut("Other")
            .unwrap()
            .insert(vec!["003".into()])
            .unwrap();
        assert_eq!(back.relation("Other").unwrap().len(), 3);
        assert!(
            back.paged_dir().is_none(),
            "edit must leave the paged backend"
        );
        assert_eq!(
            std::fs::read(dir.join(heap_name("Other"))).unwrap(),
            before,
            "source directory must be untouched by edits"
        );
        // The directory still opens to the original contents.
        assert_eq!(open_paged(&dir, 4).unwrap(), db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saves_are_byte_deterministic() {
        let a = tmp_dir("det-a");
        let b = tmp_dir("det-b");
        let db = sample_db();
        save_database(&db, &a, DEFAULT_PAGE_SIZE).unwrap();
        save_database(&db, &b, DEFAULT_PAGE_SIZE).unwrap();
        for name in ["_schema.txt", "Tricky.clh", "Other.clh", INDEX_FILE] {
            assert_eq!(
                std::fs::read(a.join(name)).unwrap(),
                std::fs::read(b.join(name)).unwrap(),
                "{name}"
            );
        }
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn target_spec_renders_the_script_parser_form() {
        let schema = RelSchema::new(
            "Family",
            vec![
                crate::schema::Attribute::not_null("cname", DataType::Str),
                crate::schema::Attribute::new("pname", DataType::Str),
                crate::schema::Attribute::new("age", DataType::Int),
            ],
        )
        .unwrap();
        assert_eq!(
            target_spec(&schema),
            "Family (cname str not null, pname str, age int)"
        );
    }

    #[test]
    fn open_missing_directory_is_an_error() {
        let dir = tmp_dir("gone").join("nope");
        assert!(open_paged(&dir, 4).is_err());
    }
}
