//! Relation schemes and the wide, qualified schemes of intermediate results.
//!
//! Two levels of scheme exist in the engine:
//!
//! * [`RelSchema`] — the scheme of a stored relation: a relation name plus an
//!   ordered list of [`Attribute`]s (paper Sec 3, *Preliminaries*).
//! * [`Scheme`] — the scheme of a derived table (join result, data
//!   association): an ordered list of columns, each qualified by the *node
//!   alias* it came from. The paper's convention that "multiple copies of a
//!   relation … have been given unique names" is realized by qualifiers:
//!   a second copy of `Parents` appears as qualifier `Parents2`.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::DataType;

/// Does `name` need double-quoting to survive the expression lexer?
/// Plain `[A-Za-z_][A-Za-z0-9_]*` identifiers that are not expression
/// keywords pass through unquoted; everything else (whitespace,
/// punctuation, leading digits, keyword collisions, empty) must be
/// written `"name"` with `""` escaping embedded quotes.
#[must_use]
pub fn ident_needs_quoting(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return true; // empty
    };
    if !(first.is_alphabetic() || first == '_') {
        return true;
    }
    if !chars.all(|c| c.is_alphanumeric() || c == '_') {
        return true;
    }
    crate::parser::is_keyword(name)
}

/// Render an identifier so the expression lexer reads it back verbatim:
/// plain identifiers unchanged, everything else double-quoted with `""`
/// escapes (see [`ident_needs_quoting`]).
#[must_use]
pub fn format_ident(name: &str) -> String {
    if ident_needs_quoting(name) {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_string()
    }
}

/// One attribute of a relation scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Domain type.
    pub ty: DataType,
    /// `true` when the schema forbids nulls in this attribute.
    pub not_null: bool,
}

impl Attribute {
    /// A nullable attribute.
    pub fn new(name: impl Into<String>, ty: DataType) -> Attribute {
        Attribute {
            name: name.into(),
            ty,
            not_null: false,
        }
    }

    /// A `NOT NULL` attribute.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Attribute {
        Attribute {
            name: name.into(),
            ty,
            not_null: true,
        }
    }
}

/// The scheme of a stored relation: name + ordered attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    name: String,
    attrs: Vec<Attribute>,
}

impl RelSchema {
    /// Build a relation scheme, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Result<RelSchema> {
        let name = name.into();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        Ok(RelSchema { name, attrs })
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered attributes.
    #[must_use]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, attr: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == attr)
            .ok_or_else(|| Error::UnknownColumn(format!("{}.{attr}", self.name)))
    }

    /// Attribute by name.
    pub fn attr(&self, name: &str) -> Result<&Attribute> {
        Ok(&self.attrs[self.index_of(name)?])
    }

    /// A renamed copy of this scheme (used when a mapping introduces a
    /// second copy of a relation, e.g. `Parents2`).
    #[must_use]
    pub fn renamed(&self, new_name: impl Into<String>) -> RelSchema {
        RelSchema {
            name: new_name.into(),
            attrs: self.attrs.clone(),
        }
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", format_ident(&self.name))?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", format_ident(&a.name), a.ty)?;
            if a.not_null {
                f.write_str(" not null")?;
            }
        }
        f.write_str(")")
    }
}

/// A reference to a column: optional qualifier (relation alias) + name.
///
/// Written `C.age` or just `age` in the predicate language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// The relation alias, when given.
    pub qualifier: Option<String>,
    /// The attribute name.
    pub name: String,
}

impl ColumnRef {
    /// A qualified reference `qualifier.name`.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// An unqualified reference `name`.
    pub fn bare(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Parse `a.b` or `b` (no whitespace handling; use the full parser for
    /// user input).
    #[must_use]
    pub fn parse_simple(s: &str) -> ColumnRef {
        match s.split_once('.') {
            Some((q, n)) => ColumnRef::qualified(q, n),
            None => ColumnRef::bare(s),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}.{}", format_ident(q), format_ident(&self.name)),
            None => f.write_str(&format_ident(&self.name)),
        }
    }
}

/// One column of a wide (derived) scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The node alias this column belongs to (`Parents2.salary` has
    /// qualifier `Parents2` even though the stored relation is `Parents`).
    pub qualifier: String,
    /// Attribute name within the qualifier.
    pub name: String,
    /// Domain type.
    pub ty: DataType,
}

impl Column {
    /// Construct a column.
    pub fn new(qualifier: impl Into<String>, name: impl Into<String>, ty: DataType) -> Column {
        Column {
            qualifier: qualifier.into(),
            name: name.into(),
            ty,
        }
    }

    /// `qualifier.name` rendering.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.qualifier, self.name)
    }
}

/// The scheme of a derived table: ordered, qualified columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Scheme {
    cols: Vec<Column>,
}

impl Scheme {
    /// Empty scheme.
    #[must_use]
    pub fn empty() -> Scheme {
        Scheme { cols: Vec::new() }
    }

    /// Build from columns.
    #[must_use]
    pub fn new(cols: Vec<Column>) -> Scheme {
        Scheme { cols }
    }

    /// The scheme of relation `schema` under alias `alias`.
    #[must_use]
    pub fn of_relation(schema: &RelSchema, alias: &str) -> Scheme {
        Scheme {
            cols: schema
                .attrs()
                .iter()
                .map(|a| Column::new(alias, a.name.clone(), a.ty))
                .collect(),
        }
    }

    /// The ordered columns.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Resolve a [`ColumnRef`]: with a qualifier it must match exactly;
    /// without one the name must be unique across qualifiers.
    pub fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        match &col.qualifier {
            Some(q) => self
                .cols
                .iter()
                .position(|c| c.qualifier == *q && c.name == col.name)
                .ok_or_else(|| Error::UnknownColumn(col.to_string())),
            None => {
                let mut found = None;
                for (i, c) in self.cols.iter().enumerate() {
                    if c.name == col.name {
                        if found.is_some() {
                            return Err(Error::AmbiguousColumn(col.name.clone()));
                        }
                        found = Some(i);
                    }
                }
                found.ok_or_else(|| Error::UnknownColumn(col.to_string()))
            }
        }
    }

    /// The distinct qualifiers in column order.
    #[must_use]
    pub fn qualifiers(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cols {
            if !out.contains(&c.qualifier.as_str()) {
                out.push(&c.qualifier);
            }
        }
        out
    }

    /// Column indexes belonging to a qualifier.
    #[must_use]
    pub fn indexes_of_qualifier(&self, qualifier: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.qualifier == qualifier)
            .map(|(i, _)| i)
            .collect()
    }

    /// Concatenate two schemes (join result). Duplicated (qualifier, name)
    /// pairs are rejected: mappings must rename copies first.
    pub fn concat(&self, other: &Scheme) -> Result<Scheme> {
        let mut cols = self.cols.clone();
        for c in &other.cols {
            if cols
                .iter()
                .any(|d| d.qualifier == c.qualifier && d.name == c.name)
            {
                return Err(Error::Invalid(format!(
                    "duplicate column `{}` when concatenating schemes; \
                     rename the relation copy first",
                    c.qualified_name()
                )));
            }
            cols.push(c.clone());
        }
        Ok(Scheme { cols })
    }

    /// Position of every column of `other` inside `self`, or an error if a
    /// column of `other` is missing. Used to align outer unions.
    pub fn positions_of(&self, other: &Scheme) -> Result<Vec<usize>> {
        other
            .cols
            .iter()
            .map(|c| {
                self.cols
                    .iter()
                    .position(|d| d.qualifier == c.qualifier && d.name == c.name)
                    .ok_or_else(|| Error::UnknownColumn(c.qualified_name()))
            })
            .collect()
    }

    /// Does `self` contain every column of `other`?
    #[must_use]
    pub fn contains_scheme(&self, other: &Scheme) -> bool {
        self.positions_of(other).is_ok()
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&c.qualified_name())?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn children() -> RelSchema {
        RelSchema::new(
            "Children",
            vec![
                Attribute::not_null("ID", DataType::Str),
                Attribute::new("name", DataType::Str),
                Attribute::new("age", DataType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rel_schema_rejects_duplicate_attributes() {
        let err = RelSchema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("a", DataType::Str),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, Error::DuplicateAttribute { .. }));
    }

    #[test]
    fn rel_schema_lookup() {
        let s = children();
        assert_eq!(s.index_of("age").unwrap(), 2);
        assert!(s.attr("ID").unwrap().not_null);
        assert!(s.index_of("salary").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn renamed_copy_keeps_attributes() {
        let s = children().renamed("Children2");
        assert_eq!(s.name(), "Children2");
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn rel_schema_display() {
        let s = children();
        assert_eq!(
            s.to_string(),
            "Children(ID: str not null, name: str, age: int)"
        );
    }

    #[test]
    fn scheme_of_relation_qualifies_columns() {
        let sch = Scheme::of_relation(&children(), "C");
        assert_eq!(sch.arity(), 3);
        assert_eq!(sch.columns()[0].qualified_name(), "C.ID");
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let sch = Scheme::of_relation(&children(), "C");
        assert_eq!(sch.resolve(&ColumnRef::qualified("C", "age")).unwrap(), 2);
        assert_eq!(sch.resolve(&ColumnRef::bare("name")).unwrap(), 1);
        assert!(sch.resolve(&ColumnRef::qualified("P", "age")).is_err());
    }

    #[test]
    fn bare_resolution_detects_ambiguity() {
        let c = Scheme::of_relation(&children(), "C");
        let p = Scheme::of_relation(&children().renamed("Parents"), "P");
        let wide = c.concat(&p).unwrap();
        assert!(matches!(
            wide.resolve(&ColumnRef::bare("ID")),
            Err(Error::AmbiguousColumn(_))
        ));
        assert_eq!(wide.resolve(&ColumnRef::qualified("P", "ID")).unwrap(), 3);
    }

    #[test]
    fn concat_rejects_duplicate_qualifier() {
        let c = Scheme::of_relation(&children(), "C");
        assert!(c.concat(&c).is_err());
    }

    #[test]
    fn qualifiers_and_indexes() {
        let c = Scheme::of_relation(&children(), "C");
        let p = Scheme::of_relation(&children().renamed("Parents"), "P");
        let wide = c.concat(&p).unwrap();
        assert_eq!(wide.qualifiers(), vec!["C", "P"]);
        assert_eq!(wide.indexes_of_qualifier("P"), vec![3, 4, 5]);
    }

    #[test]
    fn positions_of_and_containment() {
        let c = Scheme::of_relation(&children(), "C");
        let p = Scheme::of_relation(&children().renamed("Parents"), "P");
        let wide = c.concat(&p).unwrap();
        assert_eq!(wide.positions_of(&p).unwrap(), vec![3, 4, 5]);
        assert!(wide.contains_scheme(&c));
        assert!(!c.contains_scheme(&wide));
    }

    #[test]
    fn column_ref_parse_simple() {
        assert_eq!(
            ColumnRef::parse_simple("C.age"),
            ColumnRef::qualified("C", "age")
        );
        assert_eq!(ColumnRef::parse_simple("age"), ColumnRef::bare("age"));
    }

    #[test]
    fn idents_quote_only_when_needed() {
        assert_eq!(format_ident("Children"), "Children");
        assert_eq!(format_ident("_x9"), "_x9");
        assert_eq!(format_ident("My Rel"), "\"My Rel\"");
        assert_eq!(format_ident("9lives"), "\"9lives\"");
        assert_eq!(format_ident("a-b"), "\"a-b\"");
        assert_eq!(format_ident(""), "\"\"");
        assert_eq!(format_ident("a\"b"), "\"a\"\"b\"");
        // expression keywords must be quoted to stay identifiers
        assert_eq!(format_ident("select"), "select");
        assert_eq!(format_ident("and"), "\"and\"");
        assert_eq!(format_ident("NULL"), "\"NULL\"");
    }

    #[test]
    fn quoted_column_ref_display_reparses() {
        let c = ColumnRef::qualified("My Rel", "a b");
        assert_eq!(c.to_string(), "\"My Rel\".\"a b\"");
        let e = crate::parser::parse_expr(&format!("{c} IS NULL")).unwrap();
        match e {
            crate::expr::Expr::IsNull { expr, .. } => {
                assert_eq!(*expr, crate::expr::Expr::Column(c));
            }
            other => panic!("expected IS NULL, got {other}"),
        }
    }
}
