//! Inverted value index over a database.
//!
//! The **data chase** (paper Sec 5.2) starts from a value the user selects
//! ("chase 002") and must locate *every occurrence of that value in the
//! data source*. A full scan per chase is quadratic in practice; the
//! [`ValueIndex`] answers occurrence queries in O(1) per probe. Benchmark
//! **B5** compares the two.

use std::collections::HashMap;

use crate::database::Database;
use crate::value::Value;

/// One occurrence of a value in the database.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Occurrence {
    /// Relation name.
    pub relation: String,
    /// Attribute name.
    pub attribute: String,
    /// Row index within the relation.
    pub row: usize,
}

/// An inverted index from value to all its occurrences.
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    map: HashMap<Value, Vec<Occurrence>>,
}

impl ValueIndex {
    /// Build the index over every non-null cell of `db`.
    #[must_use]
    pub fn build(db: &Database) -> ValueIndex {
        let _span = clio_obs::span("index.build");
        let mut map: HashMap<Value, Vec<Occurrence>> = HashMap::new();
        for rel in db.relations() {
            let attrs: Vec<String> = rel
                .schema()
                .attrs()
                .iter()
                .map(|a| a.name.clone())
                .collect();
            for (ri, row) in rel.rows().iter().enumerate() {
                for (ai, v) in row.iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    map.entry(v.clone()).or_default().push(Occurrence {
                        relation: rel.name().to_owned(),
                        attribute: attrs[ai].clone(),
                        row: ri,
                    });
                }
            }
        }
        ValueIndex { map }
    }

    /// All occurrences of `value` (empty slice when absent). Null has no
    /// occurrences by construction.
    #[must_use]
    pub fn occurrences(&self, value: &Value) -> &[Occurrence] {
        self.map.get(value).map_or(&[], Vec::as_slice)
    }

    /// Distinct `(relation, attribute)` pairs where `value` occurs —
    /// exactly what a chase needs ("002 appears in one attribute of SBPS
    /// and in two attributes of XmasBazaar").
    #[must_use]
    pub fn occurrence_sites(&self, value: &Value) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for occ in self.occurrences(value) {
            let site = (occ.relation.clone(), occ.attribute.clone());
            if !out.contains(&site) {
                out.push(site);
            }
        }
        out
    }

    /// Number of distinct indexed values.
    #[must_use]
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// All `(value, occurrences)` entries, in unspecified order. Used
    /// by the paged storage backend to persist the index alongside the
    /// heap files.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, &[Occurrence])> {
        self.map.iter().map(|(v, occs)| (v, occs.as_slice()))
    }

    /// Rebuild an index from persisted entries. The per-value occurrence
    /// order must be the build order (it determines chase site order).
    pub fn from_entries(entries: impl IntoIterator<Item = (Value, Vec<Occurrence>)>) -> ValueIndex {
        ValueIndex {
            map: entries.into_iter().collect(),
        }
    }
}

/// Reference implementation: find occurrences by scanning the database.
/// Used by tests and the chase benchmark as the unindexed baseline.
#[must_use]
pub fn scan_occurrences(db: &Database, value: &Value) -> Vec<Occurrence> {
    let mut out = Vec::new();
    if value.is_null() {
        return out;
    }
    for rel in db.relations() {
        let attrs: Vec<&str> = rel
            .schema()
            .attrs()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        for (ri, row) in rel.rows().iter().enumerate() {
            for (ai, v) in row.iter().enumerate() {
                if !v.is_null() && v == value {
                    out.push(Occurrence {
                        relation: rel.name().to_owned(),
                        attribute: attrs[ai].to_owned(),
                        row: ri,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            RelationBuilder::new("Children")
                .attr("ID", DataType::Str)
                .attr("name", DataType::Str)
                .row(vec!["002".into(), "Maya".into()])
                .row(vec!["001".into(), "Anna".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("SBPS")
                .attr("ID", DataType::Str)
                .attr("time", DataType::Str)
                .row(vec!["002".into(), "8:15".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_relation(
            RelationBuilder::new("XmasBazaar")
                .attr("seller", DataType::Str)
                .attr("buyer", DataType::Str)
                .row(vec!["002".into(), "001".into()])
                .row(vec!["001".into(), "002".into()])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn finds_all_occurrences_of_maya_id() {
        let idx = ValueIndex::build(&db());
        let occ = idx.occurrences(&Value::str("002"));
        assert_eq!(occ.len(), 4);
        let sites = idx.occurrence_sites(&Value::str("002"));
        assert_eq!(
            sites,
            vec![
                ("Children".to_owned(), "ID".to_owned()),
                ("SBPS".to_owned(), "ID".to_owned()),
                ("XmasBazaar".to_owned(), "seller".to_owned()),
                ("XmasBazaar".to_owned(), "buyer".to_owned()),
            ]
        );
    }

    #[test]
    fn index_agrees_with_scan() {
        let database = db();
        let idx = ValueIndex::build(&database);
        for v in ["001", "002", "Maya", "8:15", "nope"] {
            let val = Value::str(v);
            assert_eq!(
                idx.occurrences(&val),
                scan_occurrences(&database, &val).as_slice()
            );
        }
    }

    #[test]
    fn absent_and_null_values_have_no_occurrences() {
        let idx = ValueIndex::build(&db());
        assert!(idx.occurrences(&Value::str("zzz")).is_empty());
        assert!(idx.occurrences(&Value::Null).is_empty());
        assert!(scan_occurrences(&db(), &Value::Null).is_empty());
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut database = db();
        database
            .relation_mut("Children")
            .unwrap()
            .insert(vec!["003".into(), Value::Null])
            .unwrap();
        let idx = ValueIndex::build(&database);
        // distinct values: 001 002 Maya Anna 8:15 003 = 6
        assert_eq!(idx.distinct_values(), 6);
    }
}
