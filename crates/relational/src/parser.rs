//! Lexer and recursive-descent parser for the predicate / correspondence
//! expression language.
//!
//! The surface syntax is the SQL fragment the paper writes its predicates
//! in: `C.age < 7`, `Children.mid = Parents.ID`, `Kids.ID IS NOT NULL`,
//! `concat(Ph.type, ',', Ph.number)`, `P.salary + P2.salary`.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    := and ( OR and )*
//! and     := not ( AND not )*
//! not     := NOT not | cmp
//! cmp     := add ( (= | <> | != | < | <= | > | >=) add
//!               | IS [NOT] NULL
//!               | [NOT] LIKE add
//!               | [NOT] IN ( expr [, expr]* )
//!               | [NOT] BETWEEN add AND add )?
//! add     := mul ( (+ | - | ||) mul )*
//! mul     := unary ( (* | /) unary )*
//! unary   := - unary | primary
//! primary := NULL | TRUE | FALSE | number | 'string'
//!          | ident [ . ident ] | ident ( args )
//!          | CASE (WHEN expr THEN expr)+ [ELSE expr] END
//!          | ( expr )
//! ident   := plain identifier | "double-quoted identifier"
//! ```
//!
//! Identifiers that are not of the plain `[A-Za-z_][A-Za-z0-9_]*` shape
//! (or that collide with a keyword) are written double-quoted, with `""`
//! escaping an embedded quote: `"My Rel".x = 'y'`. Parse errors carry
//! the 1-based line/column of the offending token plus its text (see
//! [`crate::error::Error::Parse`]).

use crate::error::{Error, Result};
use crate::expr::{BinOp, Expr};
use crate::schema::ColumnRef;
use crate::value::Value;

/// Parse a complete expression from text.
///
/// ```
/// use clio_relational::parser::parse_expr;
///
/// let join = parse_expr("Children.mid = Parents.ID").unwrap();
/// assert_eq!(join.qualifiers(), vec!["Children", "Parents"]);
///
/// let filter = parse_expr("C.age < 7 AND C.name IS NOT NULL").unwrap();
/// assert_eq!(filter.to_string(), "(C.age < 7) AND (C.name IS NOT NULL)");
///
/// // errors carry line/column positions and the offending token
/// let err = parse_expr("C.age < )").unwrap_err();
/// assert!(err.to_string().contains("line 1, column 9"));
/// ```
pub fn parse_expr(input: &str) -> Result<Expr> {
    let (tokens, end) = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end,
    };
    let e = p.parse_or()?;
    if let Some(tok) = p.peek() {
        return Err(parse_error_at(
            tok,
            format!("unexpected trailing input `{}`", tok.kind.describe()),
        ));
    }
    Ok(e)
}

/// Parse a comma-separated list of expressions (filter lists).
pub fn parse_expr_list(input: &str) -> Result<Vec<Expr>> {
    let (tokens, end) = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end,
    };
    let mut out = Vec::new();
    if p.peek().is_none() {
        return Ok(out);
    }
    loop {
        out.push(p.parse_or()?);
        match p.peek() {
            None => break,
            Some(t) if t.kind == TokenKind::Comma => {
                p.pos += 1;
            }
            Some(t) => {
                return Err(parse_error_at(
                    t,
                    format!("expected `,`, found `{}`", t.kind.describe()),
                ))
            }
        }
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // symbols
    Plus,
    Minus,
    Star,
    Slash,
    ConcatOp,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    Comma,
    Dot,
    // keywords
    And,
    Or,
    Not,
    Is,
    Null,
    Like,
    True,
    False,
    In,
    Between,
    Case,
    When,
    Then,
    Else,
    End,
}

impl TokenKind {
    fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Int(i) => i.to_string(),
            TokenKind::Float(f) => f.to_string(),
            TokenKind::Str(s) => format!("'{s}'"),
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Slash => "/".into(),
            TokenKind::ConcatOp => "||".into(),
            TokenKind::Eq => "=".into(),
            TokenKind::Ne => "<>".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::And => "AND".into(),
            TokenKind::Or => "OR".into(),
            TokenKind::Not => "NOT".into(),
            TokenKind::Is => "IS".into(),
            TokenKind::Null => "NULL".into(),
            TokenKind::Like => "LIKE".into(),
            TokenKind::True => "TRUE".into(),
            TokenKind::False => "FALSE".into(),
            TokenKind::In => "IN".into(),
            TokenKind::Between => "BETWEEN".into(),
            TokenKind::Case => "CASE".into(),
            TokenKind::When => "WHEN".into(),
            TokenKind::Then => "THEN".into(),
            TokenKind::Else => "ELSE".into(),
            TokenKind::End => "END".into(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: TokenKind,
    /// Character offset into the input.
    pos: usize,
    /// 1-based line of the token's first character.
    line: usize,
    /// 1-based column (in characters) of the token's first character.
    column: usize,
}

/// Where the input ends, for "end of input" diagnostics.
#[derive(Debug, Clone, Copy)]
struct EndPos {
    pos: usize,
    line: usize,
    column: usize,
}

/// A parse error anchored at an existing token.
fn parse_error_at(tok: &Token, message: String) -> Error {
    Error::Parse {
        pos: tok.pos,
        line: tok.line,
        column: tok.column,
        token: tok.kind.describe(),
        message,
    }
}

/// Is `word` (case-insensitively) a keyword of the expression language?
/// Keyword-shaped identifiers must be double-quoted to be used as names.
pub(crate) fn is_keyword(word: &str) -> bool {
    keyword(word).is_some()
}

fn keyword(word: &str) -> Option<TokenKind> {
    match word.to_ascii_uppercase().as_str() {
        "AND" => Some(TokenKind::And),
        "OR" => Some(TokenKind::Or),
        "NOT" => Some(TokenKind::Not),
        "IS" => Some(TokenKind::Is),
        "NULL" => Some(TokenKind::Null),
        "LIKE" => Some(TokenKind::Like),
        "TRUE" => Some(TokenKind::True),
        "FALSE" => Some(TokenKind::False),
        "IN" => Some(TokenKind::In),
        "BETWEEN" => Some(TokenKind::Between),
        "CASE" => Some(TokenKind::Case),
        "WHEN" => Some(TokenKind::When),
        "THEN" => Some(TokenKind::Then),
        "ELSE" => Some(TokenKind::Else),
        "END" => Some(TokenKind::End),
        _ => None,
    }
}

fn lex(input: &str) -> Result<(Vec<Token>, EndPos)> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut lline = 1usize; // 1-based line of position `i`
    let mut line_start = 0usize; // char offset where the current line begins
    while i < bytes.len() {
        let c = bytes[i];
        let pos = i;
        let line = lline;
        let column = pos - line_start + 1;
        // the lexer's error at the current position, blaming `token`
        let err = |token: &str, message: String| Error::Parse {
            pos,
            line,
            column,
            token: token.into(),
            message,
        };
        match c {
            c if c.is_whitespace() => {
                if c == '\n' {
                    lline += 1;
                    line_start = i + 1;
                }
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                    line,
                    column,
                });
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    out.push(Token {
                        kind: TokenKind::ConcatOp,
                        pos,
                        line,
                        column,
                    });
                    i += 2;
                } else {
                    return Err(err("|", "expected `||`".into()));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        pos,
                        line,
                        column,
                    });
                    i += 2;
                } else {
                    return Err(err("!", "expected `!=`".into()));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some('=') => {
                    out.push(Token {
                        kind: TokenKind::Le,
                        pos,
                        line,
                        column,
                    });
                    i += 2;
                }
                Some('>') => {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        pos,
                        line,
                        column,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                        line,
                        column,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        pos,
                        line,
                        column,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                        line,
                        column,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("'", "unterminated string literal".into())),
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            if *c == '\n' {
                                lline += 1;
                                line_start = i + 1;
                            }
                            s.push(*c);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                    line,
                    column,
                });
            }
            '"' => {
                // double-quoted identifier; `""` escapes an embedded quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("\"", "unterminated quoted identifier".into())),
                        Some('"') if bytes.get(i + 1) == Some(&'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            if *c == '\n' {
                                lline += 1;
                                line_start = i + 1;
                            }
                            s.push(*c);
                            i += 1;
                        }
                    }
                }
                if s.is_empty() {
                    return Err(err("\"\"", "empty quoted identifier".into()));
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    pos,
                    line,
                    column,
                });
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                // a fractional part requires a digit after '.', so that
                // `R.1x` style errors are caught and `2.attr` never lexes
                if end < bytes.len()
                    && bytes[end] == '.'
                    && bytes.get(end + 1).is_some_and(char::is_ascii_digit)
                {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                }
                let text: String = bytes[i..end].iter().collect();
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(&text, format!("invalid float `{text}`")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(&text, format!("invalid integer `{text}`")))?,
                    )
                };
                out.push(Token {
                    kind,
                    pos,
                    line,
                    column,
                });
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() && (bytes[end].is_alphanumeric() || bytes[end] == '_') {
                    end += 1;
                }
                let word: String = bytes[i..end].iter().collect();
                let kind = keyword(&word).unwrap_or(TokenKind::Ident(word));
                out.push(Token {
                    kind,
                    pos,
                    line,
                    column,
                });
                i = end;
            }
            other => {
                return Err(err(
                    &other.to_string(),
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    let end = EndPos {
        pos: bytes.len(),
        line: lline,
        column: bytes.len() - line_start + 1,
    };
    Ok((out, end))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: EndPos,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            let found = match self.peek() {
                Some(t) => t.kind.describe(),
                None => "end of input".into(),
            };
            Err(self.err_here(format!("expected `{}`, found `{found}`", kind.describe())))
        }
    }

    fn err_here(&self, message: impl Into<String>) -> Error {
        match self.peek() {
            Some(t) => parse_error_at(t, message.into()),
            None => Error::Parse {
                pos: self.end.pos,
                line: self.end.line,
                column: self.end.column,
                token: String::new(),
                message: message.into(),
            },
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Ne) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            Some(TokenKind::Like) => Some(BinOp::Like),
            Some(TokenKind::Is) => {
                self.pos += 1;
                let negated = self.eat(&TokenKind::Not);
                self.expect(&TokenKind::Null)?;
                return Ok(Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                });
            }
            Some(TokenKind::In) => {
                self.pos += 1;
                return self.parse_in_tail(left, false);
            }
            Some(TokenKind::Between) => {
                self.pos += 1;
                return self.parse_between_tail(left, false);
            }
            Some(TokenKind::Not) => {
                // NOT LIKE / NOT IN / NOT BETWEEN
                self.pos += 1;
                if self.eat(&TokenKind::In) {
                    return self.parse_in_tail(left, true);
                }
                if self.eat(&TokenKind::Between) {
                    return self.parse_between_tail(left, true);
                }
                self.expect(&TokenKind::Like)?;
                let right = self.parse_add()?;
                return Ok(Expr::Not(Box::new(Expr::binary(BinOp::Like, left, right))));
            }
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.parse_add()?;
                Ok(Expr::binary(op, left, right))
            }
        }
    }

    /// `IN ( expr [, expr]* )` — the opening paren is still pending.
    fn parse_in_tail(&mut self, left: Expr, negated: bool) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let mut list = Vec::new();
        loop {
            list.push(self.parse_or()?);
            if self.eat(&TokenKind::RParen) {
                break;
            }
            self.expect(&TokenKind::Comma)?;
        }
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    /// `BETWEEN add AND add` — bounds parse at `add` level so the `AND`
    /// separator is unambiguous.
    fn parse_between_tail(&mut self, left: Expr, negated: bool) -> Result<Expr> {
        let low = self.parse_add()?;
        self.expect(&TokenKind::And)?;
        let high = self.parse_add()?;
        Ok(Expr::Between {
            expr: Box::new(left),
            low: Box::new(low),
            high: Box::new(high),
            negated,
        })
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                Some(TokenKind::ConcatOp) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_mul()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let tok = match self.peek() {
            Some(t) => t.clone(),
            None => return Err(self.err_here("unexpected end of input")),
        };
        match tok.kind {
            TokenKind::Null => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::True => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::False => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Int(i) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.pos += 1;
                let e = self.parse_or()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Case => {
                self.pos += 1;
                let mut branches = Vec::new();
                while self.eat(&TokenKind::When) {
                    let cond = self.parse_or()?;
                    self.expect(&TokenKind::Then)?;
                    let value = self.parse_or()?;
                    branches.push((cond, value));
                }
                if branches.is_empty() {
                    return Err(self.err_here("CASE requires at least one WHEN branch"));
                }
                let otherwise = if self.eat(&TokenKind::Else) {
                    Some(Box::new(self.parse_or()?))
                } else {
                    None
                };
                self.expect(&TokenKind::End)?;
                Ok(Expr::Case {
                    branches,
                    otherwise,
                })
            }
            TokenKind::Ident(name) => {
                self.pos += 1;
                if self.eat(&TokenKind::LParen) {
                    // function call
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_or()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Func { name, args })
                } else if self.eat(&TokenKind::Dot) {
                    match self.peek().map(|t| t.kind.clone()) {
                        Some(TokenKind::Ident(attr)) => {
                            self.pos += 1;
                            Ok(Expr::Column(ColumnRef::qualified(name, attr)))
                        }
                        _ => Err(self.err_here("expected attribute name after `.`")),
                    }
                } else {
                    Ok(Expr::Column(ColumnRef::bare(name)))
                }
            }
            other => Err(Error::Parse {
                pos: tok.pos,
                line: tok.line,
                column: tok.column,
                token: other.describe(),
                message: format!("unexpected token `{}`", other.describe()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn p(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn parses_paper_join_predicates() {
        assert_eq!(
            p("Children.mid = Parents.ID"),
            Expr::col_eq("Children.mid", "Parents.ID")
        );
        assert_eq!(p("C.fid = P.ID"), Expr::col_eq("C.fid", "P.ID"));
    }

    #[test]
    fn parses_paper_filters() {
        assert_eq!(
            p("C.age < 7"),
            Expr::binary(BinOp::Lt, Expr::col("C.age"), Expr::lit(7i64))
        );
        assert_eq!(
            p("Kids.FamilyIncome < 100000"),
            Expr::binary(
                BinOp::Lt,
                Expr::col("Kids.FamilyIncome"),
                Expr::lit(100_000i64)
            )
        );
    }

    #[test]
    fn parses_is_null_family() {
        assert_eq!(
            p("Kids.ID IS NOT NULL"),
            Expr::IsNull {
                expr: Box::new(Expr::col("Kids.ID")),
                negated: true
            }
        );
        assert_eq!(
            p("C.mid is null"),
            Expr::IsNull {
                expr: Box::new(Expr::col("C.mid")),
                negated: false
            }
        );
    }

    #[test]
    fn precedence_and_over_or_cmp_over_and() {
        let e = p("a = 1 OR b = 2 AND c = 3");
        // OR(a=1, AND(b=2, c=3))
        match e {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected AND on the right, got {other}"),
            },
            other => panic!("expected OR at top, got {other}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = p("P.salary + P2.salary * 2");
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected +, got {other}"),
        }
        // parens override
        let e = p("(P.salary + P2.salary) * 2");
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn family_income_correspondence_parses() {
        // v: Parents.Salary + Parents2.Salary -> Kids.FamilyIncome
        let e = p("Parents.salary + Parents2.salary");
        assert_eq!(e.qualifiers(), vec!["Parents", "Parents2"]);
    }

    #[test]
    fn function_calls_and_nesting() {
        let e = p("concat(Ph.type, ',', Ph.number)");
        match &e {
            Expr::Func { name, args } => {
                assert_eq!(name, "concat");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected function, got {other}"),
        }
        let e = p("upper(concat(a, b))");
        assert!(matches!(e, Expr::Func { .. }));
        let e = p("coalesce()");
        assert!(matches!(e, Expr::Func { ref args, .. } if args.is_empty()));
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(p("'O''Hare'"), Expr::lit("O'Hare"));
        assert_eq!(
            p("name = 'Maya'"),
            Expr::binary(BinOp::Eq, Expr::col("name"), Expr::lit("Maya"))
        );
    }

    #[test]
    fn not_and_not_like() {
        assert_eq!(
            p("NOT a = 1"),
            Expr::Not(Box::new(Expr::binary(
                BinOp::Eq,
                Expr::col("a"),
                Expr::lit(1i64)
            )))
        );
        let e = p("name NOT LIKE 'M%'");
        assert!(matches!(e, Expr::Not(_)));
        let e = p("name LIKE 'M%'");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::Like,
                ..
            }
        ));
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(p("a <> 1"), p("a != 1"));
    }

    #[test]
    fn concat_operator_parses() {
        let e = p("Ph.type || ',' || Ph.number");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::Concat,
                ..
            }
        ));
    }

    #[test]
    fn unary_minus_and_floats() {
        assert_eq!(p("-3"), Expr::Neg(Box::new(Expr::lit(3i64))));
        assert_eq!(p("2.5"), Expr::lit(2.5f64));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_expr("a = ").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        let err = parse_expr("a = 'unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err = parse_expr("a # b").unwrap_err();
        assert!(err.to_string().contains('#'));
        assert!(parse_expr("(a = 1").is_err());
        assert!(parse_expr("a = 1 extra junk +").is_err());
    }

    #[test]
    fn expr_list_parsing() {
        let list = parse_expr_list("C.age < 7, Kids.ID IS NOT NULL").unwrap();
        assert_eq!(list.len(), 2);
        assert!(parse_expr_list("").unwrap().is_empty());
        assert!(parse_expr_list("a = 1,").is_err());
    }

    #[test]
    fn round_trip_display_reparses_to_same_ast() {
        for src in [
            "C.mid = P.ID",
            "C.age < 7 AND Kids.ID IS NOT NULL",
            "concat(Ph.type, ',', Ph.number)",
            "NOT (a = 1) OR b IS NULL",
            "P.salary + P2.salary",
            "(x + 1) * 2 = 6",
            "name LIKE 'M%'",
        ] {
            let e1 = p(src);
            let e2 = p(&e1.to_string());
            assert_eq!(e1, e2, "round-trip failed for `{src}`");
        }
    }

    #[test]
    fn parses_in_lists() {
        let e = p("C.ID IN ('001', '002')");
        assert!(matches!(e, Expr::InList { negated: false, ref list, .. } if list.len() == 2));
        let e = p("C.ID NOT IN ('001')");
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        assert!(parse_expr("C.ID IN ()").is_err());
        assert!(parse_expr("C.ID IN ('a',)").is_err());
    }

    #[test]
    fn parses_between() {
        let e = p("C.age BETWEEN 4 AND 7");
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = p("C.age NOT BETWEEN 4 AND 7");
        assert!(matches!(e, Expr::Between { negated: true, .. }));
        // the AND after the BETWEEN bounds still works as conjunction
        let e = p("C.age BETWEEN 4 AND 7 AND C.ID = '1'");
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
        assert!(parse_expr("C.age BETWEEN 4").is_err());
    }

    #[test]
    fn parses_case_expressions() {
        let e = p("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END");
        match &e {
            Expr::Case {
                branches,
                otherwise,
            } => {
                assert_eq!(branches.len(), 2);
                assert!(otherwise.is_some());
            }
            other => panic!("expected CASE, got {other}"),
        }
        let e = p("CASE WHEN a IS NULL THEN 0 END");
        assert!(matches!(e, Expr::Case { ref otherwise, .. } if otherwise.is_none()));
        // nested
        let e = p("CASE WHEN a = 1 THEN CASE WHEN b = 2 THEN 3 END ELSE 4 END");
        assert!(matches!(e, Expr::Case { .. }));
        assert!(parse_expr("CASE ELSE 1 END").is_err());
        assert!(parse_expr("CASE WHEN a THEN 1").is_err());
    }

    #[test]
    fn new_forms_round_trip() {
        for src in [
            "C.ID IN ('001', '002')",
            "C.ID NOT IN ('001')",
            "C.age BETWEEN 4 AND 7",
            "C.age NOT BETWEEN 4 AND 7",
            "CASE WHEN a = 1 THEN 'one' ELSE 'many' END",
            "CASE WHEN a IS NULL THEN 0 END",
        ] {
            let e1 = p(src);
            let e2 = p(&e1.to_string());
            assert_eq!(e1, e2, "round-trip failed for `{src}`");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(p("a and b or not c"), p("a AND b OR NOT c"));
        assert_eq!(p("x Is NoT nUlL"), p("x IS NOT NULL"));
    }

    #[test]
    fn errors_carry_line_column_and_token() {
        // offending token on line 2
        let err = parse_expr("a = 1\nAND b = )").unwrap_err();
        match err {
            Error::Parse {
                line,
                column,
                ref token,
                ..
            } => {
                assert_eq!(line, 2);
                assert_eq!(column, 9);
                assert_eq!(token, ")");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // end of input: position past the last char, empty token
        let err = parse_expr("a =").unwrap_err();
        match err {
            Error::Parse {
                pos,
                line,
                column,
                ref token,
                ..
            } => {
                assert_eq!((pos, line, column), (3, 1, 4));
                assert!(token.is_empty());
            }
            other => panic!("expected parse error, got {other}"),
        }
        assert!(parse_expr("a =")
            .unwrap_err()
            .to_string()
            .contains("line 1, column 4"));
    }

    #[test]
    fn quoted_identifiers_lex_as_idents() {
        let e = p("\"My Rel\".x = 1");
        assert_eq!(e.qualifiers(), vec!["My Rel"]);
        // keywords lose their meaning when quoted
        let e = p("\"select\" = 'x'");
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
        // `""` escapes an embedded quote
        let e = p("\"a\"\"b\" IS NULL");
        match e {
            Expr::IsNull { expr, .. } => match *expr {
                Expr::Column(ref c) => assert_eq!(c.name, "a\"b"),
                other => panic!("expected column, got {other}"),
            },
            other => panic!("expected IS NULL, got {other}"),
        }
        assert!(parse_expr("\"unterminated").is_err());
        assert!(parse_expr("\"\" = 1").is_err());
        // round-trip through Display
        for src in ["\"My Rel\".\"a b\" = 1", "\"select\" < 2"] {
            let e1 = p(src);
            let e2 = p(&e1.to_string());
            assert_eq!(e1, e2, "round-trip failed for `{src}`");
        }
    }
}
